//! The heterogeneous [`Value`] type of the instance layer.
//!
//! The paper's instance layer must hold "both structured and unstructured"
//! data (§3.1): numbers, strings, timestamps, raw bytes (standing in for
//! image/audio payloads), and nested JSON documents. Values are totally
//! ordered and hashable so they can serve as keys in every layer above.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;

/// The discriminant of a [`Value`], used for schema inference and coercion
/// decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Absence of a value. The paper extends Codd's "systematic treatment of
    /// nulls" rule: nulls are first-class and interact with the
    /// incompleteness semantics in `scdb-uncertain`.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (totally ordered via `f64::total_cmp`).
    Float,
    /// UTF-8 string (shared, cheap to clone).
    Str,
    /// Raw bytes — a stand-in for unstructured payloads (images, audio).
    Bytes,
    /// Milliseconds since the Unix epoch.
    Timestamp,
    /// A nested document (array/object), the semi-structured case.
    Doc,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
            ValueKind::Bytes => "bytes",
            ValueKind::Timestamp => "timestamp",
            ValueKind::Doc => "doc",
        };
        f.write_str(s)
    }
}

/// A nested semi-structured document value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Doc {
    /// Ordered list of values.
    Array(Vec<Value>),
    /// Key/value object with deterministic (sorted) key order.
    Object(Vec<(String, Value)>),
}

impl Doc {
    /// Number of immediate children.
    pub fn len(&self) -> usize {
        match self {
            Doc::Array(v) => v.len(),
            Doc::Object(v) => v.len(),
        }
    }

    /// True when the document has no immediate children.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A heterogeneous value in the instance layer.
///
/// `Value` implements a *total* order across kinds (kind-major, then within
/// kind), which makes it usable as a sort/index key even for mixed-type
/// columns — a direct consequence of the paper's rejection of column
/// homogeneity ("the Boyce-Codd normal forms to some extent already
/// penalize any column heterogeneity", §1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Shared string.
    Str(Arc<str>),
    /// Raw bytes.
    Bytes(Arc<[u8]>),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
    /// Nested document.
    Doc(Arc<Doc>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a bytes value.
    pub fn bytes(b: impl AsRef<[u8]>) -> Self {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// The kind discriminant.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bytes(_) => ValueKind::Bytes,
            Value::Timestamp(_) => ValueKind::Timestamp,
            Value::Doc(_) => ValueKind::Doc,
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an integer if possible (floats with zero fraction
    /// coerce).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Interpret as a float if possible (ints coerce losslessly enough for
    /// our statistics paths).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow the string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A best-effort textual rendering used by entity resolution and
    /// display paths. Numbers render canonically; bytes render as a length
    /// tag; documents render as compact JSON-ish text.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{f}")),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Bytes(b) => Cow::Owned(format!("<{} bytes>", b.len())),
            Value::Timestamp(t) => Cow::Owned(format!("@{t}")),
            Value::Doc(d) => Cow::Owned(format!("{}", DocDisplay(d))),
        }
    }

    /// Coerce this value to `target`, failing with [`TypeError::Coercion`]
    /// when the conversion would lose meaning.
    pub fn coerce(&self, target: ValueKind) -> Result<Value, TypeError> {
        if self.kind() == target {
            return Ok(self.clone());
        }
        let out = match (self, target) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), ValueKind::Float) => Some(Value::Float(*i as f64)),
            (Value::Int(i), ValueKind::Str) => Some(Value::str(i.to_string())),
            (Value::Int(i), ValueKind::Bool) => Some(Value::Bool(*i != 0)),
            (Value::Int(i), ValueKind::Timestamp) => Some(Value::Timestamp(*i)),
            (Value::Float(f), ValueKind::Int) if f.fract() == 0.0 && f.is_finite() => {
                Some(Value::Int(*f as i64))
            }
            (Value::Float(f), ValueKind::Str) => Some(Value::str(format!("{f}"))),
            (Value::Bool(b), ValueKind::Int) => Some(Value::Int(i64::from(*b))),
            (Value::Bool(b), ValueKind::Str) => Some(Value::str(b.to_string())),
            (Value::Str(s), ValueKind::Int) => s.trim().parse::<i64>().ok().map(Value::Int),
            (Value::Str(s), ValueKind::Float) => s.trim().parse::<f64>().ok().map(Value::Float),
            (Value::Str(s), ValueKind::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "yes" | "1" => Some(Value::Bool(true)),
                "false" | "no" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Timestamp(t), ValueKind::Int) => Some(Value::Int(*t)),
            (v, ValueKind::Str) => Some(Value::str(v.render())),
            _ => None,
        };
        out.ok_or(TypeError::Coercion {
            from: self.kind(),
            to: target,
        })
    }

    /// Numeric absolute difference when both sides are numeric, used by
    /// fuzzy "closeness" predicates (§4.2: a dosage "close to 5.0 mg").
    pub fn numeric_distance(&self, other: &Value) -> Option<f64> {
        Some((self.as_float()? - other.as_float()?).abs())
    }

    /// An approximate deep size in bytes, used by storage accounting and
    /// the placement simulator's memory-footprint metric (OS.4).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Bytes(b) => b.len() + 8,
            Value::Doc(d) => {
                8 + match d.as_ref() {
                    Doc::Array(v) => v.iter().map(Value::approx_size).sum::<usize>(),
                    Doc::Object(v) => v
                        .iter()
                        .map(|(k, val)| k.len() + val.approx_size())
                        .sum::<usize>(),
                }
            }
        }
    }
}

struct DocDisplay<'a>(&'a Doc);

impl fmt::Display for DocDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Doc::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str(&v.render())?;
                }
                f.write_str("]")
            }
            Doc::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k}:{}", v.render())?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            // Ints and floats compare numerically with each other so that a
            // heterogeneous numeric column sorts sensibly.
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Doc(a), Doc(b)) => doc_cmp(a, b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

fn doc_cmp(a: &Doc, b: &Doc) -> Ordering {
    match (a, b) {
        (Doc::Array(x), Doc::Array(y)) => {
            for (vx, vy) in x.iter().zip(y.iter()) {
                let o = vx.cmp(vy);
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        (Doc::Object(x), Doc::Object(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                let o = kx.cmp(ky).then_with(|| vx.cmp(vy));
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        (Doc::Array(_), Doc::Object(_)) => Ordering::Less,
        (Doc::Object(_), Doc::Array(_)) => Ordering::Greater,
    }
}

impl Value {
    /// Kind-major rank for cross-kind ordering. Int and Float share a rank
    /// because they compare numerically.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Timestamp(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::Doc(_) => 6,
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Keep Int/Float hashing consistent with the numeric Eq above:
            // integral floats hash as their integer value.
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Timestamp(t) => t.hash(state),
            Value::Doc(d) => hash_doc(d, state),
        }
    }
}

fn hash_doc<H: Hasher>(d: &Doc, state: &mut H) {
    match d {
        Doc::Array(v) => {
            0u8.hash(state);
            v.len().hash(state);
            for item in v {
                item.hash(state);
            }
        }
        Doc::Object(v) => {
            1u8.hash(state);
            v.len().hash(state);
            for (k, item) in v {
                k.hash(state);
                item.hash(state);
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(7),
            Value::Float(2.5),
            Value::str("x"),
            Value::bytes([1u8, 2]),
            Value::Timestamp(123),
            Value::Doc(Arc::new(Doc::Array(vec![Value::Int(1)]))),
        ];
        let kinds: Vec<_> = vals.iter().map(Value::kind).collect();
        assert_eq!(
            kinds,
            vec![
                ValueKind::Null,
                ValueKind::Bool,
                ValueKind::Int,
                ValueKind::Float,
                ValueKind::Str,
                ValueKind::Bytes,
                ValueKind::Timestamp,
                ValueKind::Doc,
            ]
        );
    }

    #[test]
    fn numeric_cross_kind_ordering() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(3.0) > Value::Int(2));
    }

    #[test]
    fn cross_kind_rank_ordering_is_total() {
        let mut vals = [
            Value::str("a"),
            Value::Null,
            Value::Int(1),
            Value::Bool(false),
            Value::Timestamp(5),
            Value::bytes([0u8]),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Timestamp(5));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn int_float_eq_hash_consistent() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(4), Value::Float(4.0));
        assert_eq!(h(&Value::Int(4)), h(&Value::Float(4.0)));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::str("42").coerce(ValueKind::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(1).coerce(ValueKind::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Float(2.0).coerce(ValueKind::Int).unwrap(),
            Value::Int(2)
        );
        assert!(Value::Float(2.5).coerce(ValueKind::Int).is_err());
        assert!(Value::str("abc").coerce(ValueKind::Int).is_err());
        // Everything coerces to Str.
        assert_eq!(
            Value::Timestamp(9).coerce(ValueKind::Str).unwrap(),
            Value::str("@9")
        );
    }

    #[test]
    fn null_coerces_to_anything() {
        for k in [ValueKind::Int, ValueKind::Str, ValueKind::Doc] {
            assert_eq!(Value::Null.coerce(k).unwrap(), Value::Null);
        }
    }

    #[test]
    fn numeric_distance() {
        assert_eq!(
            Value::Float(5.1).numeric_distance(&Value::Float(5.0)),
            Some(0.09999999999999964)
        );
        assert_eq!(Value::Int(3).numeric_distance(&Value::Int(7)), Some(4.0));
        assert_eq!(Value::str("x").numeric_distance(&Value::Int(7)), None);
    }

    #[test]
    fn approx_size_monotone_in_content() {
        assert!(Value::str("longer string").approx_size() > Value::str("s").approx_size());
        let doc = Value::Doc(Arc::new(Doc::Object(vec![(
            "k".to_string(),
            Value::Int(1),
        )])));
        assert!(doc.approx_size() > Value::Int(1).approx_size());
    }

    #[test]
    fn render_is_stable() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::bytes([1, 2, 3]).render(), "<3 bytes>");
        let doc = Value::Doc(Arc::new(Doc::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::str("x")),
        ])));
        assert_eq!(doc.render(), "{a:1,b:x}");
    }
}
