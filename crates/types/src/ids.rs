//! Identifier newtypes used to address data across the three layers.
//!
//! Identity is the backbone of the relation layer: "the key characteristics
//! of the relation layer are to capture entity interconnectedness and to
//! establish the identity of an entity within and across multiple data
//! sources" (§3.2). We therefore distinguish *records* (raw rows in a
//! source, instance layer) from *entities* (resolved real-world objects,
//! relation layer) at the type level.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Build from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A resolved real-world entity in the relation layer.
    EntityId,
    u64,
    "e"
);
id_newtype!(
    /// A registered data source (DrugBank, CTD, a sensor feed, …).
    SourceId,
    u32,
    "src"
);
id_newtype!(
    /// A named concept (class) in the semantic layer's TBox.
    ConceptId,
    u32,
    "C"
);
id_newtype!(
    /// A named role (property) in the semantic layer's RBox.
    RoleId,
    u32,
    "R"
);
id_newtype!(
    /// An attribute (column) of a source schema.
    AttrId,
    u32,
    "a"
);
id_newtype!(
    /// A parallel world — one independent actual world per source (§4.2).
    WorldId,
    u32,
    "w"
);

/// A raw record inside one source: `(source, offset)`.
///
/// Records live in the instance layer; entity resolution maps them onto
/// [`EntityId`]s in the relation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId {
    /// The owning source.
    pub source: SourceId,
    /// Zero-based offset of the record within the source.
    pub offset: u64,
}

impl RecordId {
    /// Build a record id.
    pub fn new(source: SourceId, offset: u64) -> Self {
        RecordId { source, offset }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.source, self.offset)
    }
}

/// Monotonic id generator, shared by layers that mint fresh ids.
#[derive(Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// New generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint the next entity id.
    pub fn next_entity(&mut self) -> EntityId {
        let id = EntityId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids minted so far.
    pub fn count(&self) -> u64 {
        self.next
    }

    /// Ensure future ids are strictly greater than `id` — used when
    /// adopting externally-assigned ids (snapshot rehydration) so fresh
    /// mints never collide with recovered entities.
    pub fn advance_past(&mut self, id: EntityId) {
        self.next = self.next.max(id.0 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(SourceId(1).to_string(), "src1");
        assert_eq!(ConceptId(2).to_string(), "C2");
        assert_eq!(RoleId(0).to_string(), "R0");
        assert_eq!(WorldId(4).to_string(), "w4");
        assert_eq!(RecordId::new(SourceId(1), 9).to_string(), "src1:9");
    }

    #[test]
    fn idgen_is_monotonic_and_dense() {
        let mut g = IdGen::new();
        let a = g.next_entity();
        let b = g.next_entity();
        assert_eq!(a, EntityId(0));
        assert_eq!(b, EntityId(1));
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn index_roundtrip() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(e, EntityId(42));
    }

    #[test]
    fn record_ids_order_by_source_then_offset() {
        let a = RecordId::new(SourceId(0), 10);
        let b = RecordId::new(SourceId(1), 0);
        let c = RecordId::new(SourceId(1), 5);
        assert!(a < b && b < c);
    }
}
