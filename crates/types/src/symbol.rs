//! Interned strings for attribute, concept, and role names.
//!
//! The holistic data model treats meta-data (names of attributes, concepts,
//! roles) as data; names are compared and joined constantly across layers,
//! so we intern them once and pass 4-byte [`Symbol`]s around.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A handle to an interned string inside a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the owning table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// An append-only string interner.
///
/// Lookup by name is O(1) via a hash map; lookup by symbol is O(1) via a
/// dense vector. Strings are stored as `Arc<str>` so resolved names can be
/// handed out without copying.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, Symbol>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing symbol when already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(name);
        let sym = Symbol(self.names.len() as u32);
        self.names.push(Arc::clone(&arc));
        self.by_name.insert(arc, sym);
        sym
    }

    /// Look up a symbol by name without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol to its name. Panics on a foreign symbol only in
    /// debug builds; callers within the workspace always use symbols minted
    /// by the same table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Resolve to a shared `Arc<str>`.
    pub fn resolve_arc(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.names[sym.index()])
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("drug");
        let b = t.intern("drug");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("gene");
        let b = t.intern("disease");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "gene");
        assert_eq!(t.resolve(b), "disease");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("x").is_none());
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }
}
