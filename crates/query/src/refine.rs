//! FS.6 — context-aware query refinement as a random walk.
//!
//! "Is it possible to formulate the discovery and refinement process as a
//! random walk problem, where the initial seeds or the probability of each
//! step taken is driven by query predicates and/or query partial results?"
//! (FS.6). Yes: [`discover`] runs a random walk **with restart** whose
//! restart set is the entities matched by the query's predicates; visit
//! frequency ranks discovered entities by contextual relevance. The
//! uniform-seed walk is the FS.6 baseline the experiment compares against.
//!
//! Discovered entities are turned back into executable ScQL — the
//! "automatically refined queries" of §4.1 ("Is Warfarin sensitive to
//! ethnic background?"-style follow-ups become `SELECT … WHERE attr =
//! '<discovered>'`).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scdb_graph::PropertyGraph;
use scdb_types::{EntityId, Symbol};

use crate::ast::{Atom, CompareOp, Literal, Query};

/// Walk parameters.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Total steps across all walkers.
    pub steps: usize,
    /// Probability of restarting at a seed each step.
    pub restart: f64,
    /// Keep the top-k discoveries.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            steps: 10_000,
            restart: 0.15,
            top_k: 20,
            seed: 21,
        }
    }
}

/// A discovered entity with its relevance score.
#[derive(Debug, Clone, PartialEq)]
pub struct Discovery {
    /// The entity.
    pub entity: EntityId,
    /// Normalized visit frequency in `[0, 1]`.
    pub score: f64,
}

/// Random walk with restart from `seeds`. Returns the top-k non-seed
/// entities by visit frequency.
pub fn discover(
    graph: &PropertyGraph,
    seeds: &[EntityId],
    config: &RefineConfig,
) -> Vec<Discovery> {
    let seeds: Vec<EntityId> = seeds
        .iter()
        .copied()
        .filter(|e| graph.contains(*e))
        .collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut visits: HashMap<EntityId, u64> = HashMap::new();
    let mut current = seeds[0];
    for _ in 0..config.steps {
        if rng.gen_bool(config.restart.clamp(0.0, 1.0)) {
            current = seeds[rng.gen_range(0..seeds.len())];
        }
        // Step over outgoing edges; fall back to incoming so the walk is
        // not trapped by edge direction; restart at dead ends.
        let out = graph.edges(current);
        if !out.is_empty() {
            current = out[rng.gen_range(0..out.len())].to;
        } else {
            let inc = graph.incoming(current);
            if !inc.is_empty() {
                current = inc[rng.gen_range(0..inc.len())].0;
            } else {
                current = seeds[rng.gen_range(0..seeds.len())];
                continue;
            }
        }
        *visits.entry(current).or_insert(0) += 1;
    }
    rank(visits, &seeds, config.top_k)
}

/// The FS.6 baseline: a walk restarting uniformly over *all* vertices —
/// discovery with no query context.
pub fn discover_uniform(graph: &PropertyGraph, config: &RefineConfig) -> Vec<Discovery> {
    let all: Vec<EntityId> = {
        let mut v: Vec<EntityId> = graph.node_ids().collect();
        v.sort();
        v
    };
    if all.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut visits: HashMap<EntityId, u64> = HashMap::new();
    let mut current = all[0];
    for _ in 0..config.steps {
        if rng.gen_bool(config.restart.clamp(0.0, 1.0)) {
            current = all[rng.gen_range(0..all.len())];
        }
        let out = graph.edges(current);
        if !out.is_empty() {
            current = out[rng.gen_range(0..out.len())].to;
        } else {
            current = all[rng.gen_range(0..all.len())];
            continue;
        }
        *visits.entry(current).or_insert(0) += 1;
    }
    rank(visits, &[], config.top_k)
}

fn rank(visits: HashMap<EntityId, u64>, exclude: &[EntityId], top_k: usize) -> Vec<Discovery> {
    let max = visits.values().copied().max().unwrap_or(1).max(1) as f64;
    let mut out: Vec<Discovery> = visits
        .into_iter()
        .filter(|(e, _)| !exclude.contains(e))
        .map(|(entity, v)| Discovery {
            entity,
            score: v as f64 / max,
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.entity.cmp(&b.entity))
    });
    out.truncate(top_k);
    out
}

/// Generate refined follow-up queries from discoveries: for each
/// discovered entity whose node carries `name_attr`, emit a query probing
/// that entity in the original source.
pub fn refine_queries(
    original: &Query,
    discoveries: &[Discovery],
    graph: &PropertyGraph,
    name_attr: Symbol,
    name_attr_str: &str,
) -> Vec<Query> {
    discoveries
        .iter()
        .filter_map(|d| {
            let node = graph.node(d.entity).ok()?;
            let name = node.attrs.get(name_attr)?.render().into_owned();
            Some(Query {
                select: original.select.clone(),
                from: original.from.clone(),
                atoms: vec![Atom::Compare {
                    attr: name_attr_str.to_string(),
                    op: CompareOp::Eq,
                    value: Literal::Str(name),
                }],
                limit: original.limit,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_graph::graph::test_provenance;
    use scdb_types::{SymbolTable, Value};

    /// Two clusters bridged by one edge; seeds in cluster A.
    fn two_clusters() -> (PropertyGraph, Symbol) {
        let mut syms = SymbolTable::new();
        let r = syms.intern("r");
        let mut g = PropertyGraph::new();
        for i in 0..20 {
            g.ensure_node(EntityId(i));
        }
        // Cluster A: 0..10 ring; Cluster B: 10..20 ring; bridge 9→10.
        for i in 0..10 {
            g.add_edge(
                EntityId(i),
                EntityId((i + 1) % 10),
                r,
                test_provenance(0, 0),
            )
            .unwrap();
        }
        for i in 10..20 {
            g.add_edge(
                EntityId(i),
                EntityId(10 + (i + 1 - 10) % 10),
                r,
                test_provenance(0, 0),
            )
            .unwrap();
        }
        g.add_edge(EntityId(9), EntityId(10), r, test_provenance(0, 0))
            .unwrap();
        (g, r)
    }

    #[test]
    fn seeded_walk_stays_near_context() {
        let (g, _) = two_clusters();
        let cfg = RefineConfig {
            steps: 20_000,
            ..Default::default()
        };
        let found = discover(&g, &[EntityId(0)], &cfg);
        assert!(!found.is_empty());
        // Mass should concentrate in cluster A (ids < 10).
        let near: f64 = found
            .iter()
            .filter(|d| d.entity.0 < 10)
            .map(|d| d.score)
            .sum();
        let far: f64 = found
            .iter()
            .filter(|d| d.entity.0 >= 10)
            .map(|d| d.score)
            .sum();
        assert!(near > far, "context bias: near {near} vs far {far}");
    }

    #[test]
    fn uniform_walk_spreads() {
        let (g, _) = two_clusters();
        let cfg = RefineConfig {
            steps: 20_000,
            top_k: 20,
            ..Default::default()
        };
        let found = discover_uniform(&g, &cfg);
        let near = found.iter().filter(|d| d.entity.0 < 10).count();
        let far = found.iter().filter(|d| d.entity.0 >= 10).count();
        assert!(near > 0 && far > 0, "uniform covers both clusters");
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = two_clusters();
        let cfg = RefineConfig::default();
        assert_eq!(
            discover(&g, &[EntityId(3)], &cfg),
            discover(&g, &[EntityId(3)], &cfg)
        );
    }

    #[test]
    fn missing_seeds_yield_nothing() {
        let (g, _) = two_clusters();
        assert!(discover(&g, &[EntityId(999)], &RefineConfig::default()).is_empty());
        assert!(discover(&g, &[], &RefineConfig::default()).is_empty());
    }

    #[test]
    fn top_k_respected() {
        let (g, _) = two_clusters();
        let cfg = RefineConfig {
            top_k: 3,
            ..Default::default()
        };
        assert!(discover(&g, &[EntityId(0)], &cfg).len() <= 3);
    }

    #[test]
    fn refined_queries_probe_discovered_names() {
        let (mut g, _) = two_clusters();
        let mut syms = SymbolTable::new();
        let name = syms.intern("name");
        g.node_mut(EntityId(1))
            .unwrap()
            .attrs
            .set(name, Value::str("Gene-1"));
        let original =
            crate::parser::parse("SELECT * FROM src WHERE name = 'seed' LIMIT 5").unwrap();
        let discoveries = vec![
            Discovery {
                entity: EntityId(1),
                score: 1.0,
            },
            Discovery {
                entity: EntityId(2), // no name attr → skipped
                score: 0.5,
            },
        ];
        let refined = refine_queries(&original, &discoveries, &g, name, "name");
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].from, "src");
        assert_eq!(refined[0].limit, Some(5));
        assert!(refined[0].to_string().contains("Gene-1"));
    }
}
