//! The ScQL lexer.

use crate::error::QueryError;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the input.
    pub at: usize,
    /// The token kind/payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Comma => ",".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Eq => "=".into(),
            TokenKind::Ne => "!=".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize an ScQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let at = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    at,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    at,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    at,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                tokens.push(Token {
                    at,
                    kind: TokenKind::Ne,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        at,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token {
                        at,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        at,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        at,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        at,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                        None => {
                            return Err(QueryError::Lex { at, ch: '\'' });
                        }
                    }
                }
                tokens.push(Token {
                    at,
                    kind: TokenKind::Str(s),
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || (matches!(bytes[i], '+' | '-') && matches!(bytes[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| QueryError::Lex { at, ch: c })?;
                tokens.push(Token {
                    at,
                    kind: TokenKind::Number(n),
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    at,
                    kind: TokenKind::Ident(text),
                });
            }
            other => return Err(QueryError::Lex { at, ch: other }),
        }
    }
    tokens.push(Token {
        at: bytes.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT *, a_b FROM t"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Comma,
                TokenKind::Ident("a_b".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("5 5.1 -3 1e3 2.5e-2"),
            vec![
                TokenKind::Number(5.0),
                TokenKind::Number(5.1),
                TokenKind::Number(-3.0),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'Warfarin' 'it''s'"),
            vec![
                TokenKind::Str("Warfarin".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(lex("'oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_rejected() {
        assert!(matches!(
            lex("a ; b"),
            Err(QueryError::Lex { at: 2, ch: ';' })
        ));
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            kinds("drug.name"),
            vec![TokenKind::Ident("drug.name".into()), TokenKind::Eof]
        );
    }
}
