//! FS.9 — context-aware materialization of discovered facts.
//!
//! "How do we formulate the feedback mechanism to materialize the
//! discovered information guided by the context of query? If the
//! discovered information is conflicting, then how could we automatically
//! assess the richness or validity of discovered entities based on the
//! degree of richness of each source?" (FS.9)
//!
//! [`MaterializationCache`] stores facts discovered during refinement,
//! keyed by a *context* (a canonicalized rendering of the driving query).
//! Conflicting facts — same subject and role, different object — are
//! resolved by source richness (the FS.2 score), implementing the
//! statement's feedback loop. Eviction is least-recently-used over
//! contexts, and hit/miss counters feed experiment E-T1-FS9.

use std::collections::HashMap;

use scdb_types::EntityId;

/// A discovered, materializable fact.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredFact {
    /// Subject entity.
    pub subject: EntityId,
    /// Role name.
    pub role: String,
    /// Object entity.
    pub object: EntityId,
    /// Richness of the source that contributed the fact (FS.2).
    pub richness: f64,
}

/// LRU, context-keyed materialization cache.
#[derive(Debug)]
pub struct MaterializationCache {
    capacity: usize,
    entries: HashMap<String, Vec<DiscoveredFact>>,
    /// Recency: higher = more recent.
    stamp: HashMap<String, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl MaterializationCache {
    /// Cache retaining at most `capacity` contexts.
    pub fn new(capacity: usize) -> Self {
        MaterializationCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            stamp: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, context: &str) {
        self.clock += 1;
        self.stamp.insert(context.to_string(), self.clock);
    }

    /// Materialize `facts` under `context`, resolving conflicts by
    /// richness. Returns how many facts were rejected as
    /// conflicting-but-poorer.
    pub fn materialize(&mut self, context: &str, facts: Vec<DiscoveredFact>) -> usize {
        self.touch(context);
        let entry = self.entries.entry(context.to_string()).or_default();
        let mut rejected = 0;
        for fact in facts {
            match entry
                .iter_mut()
                .find(|f| f.subject == fact.subject && f.role == fact.role)
            {
                Some(existing) if existing.object != fact.object => {
                    // Conflict: richer source wins (FS.9's validity
                    // assessment).
                    if fact.richness > existing.richness {
                        *existing = fact;
                    } else {
                        rejected += 1;
                    }
                }
                Some(existing) => {
                    // Same fact: keep the stronger richness evidence.
                    if fact.richness > existing.richness {
                        existing.richness = fact.richness;
                    }
                }
                None => entry.push(fact),
            }
        }
        self.evict();
        rejected
    }

    /// Look up materialized facts for `context`, counting hit/miss.
    pub fn lookup(&mut self, context: &str) -> Option<&[DiscoveredFact]> {
        if self.entries.contains_key(context) {
            self.hits += 1;
            scdb_obs::metrics().inc("query.mat_cache_hits");
            self.touch(context);
            self.entries.get(context).map(Vec::as_slice)
        } else {
            self.misses += 1;
            scdb_obs::metrics().inc("query.mat_cache_misses");
            None
        }
    }

    fn evict(&mut self) {
        while self.entries.len() > self.capacity {
            if let Some(oldest) = self
                .stamp
                .iter()
                .filter(|(k, _)| self.entries.contains_key(*k))
                .min_by_key(|(_, ts)| **ts)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.stamp.remove(&oldest);
            } else {
                break;
            }
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Canonical context key for a query: its normalized rendering. Two
/// queries differing only in atom order share a key.
pub fn context_key(query: &crate::ast::Query) -> String {
    let mut atoms: Vec<String> = query.atoms.iter().map(|a| a.to_string()).collect();
    atoms.sort();
    format!("{}|{}", query.from, atoms.join("&"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fact(s: u64, role: &str, o: u64, richness: f64) -> DiscoveredFact {
        DiscoveredFact {
            subject: EntityId(s),
            role: role.to_string(),
            object: EntityId(o),
            richness,
        }
    }

    #[test]
    fn materialize_then_hit() {
        let mut c = MaterializationCache::new(4);
        assert!(c.lookup("ctx").is_none());
        c.materialize("ctx", vec![fact(1, "has_target", 2, 0.5)]);
        let got = c.lookup("ctx").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn conflicts_resolved_by_richness() {
        let mut c = MaterializationCache::new(4);
        c.materialize("ctx", vec![fact(1, "treats", 2, 0.3)]);
        // Richer source overrides.
        let rejected = c.materialize("ctx", vec![fact(1, "treats", 3, 0.9)]);
        assert_eq!(rejected, 0);
        assert_eq!(c.lookup("ctx").unwrap()[0].object, EntityId(3));
        // Poorer source rejected.
        let rejected = c.materialize("ctx", vec![fact(1, "treats", 4, 0.1)]);
        assert_eq!(rejected, 1);
        assert_eq!(c.lookup("ctx").unwrap()[0].object, EntityId(3));
    }

    #[test]
    fn agreeing_fact_strengthens_richness() {
        let mut c = MaterializationCache::new(4);
        c.materialize("ctx", vec![fact(1, "treats", 2, 0.3)]);
        c.materialize("ctx", vec![fact(1, "treats", 2, 0.8)]);
        let got = c.lookup("ctx").unwrap();
        assert_eq!(got.len(), 1);
        assert!((got[0].richness - 0.8).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction() {
        let mut c = MaterializationCache::new(2);
        c.materialize("a", vec![fact(1, "r", 2, 0.5)]);
        c.materialize("b", vec![fact(3, "r", 4, 0.5)]);
        assert!(c.lookup("a").is_some()); // touch a: b is now LRU
        c.materialize("c", vec![fact(5, "r", 6, 0.5)]);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("b").is_none(), "b evicted");
        assert!(c.lookup("a").is_some());
        assert!(c.lookup("c").is_some());
    }

    #[test]
    fn context_key_is_order_insensitive() {
        let q1 = parse("SELECT * FROM t WHERE a = 1 AND b = 2").unwrap();
        let q2 = parse("SELECT * FROM t WHERE b = 2 AND a = 1").unwrap();
        assert_eq!(context_key(&q1), context_key(&q2));
        let q3 = parse("SELECT * FROM t WHERE a = 1").unwrap();
        assert_ne!(context_key(&q1), context_key(&q3));
    }

    #[test]
    fn distinct_roles_do_not_conflict() {
        let mut c = MaterializationCache::new(4);
        c.materialize(
            "ctx",
            vec![fact(1, "treats", 2, 0.5), fact(1, "has_target", 3, 0.5)],
        );
        assert_eq!(c.lookup("ctx").unwrap().len(), 2);
    }
}
