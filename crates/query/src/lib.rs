//! The context-aware query model of the `scdb` self-curating database
//! (paper §4).
//!
//! FS.5 asks for "a new semantically enriched query language that combines
//! the expressiveness and declarativeness power of SQL … and the leading
//! semantic formalisms such as OWL … \[extended\] with machine learning
//! models". The answer here is **ScQL**, a small but real language:
//!
//! ```text
//! SELECT name, dose FROM trials
//! WHERE dose CLOSE TO 5.0 WITHIN 0.5     -- fuzzy atom (§4.2 closeness)
//!   AND name = 'Warfarin'                -- relational atom
//!   AND entity IS 'Drug'                 -- semantic atom (OWL membership)
//!   AND entity HAS SOME has_target       -- existential atom (§3.3)
//!   AND LINKED BY link_model >= 0.7      -- model atom (FS.4/FS.5)
//! LIMIT 10
//! ```
//!
//! Modules:
//!
//! * [`ast`], [`lexer`], [`parser`] — the language front-end;
//! * [`plan`] — logical plans with cardinality estimates;
//! * [`optimizer`] — **OS.3**: rule/cost optimization *plus* semantic
//!   rewrites (subsumption collapse, disjointness unsat pruning, range
//!   merging), each individually toggleable for the ablation;
//! * [`exec`] — the evaluator, instrumented with per-atom evaluation
//!   counts so optimizer wins are measurable;
//! * [`refine`] — **FS.6**: query refinement as a random walk seeded by
//!   query predicates;
//! * [`qbe`] — **FS.7**: incremental query-by-example completion;
//! * [`crowd`] — **FS.8**: crowd escalation under qualitative and
//!   quantitative cost functions;
//! * [`materialize`] — **FS.9**: context-keyed materialization of
//!   discovered facts with richness-weighted conflict resolution.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod crowd;
pub mod exec;
pub mod lexer;
pub mod materialize;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod qbe;
pub mod refine;

pub mod error;

pub use ast::{Atom, CompareOp, Literal, Query};
pub use error::QueryError;
pub use exec::{ExecStats, Executor, RowSource, StoreSource};
pub use optimizer::{Optimizer, OptimizerConfig, SemanticContext, INDEX_SELECTIVITY_THRESHOLD};
pub use parser::parse;
pub use plan::{LogicalPlan, PlanNode};
