//! FS.8 — crowdsourced incompleteness resolution.
//!
//! "Is it possible to extend the crowdsourcing formalism to identify and
//! assess the necessity to fetch incomplete data given certain qualitative
//! (to improve the accuracy and coverage of answers) or quantitative (to
//! find information faster) cost functions?" (FS.8)
//!
//! The crowd is simulated (DESIGN.md substitution): workers answer boolean
//! questions correctly with a per-worker accuracy, at a per-ask cost. Two
//! escalation policies implement the statement's two cost-function
//! families:
//!
//! * **qualitative** — keep asking until the posterior confidence of the
//!   majority answer reaches a target (accuracy-driven);
//! * **quantitative** — spend at most a budget, distributing asks over
//!   questions round-robin (speed/cost-driven).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated worker.
#[derive(Debug, Clone, Copy)]
pub struct Worker {
    /// Probability of answering correctly.
    pub accuracy: f64,
    /// Cost per answered question.
    pub cost: f64,
}

/// The escalation policy.
#[derive(Debug, Clone, Copy)]
pub enum CostFunction {
    /// Ask until the majority's posterior confidence ≥ `target` (or the
    /// per-question ask cap is hit).
    Qualitative {
        /// Target posterior confidence.
        target: f64,
        /// Hard cap on asks per question.
        max_asks: usize,
    },
    /// Spend at most `budget` total cost across all questions.
    Quantitative {
        /// Total budget.
        budget: f64,
    },
}

/// Outcome of a crowd run.
#[derive(Debug, Clone)]
pub struct CrowdOutcome {
    /// Final answer per question (majority vote; `None` when never
    /// asked).
    pub answers: Vec<Option<bool>>,
    /// Total cost spent.
    pub total_cost: f64,
    /// Total asks issued.
    pub asks: usize,
    /// Fraction of answered questions answered correctly (requires the
    /// ground truth passed to [`resolve`]; this is the experiment's
    /// metric, not information the system would have in production).
    pub accuracy: f64,
}

/// Posterior confidence of the majority under a symmetric-accuracy model:
/// with `yes` yes-votes and `no` no-votes from workers of accuracy `p`,
/// the log-odds of the majority being right grow with the vote margin.
fn majority_confidence(yes: usize, no: usize, p: f64) -> f64 {
    let margin = yes.abs_diff(no) as f64;
    let p = p.clamp(0.51, 0.999);
    let odds = (p / (1.0 - p)).powf(margin);
    odds / (1.0 + odds)
}

/// Run the crowd over boolean `questions` (each paired with its ground
/// truth for scoring). Workers are drawn round-robin from `pool`.
pub fn resolve(
    questions: &[bool],
    pool: &[Worker],
    cost_fn: CostFunction,
    seed: u64,
) -> CrowdOutcome {
    if questions.is_empty() || pool.is_empty() {
        return CrowdOutcome {
            answers: vec![None; questions.len()],
            total_cost: 0.0,
            asks: 0,
            accuracy: 0.0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_acc: f64 = pool.iter().map(|w| w.accuracy).sum::<f64>() / pool.len() as f64;
    let mut votes: Vec<(usize, usize)> = vec![(0, 0); questions.len()]; // (yes, no)
    let mut total_cost = 0.0;
    let mut asks = 0usize;
    let mut worker_idx = 0usize;

    let ask = |q: usize,
               votes: &mut Vec<(usize, usize)>,
               total_cost: &mut f64,
               asks: &mut usize,
               worker_idx: &mut usize,
               rng: &mut StdRng| {
        let w = pool[*worker_idx % pool.len()];
        *worker_idx += 1;
        let correct = rng.gen_bool(w.accuracy.clamp(0.0, 1.0));
        let answer = if correct { questions[q] } else { !questions[q] };
        if answer {
            votes[q].0 += 1;
        } else {
            votes[q].1 += 1;
        }
        *total_cost += w.cost;
        *asks += 1;
    };

    match cost_fn {
        CostFunction::Qualitative { target, max_asks } => {
            for q in 0..questions.len() {
                for _ in 0..max_asks.max(1) {
                    ask(
                        q,
                        &mut votes,
                        &mut total_cost,
                        &mut asks,
                        &mut worker_idx,
                        &mut rng,
                    );
                    let (yes, no) = votes[q];
                    if yes != no && majority_confidence(yes, no, mean_acc) >= target {
                        break;
                    }
                }
            }
        }
        CostFunction::Quantitative { budget } => {
            let mut q = 0usize;
            loop {
                let next_cost = pool[worker_idx % pool.len()].cost;
                if total_cost + next_cost > budget {
                    break;
                }
                ask(
                    q,
                    &mut votes,
                    &mut total_cost,
                    &mut asks,
                    &mut worker_idx,
                    &mut rng,
                );
                q = (q + 1) % questions.len();
            }
        }
    }

    let answers: Vec<Option<bool>> = votes
        .iter()
        .map(
            |(yes, no)| {
                if yes + no == 0 {
                    None
                } else {
                    Some(yes >= no)
                }
            },
        )
        .collect();
    let answered: Vec<(usize, bool)> = answers
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|v| (i, v)))
        .collect();
    let correct = answered.iter().filter(|(i, v)| *v == questions[*i]).count();
    let accuracy = if answered.is_empty() {
        0.0
    } else {
        correct as f64 / answered.len() as f64
    };
    CrowdOutcome {
        answers,
        total_cost,
        asks,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(accuracy: f64, n: usize) -> Vec<Worker> {
        vec![
            Worker {
                accuracy,
                cost: 1.0
            };
            n
        ]
    }

    #[test]
    fn qualitative_reaches_high_accuracy() {
        let questions: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let out = resolve(
            &questions,
            &pool(0.8, 10),
            CostFunction::Qualitative {
                target: 0.95,
                max_asks: 15,
            },
            1,
        );
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
        assert!(out.answers.iter().all(Option::is_some));
    }

    #[test]
    fn quantitative_respects_budget() {
        let questions: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let out = resolve(
            &questions,
            &pool(0.8, 10),
            CostFunction::Quantitative { budget: 30.0 },
            1,
        );
        assert!(out.total_cost <= 30.0);
        assert_eq!(out.asks, 30);
        // Only 30 asks over 50 questions: some unanswered.
        assert!(out.answers.iter().any(Option::is_none));
    }

    #[test]
    fn more_budget_more_accuracy() {
        let questions: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let cheap = resolve(
            &questions,
            &pool(0.7, 10),
            CostFunction::Quantitative { budget: 40.0 },
            7,
        );
        let rich = resolve(
            &questions,
            &pool(0.7, 10),
            CostFunction::Quantitative { budget: 400.0 },
            7,
        );
        assert!(
            rich.accuracy >= cheap.accuracy,
            "rich {} vs cheap {}",
            rich.accuracy,
            cheap.accuracy
        );
        assert!(rich.accuracy > 0.85);
    }

    #[test]
    fn better_workers_need_fewer_asks() {
        let questions: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let qual = CostFunction::Qualitative {
            target: 0.9,
            max_asks: 20,
        };
        let sloppy = resolve(&questions, &pool(0.65, 10), qual, 3);
        let sharp = resolve(&questions, &pool(0.95, 10), qual, 3);
        assert!(
            sharp.asks < sloppy.asks,
            "sharp {} vs sloppy {}",
            sharp.asks,
            sloppy.asks
        );
    }

    #[test]
    fn deterministic() {
        let questions = vec![true, false, true];
        let a = resolve(
            &questions,
            &pool(0.8, 3),
            CostFunction::Quantitative { budget: 9.0 },
            42,
        );
        let b = resolve(
            &questions,
            &pool(0.8, 3),
            CostFunction::Quantitative { budget: 9.0 },
            42,
        );
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.total_cost, b.total_cost);
    }

    #[test]
    fn degenerate_inputs() {
        let out = resolve(
            &[],
            &pool(0.9, 2),
            CostFunction::Quantitative { budget: 5.0 },
            1,
        );
        assert_eq!(out.asks, 0);
        let out = resolve(&[true], &[], CostFunction::Quantitative { budget: 5.0 }, 1);
        assert_eq!(out.answers, vec![None]);
    }

    #[test]
    fn majority_confidence_grows_with_margin() {
        let c1 = majority_confidence(2, 1, 0.8);
        let c3 = majority_confidence(4, 1, 0.8);
        assert!(c3 > c1);
        assert!(c1 > 0.5);
        assert!((majority_confidence(1, 1, 0.8) - 0.5).abs() < 1e-9);
    }
}
