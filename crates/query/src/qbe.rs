//! FS.7 — incremental query-by-example completion.
//!
//! "Is it possible to extend the query-by-example formalism [Zloof, VLDB
//! '75] for filling missing data to introduce an incremental process so
//! the query answer is partially computed, and the partial answer becomes
//! an example with incompleteness (missing values) for raising/refining
//! additional queries?" (FS.7)
//!
//! [`complete`] does exactly that: each example row with missing
//! attributes is matched against the corpus on its *present* attributes;
//! the best match above a similarity floor donates values for the missing
//! attributes; the now-richer example re-enters the pool for the next
//! iteration, where its filled values may unlock better matches —
//! the partial answer literally becomes the next example.

use std::collections::HashSet;

use scdb_er::similarity::value_similarity;
use scdb_types::{Record, Symbol};

/// Probe-oriented similarity: average value similarity over the *probe's*
/// attributes (the example's known cells). Unlike general record
/// similarity, missing attributes on the probe side must not count
/// against a donor — they are exactly the holes QBE is trying to fill.
fn probe_similarity(probe: &Record, donor: &Record) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (attr, v) in probe.iter() {
        if let Some(d) = donor.get(attr) {
            total += value_similarity(v, d);
        }
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Completion parameters.
#[derive(Debug, Clone)]
pub struct QbeConfig {
    /// Maximum refinement iterations.
    pub max_iterations: usize,
    /// Minimum similarity for a corpus row to donate values.
    pub min_similarity: f64,
}

impl Default for QbeConfig {
    fn default() -> Self {
        QbeConfig {
            max_iterations: 4,
            min_similarity: 0.6,
        }
    }
}

/// One filled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fill {
    /// Example row index.
    pub example: usize,
    /// The attribute filled.
    pub attr: Symbol,
    /// Similarity of the donating row.
    pub similarity: f64,
    /// Iteration at which the fill happened (1-based).
    pub iteration: usize,
}

/// Completion result.
#[derive(Debug, Clone)]
pub struct QbeResult {
    /// The examples with as many holes filled as possible.
    pub completed: Vec<Record>,
    /// Every fill performed, in order.
    pub fills: Vec<Fill>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// The attribute universe: everything any corpus row mentions.
fn attr_universe(corpus: &[Record]) -> Vec<Symbol> {
    let mut set: HashSet<Symbol> = HashSet::new();
    for r in corpus {
        set.extend(r.attrs());
    }
    let mut v: Vec<Symbol> = set.into_iter().collect();
    v.sort();
    v
}

/// Complete `examples` against `corpus`.
pub fn complete(examples: &[Record], corpus: &[Record], config: &QbeConfig) -> QbeResult {
    let universe = attr_universe(corpus);
    let mut completed: Vec<Record> = examples.to_vec();
    let mut fills = Vec::new();
    let mut iterations = 0;

    for iter in 1..=config.max_iterations.max(1) {
        iterations = iter;
        let mut changed = false;
        for (idx, example) in completed.iter_mut().enumerate() {
            // Missing attributes: in the universe but absent or null here.
            let missing: Vec<Symbol> = universe
                .iter()
                .copied()
                .filter(|a| example.get(*a).map(|v| v.is_null()).unwrap_or(true))
                .collect();
            if missing.is_empty() {
                continue;
            }
            // Best matching corpus row on present *non-null* attributes
            // (nulls are the holes being filled; they must not drag the
            // similarity down).
            let probe: Record = example
                .iter()
                .filter(|(_, v)| !v.is_null())
                .map(|(a, v)| (a, v.clone()))
                .collect();
            let mut best: Option<(f64, &Record)> = None;
            for row in corpus {
                let sim = probe_similarity(&probe, row);
                if sim >= config.min_similarity && best.map(|(b, _)| sim > b).unwrap_or(true) {
                    best = Some((sim, row));
                }
            }
            if let Some((sim, donor)) = best {
                for attr in missing {
                    if let Some(v) = donor.get(attr) {
                        if !v.is_null() {
                            example.set(attr, v.clone());
                            fills.push(Fill {
                                example: idx,
                                attr,
                                similarity: sim,
                                iteration: iter,
                            });
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    QbeResult {
        completed,
        fills,
        iterations,
    }
}

/// Fraction of originally missing cells that got filled — the headline
/// number of experiment E-T1-FS7.
pub fn fill_rate(examples: &[Record], result: &QbeResult, corpus: &[Record]) -> f64 {
    let universe = attr_universe(corpus);
    let missing_before: usize = examples
        .iter()
        .map(|e| {
            universe
                .iter()
                .filter(|a| e.get(**a).map(|v| v.is_null()).unwrap_or(true))
                .count()
        })
        .sum();
    if missing_before == 0 {
        return 1.0;
    }
    result.fills.len() as f64 / missing_before as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::{SymbolTable, Value};

    /// Corpus: drugs with name/gene/disease. Examples: partial rows.
    fn fixture() -> (SymbolTable, Vec<Record>, Symbol, Symbol, Symbol) {
        let mut syms = SymbolTable::new();
        let name = syms.intern("name");
        let gene = syms.intern("gene");
        let disease = syms.intern("disease");
        let corpus = vec![
            Record::from_pairs([
                (name, Value::str("Warfarin")),
                (gene, Value::str("TP53")),
                (disease, Value::str("Embolism")),
            ]),
            Record::from_pairs([
                (name, Value::str("Ibuprofen")),
                (gene, Value::str("PTGS2")),
                (disease, Value::str("Arthritis")),
            ]),
            Record::from_pairs([
                (name, Value::str("Methotrexate")),
                (gene, Value::str("DHFR")),
                (disease, Value::str("Osteosarcoma")),
            ]),
        ];
        (syms, corpus, name, gene, disease)
    }

    #[test]
    fn fills_missing_cells_from_best_match() {
        let (_syms, corpus, name, gene, disease) = fixture();
        let examples = vec![Record::from_pairs([(name, Value::str("warfarin"))])];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        let row = &result.completed[0];
        assert_eq!(row.get(gene), Some(&Value::str("TP53")));
        assert_eq!(row.get(disease), Some(&Value::str("Embolism")));
        assert_eq!(result.fills.len(), 2);
        assert!(result.fills.iter().all(|f| f.similarity > 0.9));
    }

    #[test]
    fn explicit_nulls_count_as_missing() {
        let (_syms, corpus, name, gene, _d) = fixture();
        let examples = vec![Record::from_pairs([
            (name, Value::str("Ibuprofen")),
            (gene, Value::Null),
        ])];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        assert_eq!(result.completed[0].get(gene), Some(&Value::str("PTGS2")));
    }

    #[test]
    fn low_similarity_examples_stay_incomplete() {
        let (_syms, corpus, name, gene, _d) = fixture();
        let examples = vec![Record::from_pairs([(name, Value::str("Zzzymoxidil"))])];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        assert!(result.completed[0].get(gene).is_none());
        assert!(result.fills.is_empty());
    }

    #[test]
    fn incremental_iterations_cascade() {
        // Example knows only the gene; first pass fills name+disease from
        // the gene match... requires matching on gene alone.
        let (_syms, corpus, _name, gene, disease) = fixture();
        let examples = vec![Record::from_pairs([(gene, Value::str("DHFR"))])];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        assert_eq!(
            result.completed[0].get(disease),
            Some(&Value::str("Osteosarcoma"))
        );
        assert!(result.iterations >= 1);
    }

    #[test]
    fn fill_rate_metric() {
        let (_syms, corpus, name, _g, _d) = fixture();
        let examples = vec![Record::from_pairs([(name, Value::str("Warfarin"))])];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        let rate = fill_rate(&examples, &result, &corpus);
        assert!((rate - 1.0).abs() < 1e-9, "both holes filled: {rate}");
    }

    #[test]
    fn complete_examples_untouched() {
        let (_syms, corpus, ..) = fixture();
        let examples = vec![corpus[0].clone()];
        let result = complete(&examples, &corpus, &QbeConfig::default());
        assert!(result.fills.is_empty());
        assert_eq!(result.completed[0], corpus[0]);
        assert_eq!(fill_rate(&examples, &result, &corpus), 1.0);
    }

    #[test]
    fn empty_corpus_no_fills() {
        let (_syms, _corpus, name, ..) = fixture();
        let examples = vec![Record::from_pairs([(name, Value::str("x"))])];
        let result = complete(&examples, &[], &QbeConfig::default());
        assert!(result.fills.is_empty());
    }
}
