//! Logical plans.
//!
//! ScQL queries compile to a linear select–project–limit pipeline (joins
//! happen implicitly through the relation layer's links rather than
//! relational join operators — the paper's "instance-level" integration).
//! The plan carries its estimated cardinality, the rewrite log, and an
//! `empty` flag set when the optimizer *proves* the query unsatisfiable
//! (OS.3: "predicates … can be dropped because they are redundant or
//! unsatisfiable").

use std::fmt;

use crate::ast::{Atom, Query};

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan a named source.
    Scan {
        /// Source name.
        source: String,
    },
    /// Fetch candidate rows through a secondary index instead of
    /// scanning every row. The driving atom stays in the filter stage
    /// too (residual re-check), so an index that is concurrently
    /// dropped degrades to a full scan without changing results.
    IndexScan {
        /// Source name.
        source: String,
        /// Index name (for EXPLAIN; execution matches on the attribute).
        index: String,
        /// The comparison atom pushed into the index lookup.
        atom: Atom,
    },
    /// Filter by conjunctive atoms, evaluated in order.
    Filter {
        /// Ordered atoms (the optimizer orders them most-selective
        /// first).
        atoms: Vec<Atom>,
    },
    /// Project to named attributes (empty = all).
    Project {
        /// Attributes to keep.
        attrs: Vec<String>,
    },
    /// Stop after `n` rows.
    Limit {
        /// Row cap.
        n: usize,
    },
}

/// A compiled logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Pipeline stages in execution order.
    pub nodes: Vec<PlanNode>,
    /// Estimated output cardinality (rows), when statistics were
    /// available.
    pub estimated_rows: Option<f64>,
    /// Proven-empty flag: the optimizer established unsatisfiability.
    pub empty: bool,
    /// Human-readable rewrite log (one entry per applied rewrite).
    pub rewrites: Vec<String>,
}

impl LogicalPlan {
    /// Naive plan straight from the AST: scan → filter (atom order as
    /// written) → project → limit.
    pub fn from_query(query: &Query) -> Self {
        let mut nodes = vec![PlanNode::Scan {
            source: query.from.clone(),
        }];
        if !query.atoms.is_empty() {
            nodes.push(PlanNode::Filter {
                atoms: query.atoms.clone(),
            });
        }
        if !query.select.is_empty() {
            nodes.push(PlanNode::Project {
                attrs: query.select.clone(),
            });
        }
        if let Some(n) = query.limit {
            nodes.push(PlanNode::Limit { n });
        }
        LogicalPlan {
            nodes,
            estimated_rows: None,
            empty: false,
            rewrites: Vec::new(),
        }
    }

    /// The filter atoms, if a filter stage exists.
    pub fn filter_atoms(&self) -> &[Atom] {
        self.nodes
            .iter()
            .find_map(|n| match n {
                PlanNode::Filter { atoms } => Some(atoms.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// Replace the filter atoms (inserting a filter stage after the scan
    /// when one did not exist and `atoms` is non-empty; removing it when
    /// `atoms` is empty).
    pub fn set_filter_atoms(&mut self, atoms: Vec<Atom>) {
        let idx = self
            .nodes
            .iter()
            .position(|n| matches!(n, PlanNode::Filter { .. }));
        match (idx, atoms.is_empty()) {
            (Some(i), true) => {
                self.nodes.remove(i);
            }
            (Some(i), false) => self.nodes[i] = PlanNode::Filter { atoms },
            (None, true) => {}
            (None, false) => self.nodes.insert(1, PlanNode::Filter { atoms }),
        }
    }

    /// The scanned source name.
    pub fn source(&self) -> Option<&str> {
        self.nodes.iter().find_map(|n| match n {
            PlanNode::Scan { source } | PlanNode::IndexScan { source, .. } => Some(source.as_str()),
            _ => None,
        })
    }

    /// The index-scan access path, when the optimizer chose one.
    pub fn index_scan(&self) -> Option<(&str, &Atom)> {
        self.nodes.iter().find_map(|n| match n {
            PlanNode::IndexScan { index, atom, .. } => Some((index.as_str(), atom)),
            _ => None,
        })
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            writeln!(f, "EmptyResult (proven unsatisfiable)")?;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let indent = "  ".repeat(i);
            match node {
                PlanNode::Scan { source } => writeln!(f, "{indent}Scan {source}")?,
                PlanNode::IndexScan {
                    source,
                    index,
                    atom,
                } => writeln!(f, "{indent}IndexScan {source} via {index} [{atom}]")?,
                PlanNode::Filter { atoms } => {
                    let rendered: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
                    writeln!(f, "{indent}Filter [{}]", rendered.join(" AND "))?;
                }
                PlanNode::Project { attrs } => {
                    writeln!(f, "{indent}Project [{}]", attrs.join(", "))?;
                }
                PlanNode::Limit { n } => writeln!(f, "{indent}Limit {n}")?,
            }
        }
        if let Some(rows) = self.estimated_rows {
            writeln!(f, "estimated rows: {rows:.1}")?;
        }
        for r in &self.rewrites {
            writeln!(f, "rewrite: {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn from_query_shapes_pipeline() {
        let q = parse("SELECT a, b FROM t WHERE a = 1 LIMIT 3").unwrap();
        let p = LogicalPlan::from_query(&q);
        assert_eq!(p.nodes.len(), 4);
        assert!(matches!(&p.nodes[0], PlanNode::Scan { source } if source == "t"));
        assert!(matches!(&p.nodes[3], PlanNode::Limit { n: 3 }));
        assert_eq!(p.filter_atoms().len(), 1);
        assert_eq!(p.source(), Some("t"));
    }

    #[test]
    fn no_filter_no_project() {
        let q = parse("SELECT * FROM t").unwrap();
        let p = LogicalPlan::from_query(&q);
        assert_eq!(p.nodes.len(), 1);
        assert!(p.filter_atoms().is_empty());
    }

    #[test]
    fn set_filter_atoms_inserts_and_removes() {
        let q = parse("SELECT * FROM t").unwrap();
        let mut p = LogicalPlan::from_query(&q);
        p.set_filter_atoms(vec![crate::ast::Atom::Compare {
            attr: "a".into(),
            op: crate::ast::CompareOp::Eq,
            value: crate::ast::Literal::Int(1),
        }]);
        assert_eq!(p.filter_atoms().len(), 1);
        p.set_filter_atoms(vec![]);
        assert!(p.filter_atoms().is_empty());
        assert_eq!(p.nodes.len(), 1);
    }

    #[test]
    fn display_renders_stages() {
        let q = parse("SELECT a FROM t WHERE a > 2 LIMIT 1").unwrap();
        let p = LogicalPlan::from_query(&q);
        let s = p.to_string();
        assert!(s.contains("Scan t"));
        assert!(s.contains("Filter [a > 2]"));
        assert!(s.contains("Limit 1"));
    }
}
