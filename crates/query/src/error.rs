//! Errors for the query layer.

use std::fmt;

/// Errors produced by parsing, planning, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// Offending character.
        ch: char,
    },
    /// Unexpected token during parsing.
    Parse {
        /// Byte offset of the unexpected token.
        at: usize,
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A semantic atom referenced an undeclared concept.
    UnknownConcept(String),
    /// A model atom referenced an unknown model.
    UnknownModel(String),
    /// The query referenced an unknown source.
    UnknownSource(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { at, ch } => write!(f, "unexpected character {ch:?} at offset {at}"),
            QueryError::Parse {
                at,
                expected,
                found,
            } => write!(
                f,
                "parse error at offset {at}: expected {expected}, found {found}"
            ),
            QueryError::UnknownConcept(c) => write!(f, "unknown concept in IS atom: {c}"),
            QueryError::UnknownModel(m) => write!(f, "unknown model in LINKED BY atom: {m}"),
            QueryError::UnknownSource(s) => write!(f, "unknown source: {s}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            at: 3,
            expected: "FROM".into(),
            found: "WHERE".into(),
        };
        assert!(e.to_string().contains("expected FROM"));
        assert!(QueryError::Lex { at: 0, ch: '§' }
            .to_string()
            .contains("'§'"));
    }
}
