//! Errors for the query layer.

use std::fmt;

/// Errors produced by parsing, planning, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// Offending character.
        ch: char,
    },
    /// Unexpected token during parsing.
    Parse {
        /// Byte offset of the unexpected token.
        at: usize,
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A semantic atom referenced an undeclared concept.
    UnknownConcept(String),
    /// A model atom referenced an unknown model.
    UnknownModel(String),
    /// The query referenced an unknown source.
    UnknownSource(String),
    /// A parallel scan worker failed; wraps the underlying error so the
    /// failing chunk is identifiable in the `source()` chain.
    Worker {
        /// Zero-based index of the scan worker (== chunk index).
        worker: usize,
        /// The error the worker hit.
        cause: Box<QueryError>,
    },
}

impl QueryError {
    /// Tag `self` with the parallel-scan worker it came from, unless it
    /// is already worker-tagged (a panic placeholder, for instance).
    pub(crate) fn for_worker(self, worker: usize) -> QueryError {
        match self {
            e @ QueryError::Worker { .. } => e,
            e => QueryError::Worker {
                worker,
                cause: Box::new(e),
            },
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { at, ch } => write!(f, "unexpected character {ch:?} at offset {at}"),
            QueryError::Parse {
                at,
                expected,
                found,
            } => write!(
                f,
                "parse error at offset {at}: expected {expected}, found {found}"
            ),
            QueryError::UnknownConcept(c) => write!(f, "unknown concept in IS atom: {c}"),
            QueryError::UnknownModel(m) => write!(f, "unknown model in LINKED BY atom: {m}"),
            QueryError::UnknownSource(s) => write!(f, "unknown source: {s}"),
            QueryError::Worker { worker, cause } => {
                write!(f, "scan worker {worker} failed: {cause}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Worker { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            at: 3,
            expected: "FROM".into(),
            found: "WHERE".into(),
        };
        assert!(e.to_string().contains("expected FROM"));
        assert!(QueryError::Lex { at: 0, ch: '§' }
            .to_string()
            .contains("'§'"));
    }

    #[test]
    fn worker_error_chains_cause() {
        use std::error::Error as _;
        let e = QueryError::UnknownModel("m".into()).for_worker(3);
        assert!(e.to_string().contains("scan worker 3"));
        let src = e.source().expect("worker error has a source");
        assert!(src.to_string().contains("unknown model"));
        // Re-tagging keeps the original worker index.
        let e2 = e.clone().for_worker(9);
        assert_eq!(e2, e);
    }
}
