//! The instrumented ScQL executor.
//!
//! Evaluation is deliberately simple — a scan with short-circuiting
//! conjunctive filters — because the experiments measure *relative* costs:
//! per-atom evaluation counts expose the optimizer's reordering and
//! pruning wins (E-T1-OS3) independent of machine noise. Fuzzy atoms
//! evaluate to membership degrees and pass at the `alpha` cut; semantic
//! atoms consult the saturated ABox; model atoms call a trained FS.4
//! model over caller-provided features.

use std::collections::HashMap;

use scdb_semantic::{Ontology, Saturation, TrainedModel};
use scdb_storage::RowStore;
use scdb_types::{EntityId, Record, Symbol, SymbolTable, Value};
use scdb_uncertain::FuzzyPredicate;

use crate::ast::{Atom, CompareOp};
use crate::error::QueryError;
use crate::plan::{LogicalPlan, PlanNode};

/// A scannable source of records.
pub trait RowSource {
    /// Source name (matched against the plan's scan).
    fn name(&self) -> &str;
    /// Number of rows (for optimizer base cardinality).
    fn len(&self) -> usize;
    /// True when the source has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Scan all rows.
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_>;
    /// Resolve an attribute name to its symbol.
    fn attr(&self, name: &str) -> Option<Symbol>;
}

/// A source over an in-memory vector (tests, intermediate results).
pub struct VecSource {
    name: String,
    rows: Vec<Record>,
    attrs: HashMap<String, Symbol>,
}

impl VecSource {
    /// Build from rows, resolving attribute names through `symbols`.
    pub fn new(name: impl Into<String>, rows: Vec<Record>, symbols: &SymbolTable) -> Self {
        let attrs = symbols
            .iter()
            .map(|(sym, n)| (n.to_string(), sym))
            .collect();
        VecSource {
            name: name.into(),
            rows,
            attrs,
        }
    }
}

impl RowSource for VecSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_> {
        Box::new(self.rows.iter())
    }
    fn attr(&self, name: &str) -> Option<Symbol> {
        self.attrs.get(name).copied()
    }
}

/// A source over a [`RowStore`] (the instance layer).
pub struct StoreSource<'a> {
    name: String,
    store: &'a RowStore,
    symbols: &'a SymbolTable,
}

impl<'a> StoreSource<'a> {
    /// Wrap a row store.
    pub fn new(name: impl Into<String>, store: &'a RowStore, symbols: &'a SymbolTable) -> Self {
        StoreSource {
            name: name.into(),
            store,
            symbols,
        }
    }
}

impl RowSource for StoreSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.store.len()
    }
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_> {
        Box::new(self.store.scan().map(|(_, r)| r))
    }
    fn attr(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name)
    }
}

/// Semantic knowledge for IS / HAS SOME atoms.
pub struct SemanticEnv<'a> {
    /// The ontology (concept/role name resolution).
    pub ontology: &'a Ontology,
    /// Saturated ABox.
    pub saturation: &'a Saturation,
    /// Mapping from *normalized* entity surface names (see
    /// [`scdb_er::normalize::normalize`]) to entity ids — produced by the
    /// curation pipeline. Lookups normalize attribute values the same
    /// way, so `Warfarin`, `warfarin`, and `Warfarin (brand)` all hit.
    pub entity_by_name: &'a HashMap<String, EntityId>,
}

impl SemanticEnv<'_> {
    /// Resolve an attribute value to the entity it names.
    fn entity_of(&self, surface: &str) -> Option<EntityId> {
        self.entity_by_name
            .get(&scdb_er::normalize::normalize(surface))
            .copied()
    }
}

/// Feature extractor for model atoms.
pub type FeatureFn<'a> = Box<dyn Fn(&Record) -> Vec<f64> + 'a>;

/// Everything the executor may need beyond the rows.
pub struct EvalEnv<'a> {
    /// Semantic knowledge (required by IS / HAS SOME atoms).
    pub semantic: Option<SemanticEnv<'a>>,
    /// Trained models with their feature extractors (required by model
    /// atoms).
    pub models: HashMap<String, (&'a TrainedModel, FeatureFn<'a>)>,
    /// Alpha cut for fuzzy atoms (default 0.5).
    pub alpha: f64,
}

impl Default for EvalEnv<'_> {
    fn default() -> Self {
        EvalEnv {
            semantic: None,
            models: HashMap::new(),
            alpha: 0.5,
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows pulled from the scan.
    pub rows_scanned: u64,
    /// Total atom evaluations (short-circuiting makes this the cost
    /// metric the optimizer improves).
    pub atom_evals: u64,
    /// Rows produced.
    pub rows_out: u64,
}

/// The executor.
#[derive(Debug, Default)]
pub struct Executor;

impl Executor {
    /// Run `plan` against `source` with environment `env`.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        source: &dyn RowSource,
        env: &EvalEnv<'_>,
    ) -> Result<(Vec<Record>, ExecStats), QueryError> {
        let mut stats = ExecStats::default();
        if plan.empty {
            return Ok((Vec::new(), stats));
        }
        match plan.source() {
            Some(s) if s == source.name() => {}
            Some(s) => return Err(QueryError::UnknownSource(s.to_string())),
            None => return Err(QueryError::UnknownSource("<missing scan>".into())),
        }
        let atoms = plan.filter_atoms();
        let project: Option<&[String]> = plan.nodes.iter().find_map(|n| match n {
            PlanNode::Project { attrs } => Some(attrs.as_slice()),
            _ => None,
        });
        let limit = plan.nodes.iter().find_map(|n| match n {
            PlanNode::Limit { n } => Some(*n),
            _ => None,
        });

        let mut out = Vec::new();
        for record in source.scan() {
            if let Some(l) = limit {
                if out.len() >= l {
                    break;
                }
            }
            stats.rows_scanned += 1;
            let mut pass = true;
            for atom in atoms {
                stats.atom_evals += 1;
                if !eval_atom(atom, record, source, env)? {
                    pass = false;
                    break;
                }
            }
            if !pass {
                continue;
            }
            let projected = match project {
                None => record.clone(),
                Some(attrs) => {
                    let mut r = Record::new();
                    for a in attrs {
                        if let Some(sym) = source.attr(a) {
                            if let Some(v) = record.get(sym) {
                                r.set(sym, v.clone());
                            }
                        }
                    }
                    r
                }
            };
            out.push(projected);
        }
        stats.rows_out = out.len() as u64;
        let m = scdb_obs::metrics();
        m.add("query.rows_scanned", stats.rows_scanned);
        m.add("query.atom_evals", stats.atom_evals);
        m.add("query.rows_out", stats.rows_out);
        Ok((out, stats))
    }

    /// Run `plan` while appending an operator-level breakdown to
    /// `profile`: an `execute` stage plus per-operator rows in/out
    /// (`scan` → `filter` → `project` → `limit`, as present in the
    /// plan). The single-pass loop doesn't time operators individually,
    /// so operator entries carry rows only (zero duration).
    pub fn execute_profiled(
        &self,
        plan: &LogicalPlan,
        source: &dyn RowSource,
        env: &EvalEnv<'_>,
        profile: &mut scdb_obs::ProfileBuilder,
    ) -> Result<(Vec<Record>, ExecStats), QueryError> {
        let start = std::time::Instant::now();
        let result = self.execute(plan, source, env);
        let elapsed = start.elapsed();
        if let Ok((_, stats)) = &result {
            {
                let s = profile.stage("execute", elapsed);
                s.rows_in = Some(source.len() as u64);
                s.rows_out = Some(stats.rows_out);
                if plan.empty {
                    s.notes.push("plan proven empty: scan skipped".into());
                }
            }
            {
                let s = profile.stage_at("scan", 1, std::time::Duration::ZERO);
                s.rows_out = Some(stats.rows_scanned);
                if let Some(name) = plan.source() {
                    s.notes.push(format!("source={name}"));
                }
            }
            let atoms = plan.filter_atoms();
            if !atoms.is_empty() {
                let s = profile.stage_at("filter", 1, std::time::Duration::ZERO);
                s.rows_in = Some(stats.rows_scanned);
                s.rows_out = Some(stats.rows_out);
                s.notes.push(format!(
                    "{} atom(s), {} eval(s)",
                    atoms.len(),
                    stats.atom_evals
                ));
            }
            for node in &plan.nodes {
                match node {
                    PlanNode::Project { attrs } => {
                        let s = profile.stage_at("project", 1, std::time::Duration::ZERO);
                        s.rows_in = Some(stats.rows_out);
                        s.rows_out = Some(stats.rows_out);
                        s.notes.push(attrs.join(", "));
                    }
                    PlanNode::Limit { n } => {
                        let s = profile.stage_at("limit", 1, std::time::Duration::ZERO);
                        s.rows_out = Some(stats.rows_out);
                        s.notes.push(format!("limit {n}"));
                    }
                    _ => {}
                }
            }
        }
        result
    }
}

fn compare(v: &Value, op: CompareOp, rhs: &Value) -> bool {
    if v.is_null() || rhs.is_null() {
        // Codd three-valued logic: unknown never passes a filter.
        return false;
    }
    let ord = v.cmp(rhs);
    match op {
        CompareOp::Eq => ord == std::cmp::Ordering::Equal,
        CompareOp::Ne => ord != std::cmp::Ordering::Equal,
        CompareOp::Lt => ord == std::cmp::Ordering::Less,
        CompareOp::Le => ord != std::cmp::Ordering::Greater,
        CompareOp::Gt => ord == std::cmp::Ordering::Greater,
        CompareOp::Ge => ord != std::cmp::Ordering::Less,
    }
}

fn eval_atom(
    atom: &Atom,
    record: &Record,
    source: &dyn RowSource,
    env: &EvalEnv<'_>,
) -> Result<bool, QueryError> {
    match atom {
        Atom::Compare { attr, op, value } => {
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(v) = record.get(sym) else {
                return Ok(false);
            };
            Ok(compare(v, *op, &value.to_value()))
        }
        Atom::CloseTo {
            attr,
            center,
            width,
        } => {
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(x) = record.get(sym).and_then(|v| v.as_float()) else {
                return Ok(false);
            };
            let pred = FuzzyPredicate::CloseTo {
                center: *center,
                width: *width,
            };
            Ok(pred.membership(x) >= env.alpha)
        }
        Atom::IsConcept { attr, concept } => {
            let Some(sem) = &env.semantic else {
                return Err(QueryError::UnknownConcept(concept.clone()));
            };
            let cid = sem
                .ontology
                .find_concept(concept)
                .map_err(|_| QueryError::UnknownConcept(concept.clone()))?;
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(name) = record.get(sym).map(|v| v.render().into_owned()) else {
                return Ok(false);
            };
            let Some(entity) = sem.entity_of(&name) else {
                return Ok(false);
            };
            Ok(sem.saturation.has_type(entity, cid))
        }
        Atom::HasSome { attr, role } => {
            let Some(sem) = &env.semantic else {
                return Err(QueryError::UnknownConcept(role.clone()));
            };
            let rid = sem
                .ontology
                .find_role(role)
                .map_err(|_| QueryError::UnknownConcept(role.clone()))?;
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(name) = record.get(sym).map(|v| v.render().into_owned()) else {
                return Ok(false);
            };
            let Some(entity) = sem.entity_of(&name) else {
                return Ok(false);
            };
            // A named filler or an inferred existential both satisfy ∃R.
            let named = !sem.saturation.fillers(rid, entity).is_empty();
            let inferred = sem
                .saturation
                .existentials()
                .iter()
                .any(|e| e.entity == entity && e.role == rid);
            Ok(named || inferred)
        }
        Atom::ModelAtom { model, threshold } => {
            let Some((trained, features)) = env.models.get(model) else {
                return Err(QueryError::UnknownModel(model.clone()));
            };
            let x = features(record);
            let p = trained
                .predict(&x)
                .map_err(|_| QueryError::UnknownModel(model.clone()))?;
            Ok(p >= *threshold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::LogicalPlan;
    use scdb_semantic::{ModelKind, ModelSpec};
    use scdb_types::Confidence;

    fn trials() -> (SymbolTable, VecSource) {
        let mut syms = SymbolTable::new();
        let drug = syms.intern("drug");
        let dose = syms.intern("effective_dose");
        let rows = vec![
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Float(5.1))]),
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Float(3.4))]),
            Record::from_pairs([(drug, Value::str("Ibuprofen")), (dose, Value::Float(5.05))]),
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Null)]),
        ];
        let src = VecSource::new("trials", rows, &syms);
        (syms, src)
    }

    fn run(sql: &str, src: &VecSource, env: &EvalEnv<'_>) -> (Vec<Record>, ExecStats) {
        let q = parse(sql).unwrap();
        let plan = LogicalPlan::from_query(&q);
        Executor.execute(&plan, src, env).unwrap()
    }

    #[test]
    fn compare_and_project() {
        let (syms, src) = trials();
        let (rows, stats) = run(
            "SELECT effective_dose FROM trials WHERE drug = 'Warfarin'",
            &src,
            &EvalEnv::default(),
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.rows_scanned, 4);
        let dose = syms.get("effective_dose").unwrap();
        let drug = syms.get("drug").unwrap();
        assert!(rows[0].get(dose).is_some());
        assert!(rows[0].get(drug).is_none(), "projected away");
    }

    #[test]
    fn fuzzy_close_to_alpha_cut() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose CLOSE TO 5.0 WITHIN 0.5",
            &src,
            &EvalEnv::default(),
        );
        // 5.1 (0.8) and 5.05 (0.9) pass at alpha 0.5; 3.4 and NULL fail.
        assert_eq!(rows.len(), 2);
        let strict = EvalEnv {
            alpha: 0.85,
            ..Default::default()
        };
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose CLOSE TO 5.0 WITHIN 0.5",
            &src,
            &strict,
        );
        assert_eq!(rows.len(), 1, "only 5.05 passes alpha 0.85");
    }

    #[test]
    fn null_never_passes() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose > 0",
            &src,
            &EvalEnv::default(),
        );
        assert_eq!(rows.len(), 3, "null dose row excluded");
    }

    #[test]
    fn limit_short_circuits_scan() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin' LIMIT 1").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let (rows, stats) = Executor.execute(&plan, &src, &EvalEnv::default()).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(stats.rows_scanned < 4, "scan stopped early");
    }

    #[test]
    fn short_circuit_saves_atom_evals() {
        let (_syms, src) = trials();
        // Selective atom first.
        let (_, cheap) = run(
            "SELECT * FROM trials WHERE drug = 'Ibuprofen' AND effective_dose > 0",
            &src,
            &EvalEnv::default(),
        );
        // Unselective atom first.
        let (_, costly) = run(
            "SELECT * FROM trials WHERE effective_dose > 0 AND drug = 'Ibuprofen'",
            &src,
            &EvalEnv::default(),
        );
        assert!(cheap.atom_evals < costly.atom_evals);
    }

    #[test]
    fn unknown_attr_filters_all() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE nonexistent = 1",
            &src,
            &EvalEnv::default(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn wrong_source_errors() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM other").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor.execute(&plan, &src, &EvalEnv::default()),
            Err(QueryError::UnknownSource(_))
        ));
    }

    #[test]
    fn empty_plan_scans_nothing() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin'").unwrap();
        let mut plan = LogicalPlan::from_query(&q);
        plan.empty = true;
        let (rows, stats) = Executor.execute(&plan, &src, &EvalEnv::default()).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.rows_scanned, 0, "the OS.3 unsat win");
    }

    #[test]
    fn semantic_atoms() {
        let (_syms, src) = trials();
        let mut ontology = Ontology::new();
        ontology.subclass("ApprovedDrug", "Drug");
        ontology.subclass_exists("Drug", "has_target", "Gene");
        let approved = ontology.find_concept("ApprovedDrug").unwrap();
        let warfarin = EntityId(1);
        ontology.assert_type(warfarin, approved, Confidence::CERTAIN);
        let sat = scdb_semantic::Reasoner::new().saturate(&ontology);
        let mut entity_by_name = HashMap::new();
        entity_by_name.insert("warfarin".to_string(), warfarin); // normalized key
        let env = EvalEnv {
            semantic: Some(SemanticEnv {
                ontology: &ontology,
                saturation: &sat,
                entity_by_name: &entity_by_name,
            }),
            ..Default::default()
        };
        let (rows, _) = run("SELECT * FROM trials WHERE drug IS 'Drug'", &src, &env);
        assert_eq!(rows.len(), 3, "Warfarin rows pass via ApprovedDrug ⊑ Drug");
        // Existential from the TBox: Drug ⊑ ∃has_target.Gene.
        let (rows, _) = run(
            "SELECT * FROM trials WHERE drug HAS SOME has_target",
            &src,
            &env,
        );
        assert_eq!(rows.len(), 3);
        // Ibuprofen is not registered as an entity ⇒ fails IS.
        let (rows, _) = run(
            "SELECT * FROM trials WHERE drug = 'Ibuprofen' AND drug IS 'Drug'",
            &src,
            &env,
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn semantic_atom_without_env_errors() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug IS 'Drug'").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor.execute(&plan, &src, &EvalEnv::default()),
            Err(QueryError::UnknownConcept(_))
        ));
    }

    #[test]
    fn model_atom() {
        let (syms, src) = trials();
        let spec = ModelSpec::new(
            "dose_ok",
            ModelKind::LogisticRegression,
            vec!["dose".into()],
            "dose acceptability",
        );
        let rows: Vec<(Vec<f64>, bool)> =
            (0..40).map(|i| (vec![i as f64 / 10.0], i >= 20)).collect();
        let trained = spec.train(&rows).unwrap();
        let dose = syms.get("effective_dose").unwrap();
        let mut env = EvalEnv::default();
        env.models.insert(
            "dose_ok".to_string(),
            (
                &trained,
                Box::new(move |r: &Record| {
                    vec![r.get(dose).and_then(|v| v.as_float()).unwrap_or(0.0)]
                }),
            ),
        );
        let (rows, _) = run(
            "SELECT * FROM trials WHERE LINKED BY dose_ok >= 0.5",
            &src,
            &env,
        );
        // Doses 5.1, 3.4, and 5.05 are above the learned boundary (~2.0);
        // the NULL dose maps to feature 0.0 and is rejected.
        assert_eq!(rows.len(), 3);
        // Unknown model errors.
        let q = parse("SELECT * FROM trials WHERE LINKED BY nope >= 0.5").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor.execute(&plan, &src, &env),
            Err(QueryError::UnknownModel(_))
        ));
    }
}
