//! The instrumented ScQL executor.
//!
//! Evaluation is deliberately simple — a scan with short-circuiting
//! conjunctive filters — because the experiments measure *relative* costs:
//! per-atom evaluation counts expose the optimizer's reordering and
//! pruning wins (E-T1-OS3) independent of machine noise. Fuzzy atoms
//! evaluate to membership degrees and pass at the `alpha` cut; semantic
//! atoms consult the saturated ABox; model atoms call a trained FS.4
//! model over caller-provided features.

use std::collections::HashMap;

use scdb_semantic::{Ontology, Saturation, TrainedModel};
use scdb_storage::index::{IndexPredicate, IndexSet};
use scdb_storage::RowStore;
use scdb_types::{EntityId, Record, RecordId, Symbol, SymbolTable, Value};
use scdb_uncertain::FuzzyPredicate;

use crate::ast::{Atom, CompareOp};
use crate::error::QueryError;
use crate::plan::{LogicalPlan, PlanNode};

/// A scannable source of records.
pub trait RowSource {
    /// Source name (matched against the plan's scan).
    fn name(&self) -> &str;
    /// Number of rows (for optimizer base cardinality).
    fn len(&self) -> usize;
    /// True when the source has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Scan all rows.
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_>;
    /// Scan the `chunk`-th of `of` contiguous, equal-width chunks — the
    /// unit of work one parallel-scan worker processes. Chunks partition
    /// the scan: concatenating chunks `0..of` in order yields exactly
    /// `scan()`. The default skips into the full scan; stores with
    /// cheaper positional access may override.
    fn scan_chunk(&self, chunk: usize, of: usize) -> Box<dyn Iterator<Item = &Record> + '_> {
        let (start, end) = chunk_bounds(self.len(), chunk, of);
        Box::new(self.scan().skip(start).take(end - start))
    }
    /// Resolve an attribute name to its symbol.
    fn attr(&self, name: &str) -> Option<Symbol>;
    /// Candidate rows for an indexed predicate on `attr`, in scan
    /// (arrival) order, when a usable secondary index exists. `None`
    /// means "no index" — the executor falls back to a full scan, so a
    /// plan carrying a stale [`PlanNode::IndexScan`] still answers
    /// correctly.
    fn index_candidates(&self, _attr: &str, _pred: &IndexPredicate) -> Option<Vec<&Record>> {
        None
    }
}

/// Half-open row range `[start, end)` of chunk `chunk` out of `of`.
fn chunk_bounds(len: usize, chunk: usize, of: usize) -> (usize, usize) {
    let of = of.max(1);
    let start = (chunk * len / of).min(len);
    let end = (((chunk + 1) * len) / of).min(len);
    (start, end.max(start))
}

/// A source over an in-memory vector (tests, intermediate results).
pub struct VecSource {
    name: String,
    rows: Vec<Record>,
    attrs: HashMap<String, Symbol>,
}

impl VecSource {
    /// Build from rows, resolving attribute names through `symbols`.
    pub fn new(name: impl Into<String>, rows: Vec<Record>, symbols: &SymbolTable) -> Self {
        let attrs = symbols
            .iter()
            .map(|(sym, n)| (n.to_string(), sym))
            .collect();
        VecSource {
            name: name.into(),
            rows,
            attrs,
        }
    }
}

impl RowSource for VecSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_> {
        Box::new(self.rows.iter())
    }
    fn attr(&self, name: &str) -> Option<Symbol> {
        self.attrs.get(name).copied()
    }
}

/// A source over a [`RowStore`] (the instance layer).
pub struct StoreSource<'a> {
    name: String,
    store: &'a RowStore,
    symbols: &'a SymbolTable,
    indexes: Option<&'a IndexSet>,
}

impl<'a> StoreSource<'a> {
    /// Wrap a row store.
    pub fn new(name: impl Into<String>, store: &'a RowStore, symbols: &'a SymbolTable) -> Self {
        StoreSource {
            name: name.into(),
            store,
            symbols,
            indexes: None,
        }
    }

    /// Wrap a row store together with its secondary indexes, enabling
    /// the [`PlanNode::IndexScan`] access path.
    pub fn with_indexes(
        name: impl Into<String>,
        store: &'a RowStore,
        symbols: &'a SymbolTable,
        indexes: &'a IndexSet,
    ) -> Self {
        StoreSource {
            name: name.into(),
            store,
            symbols,
            indexes: Some(indexes),
        }
    }
}

impl RowSource for StoreSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.store.len()
    }
    fn scan(&self) -> Box<dyn Iterator<Item = &Record> + '_> {
        Box::new(self.store.scan().map(|(_, r)| r))
    }
    fn attr(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name)
    }
    fn index_candidates(&self, attr: &str, pred: &IndexPredicate) -> Option<Vec<&Record>> {
        let offsets = self.indexes?.lookup(attr, pred)?;
        // Offsets are sorted ascending, i.e. arrival order — the same
        // order a full scan yields, so downstream limit/merge semantics
        // are unchanged. Tombstoned offsets (benign races) are skipped.
        Some(
            offsets
                .into_iter()
                .filter_map(|off| self.store.peek(RecordId::new(self.store.source(), off)))
                .collect(),
        )
    }
}

/// Semantic knowledge for IS / HAS SOME atoms.
pub struct SemanticEnv<'a> {
    /// The ontology (concept/role name resolution).
    pub ontology: &'a Ontology,
    /// Saturated ABox.
    pub saturation: &'a Saturation,
    /// Mapping from *normalized* entity surface names (see
    /// [`scdb_er::normalize::normalize`]) to entity ids — produced by the
    /// curation pipeline. Lookups normalize attribute values the same
    /// way, so `Warfarin`, `warfarin`, and `Warfarin (brand)` all hit.
    pub entity_by_name: &'a HashMap<String, EntityId>,
}

impl SemanticEnv<'_> {
    /// Resolve an attribute value to the entity it names.
    fn entity_of(&self, surface: &str) -> Option<EntityId> {
        self.entity_by_name
            .get(&scdb_er::normalize::normalize(surface))
            .copied()
    }
}

/// Feature extractor for model atoms. `Send + Sync` so model atoms can be
/// evaluated from parallel scan workers.
pub type FeatureFn<'a> = Box<dyn Fn(&Record) -> Vec<f64> + Send + Sync + 'a>;

/// Everything the executor may need beyond the rows.
pub struct EvalEnv<'a> {
    /// Semantic knowledge (required by IS / HAS SOME atoms).
    pub semantic: Option<SemanticEnv<'a>>,
    /// Trained models with their feature extractors (required by model
    /// atoms).
    pub models: HashMap<String, (&'a TrainedModel, FeatureFn<'a>)>,
    /// Alpha cut for fuzzy atoms (default 0.5).
    pub alpha: f64,
}

impl Default for EvalEnv<'_> {
    fn default() -> Self {
        EvalEnv {
            semantic: None,
            models: HashMap::new(),
            alpha: 0.5,
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows pulled from the scan.
    pub rows_scanned: u64,
    /// Total atom evaluations (short-circuiting makes this the cost
    /// metric the optimizer improves).
    pub atom_evals: u64,
    /// Rows produced.
    pub rows_out: u64,
}

/// What one scan worker did (parallel execution breakdown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerScan {
    /// Rows this worker pulled from its chunk.
    pub rows_scanned: u64,
    /// Atom evaluations this worker performed.
    pub atom_evals: u64,
    /// Rows this worker emitted (pre-merge, pre-limit-truncation).
    pub rows_out: u64,
    /// Wall time the worker spent in its chunk.
    pub duration: std::time::Duration,
}

/// How the scan stage was executed: one entry per worker. A sequential
/// run has exactly one entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanBreakdown {
    /// Per-worker counters in chunk order.
    pub per_worker: Vec<WorkerScan>,
    /// Name of the index used, when the scan went through the
    /// [`PlanNode::IndexScan`] access path.
    pub index: Option<String>,
}

impl ScanBreakdown {
    /// True when more than one worker participated.
    pub fn parallel(&self) -> bool {
        self.per_worker.len() > 1
    }
}

/// Default cap on scan workers — a *small* pool; scans are memory-bound
/// and oversubscribing cores past this buys nothing.
pub const MAX_DEFAULT_WORKERS: usize = 4;

/// Default minimum source rows before the scan fans out: below this the
/// thread-spawn cost exceeds the scan itself.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// The executor.
///
/// Scans fan out across `workers` std threads once the source holds at
/// least `parallel_threshold` rows: the row space is split into
/// contiguous chunks (see [`RowSource::scan_chunk`]), each worker
/// filters and projects its chunk independently, and partial results
/// merge back in chunk order — output ordering and [`ExecStats`] totals
/// are identical to a sequential run (modulo `LIMIT`, which each worker
/// applies locally before the merge truncates globally, so a parallel
/// limited scan may scan more rows than a sequential one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    /// Scan worker threads; 1 means always sequential.
    pub workers: usize,
    /// Minimum source rows before fanning out.
    pub parallel_threshold: usize,
}

impl Default for Executor {
    fn default() -> Self {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Executor {
            workers: avail.min(MAX_DEFAULT_WORKERS),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

impl Executor {
    /// An executor that never spawns scan workers.
    pub fn sequential() -> Self {
        Executor {
            workers: 1,
            parallel_threshold: usize::MAX,
        }
    }

    /// An executor with an explicit worker count (≥ 1) and the default
    /// fan-out threshold.
    pub fn with_workers(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Run `plan` against `source` with environment `env`.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        source: &(dyn RowSource + Sync),
        env: &EvalEnv<'_>,
    ) -> Result<(Vec<Record>, ExecStats), QueryError> {
        self.execute_inner(plan, source, env)
            .map(|(rows, stats, _)| (rows, stats))
    }

    fn execute_inner(
        &self,
        plan: &LogicalPlan,
        source: &(dyn RowSource + Sync),
        env: &EvalEnv<'_>,
    ) -> Result<(Vec<Record>, ExecStats, ScanBreakdown), QueryError> {
        if plan.empty {
            return Ok((Vec::new(), ExecStats::default(), ScanBreakdown::default()));
        }
        match plan.source() {
            Some(s) if s == source.name() => {}
            Some(s) => return Err(QueryError::UnknownSource(s.to_string())),
            None => return Err(QueryError::UnknownSource("<missing scan>".into())),
        }
        let atoms = plan.filter_atoms();
        let project: Option<&[String]> = plan.nodes.iter().find_map(|n| match n {
            PlanNode::Project { attrs } => Some(attrs.as_slice()),
            _ => None,
        });
        let limit = plan.nodes.iter().find_map(|n| match n {
            PlanNode::Limit { n } => Some(*n),
            _ => None,
        });

        // Index-scan access path: fetch candidates through the index,
        // then run the ordinary filter (all atoms re-checked) over just
        // those rows. Falls through to the scan path when the source has
        // no usable index (e.g. it was dropped after planning).
        if let Some((index_name, atom)) = plan.index_scan() {
            if let Some(pred) = index_predicate(atom) {
                let attr = match atom {
                    Atom::Compare { attr, .. } => attr.as_str(),
                    _ => unreachable!("index scans are driven by comparison atoms"),
                };
                if let Some(candidates) = source.index_candidates(attr, &pred) {
                    let t0 = std::time::Instant::now();
                    let n_candidates = candidates.len() as u64;
                    let (mut out, w) = scan_chunk_filtered(
                        Box::new(candidates.into_iter()),
                        atoms,
                        project,
                        limit,
                        source,
                        env,
                        t0,
                    )?;
                    if let Some(l) = limit {
                        out.truncate(l);
                    }
                    let stats = ExecStats {
                        rows_scanned: w.rows_scanned,
                        atom_evals: w.atom_evals,
                        rows_out: out.len() as u64,
                    };
                    let m = scdb_obs::metrics();
                    m.inc("query.index.scans");
                    m.add("query.index.candidates", n_candidates);
                    m.add("query.rows_scanned", stats.rows_scanned);
                    m.add("query.atom_evals", stats.atom_evals);
                    m.add("query.rows_out", stats.rows_out);
                    scdb_obs::event(
                        "query",
                        "index.scan",
                        &[
                            ("index", scdb_obs::FieldValue::Str(index_name.into())),
                            ("candidates", scdb_obs::FieldValue::U64(n_candidates)),
                            ("rows_out", scdb_obs::FieldValue::U64(stats.rows_out)),
                        ],
                    );
                    let breakdown = ScanBreakdown {
                        per_worker: vec![w],
                        index: Some(index_name.to_string()),
                    };
                    return Ok((out, stats, breakdown));
                }
                scdb_obs::metrics().inc("query.index.fallbacks");
            }
        }

        let workers = self
            .workers
            .min(source.len().div_ceil(self.parallel_threshold.max(1)))
            .max(1);
        let (mut out, mut stats, breakdown) = if workers > 1 {
            self.scan_parallel(workers, atoms, project, limit, source, env)?
        } else {
            let t0 = std::time::Instant::now();
            let (rows, w) =
                scan_chunk_filtered(source.scan(), atoms, project, limit, source, env, t0)?;
            let stats = ExecStats {
                rows_scanned: w.rows_scanned,
                atom_evals: w.atom_evals,
                rows_out: w.rows_out,
            };
            (
                rows,
                stats,
                ScanBreakdown {
                    per_worker: vec![w],
                    index: None,
                },
            )
        };
        if let Some(l) = limit {
            out.truncate(l);
        }
        stats.rows_out = out.len() as u64;
        let m = scdb_obs::metrics();
        m.add("query.rows_scanned", stats.rows_scanned);
        m.add("query.atom_evals", stats.atom_evals);
        m.add("query.rows_out", stats.rows_out);
        if breakdown.parallel() {
            m.inc("query.parallel_scans");
            scdb_obs::event(
                "query",
                "scan.parallel",
                &[
                    (
                        "workers",
                        scdb_obs::FieldValue::U64(breakdown.per_worker.len() as u64),
                    ),
                    (
                        "rows_scanned",
                        scdb_obs::FieldValue::U64(stats.rows_scanned),
                    ),
                    ("rows_out", scdb_obs::FieldValue::U64(stats.rows_out)),
                ],
            );
        }
        Ok((out, stats, breakdown))
    }

    /// Fan the scan out over `workers` std threads. Chunk 0 runs on the
    /// calling thread; results merge in chunk order, so row order matches
    /// the sequential scan. On error the lowest-chunk failure wins and is
    /// wrapped in [`QueryError::Worker`] to record which worker died.
    fn scan_parallel(
        &self,
        workers: usize,
        atoms: &[Atom],
        project: Option<&[String]>,
        limit: Option<usize>,
        source: &(dyn RowSource + Sync),
        env: &EvalEnv<'_>,
    ) -> Result<(Vec<Record>, ExecStats, ScanBreakdown), QueryError> {
        type ChunkResult = Result<(Vec<Record>, WorkerScan), QueryError>;
        let mut results: Vec<Option<ChunkResult>> = Vec::new();
        results.resize_with(workers, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            for chunk in 1..workers {
                handles.push(scope.spawn(move || {
                    let t0 = std::time::Instant::now();
                    scan_chunk_filtered(
                        source.scan_chunk(chunk, workers),
                        atoms,
                        project,
                        limit,
                        source,
                        env,
                        t0,
                    )
                }));
            }
            let t0 = std::time::Instant::now();
            results[0] = Some(scan_chunk_filtered(
                source.scan_chunk(0, workers),
                atoms,
                project,
                limit,
                source,
                env,
                t0,
            ));
            for (i, h) in handles.into_iter().enumerate() {
                // A worker that panicked (it should not: eval errors are
                // Results) surfaces as an executor-level worker error.
                results[i + 1] = Some(h.join().unwrap_or_else(|_| {
                    Err(QueryError::Worker {
                        worker: i + 1,
                        cause: Box::new(QueryError::UnknownSource("scan worker panicked".into())),
                    })
                }));
            }
        });
        let mut out = Vec::new();
        let mut stats = ExecStats::default();
        let mut breakdown = ScanBreakdown::default();
        for (i, slot) in results.into_iter().enumerate() {
            let (rows, w) = slot
                .expect("every chunk filled")
                .map_err(|e| e.for_worker(i))?;
            stats.rows_scanned += w.rows_scanned;
            stats.atom_evals += w.atom_evals;
            out.extend(rows);
            breakdown.per_worker.push(w);
        }
        stats.rows_out = out.len() as u64;
        Ok((out, stats, breakdown))
    }

    /// Run `plan` while appending an operator-level breakdown to
    /// `profile`: an `execute` stage plus per-operator rows in/out
    /// (`scan` → `filter` → `project` → `limit`, as present in the
    /// plan). The single-pass loop doesn't time operators individually,
    /// so operator entries carry rows only (zero duration) — except under
    /// a parallel scan, where each worker's chunk is individually timed
    /// and reported as a depth-2 `scan.w<i>` entry whose row counts sum
    /// to the depth-1 `scan` totals.
    pub fn execute_profiled(
        &self,
        plan: &LogicalPlan,
        source: &(dyn RowSource + Sync),
        env: &EvalEnv<'_>,
        profile: &mut scdb_obs::ProfileBuilder,
    ) -> Result<(Vec<Record>, ExecStats), QueryError> {
        let start = std::time::Instant::now();
        let result = self.execute_inner(plan, source, env);
        let elapsed = start.elapsed();
        if let Ok((_, stats, breakdown)) = &result {
            {
                let s = profile.stage("execute", elapsed);
                s.rows_in = Some(source.len() as u64);
                s.rows_out = Some(stats.rows_out);
                if plan.empty {
                    s.notes.push("plan proven empty: scan skipped".into());
                }
                if let Some(est) = plan.estimated_rows {
                    s.notes.push(format!(
                        "estimated {est:.1} rows, actual {}",
                        stats.rows_out
                    ));
                }
            }
            {
                let s = profile.stage_at("scan", 1, std::time::Duration::ZERO);
                s.rows_out = Some(stats.rows_scanned);
                if let Some(name) = plan.source() {
                    s.notes.push(format!("source={name}"));
                }
                match &breakdown.index {
                    Some(index) => s.notes.push(format!(
                        "access=index_scan via '{index}' ({} candidate row(s))",
                        stats.rows_scanned
                    )),
                    None if plan.index_scan().is_some() => s
                        .notes
                        .push("access=scan (index unavailable, fell back)".into()),
                    None => {}
                }
                if breakdown.parallel() {
                    s.notes
                        .push(format!("parallel workers={}", breakdown.per_worker.len()));
                }
            }
            if breakdown.parallel() {
                for (i, w) in breakdown.per_worker.iter().enumerate() {
                    let s = profile.stage_at(&format!("scan.w{i}"), 2, w.duration);
                    s.rows_in = Some(w.rows_scanned);
                    s.rows_out = Some(w.rows_out);
                    s.notes.push(format!("{} eval(s)", w.atom_evals));
                }
            }
            let atoms = plan.filter_atoms();
            if !atoms.is_empty() {
                let s = profile.stage_at("filter", 1, std::time::Duration::ZERO);
                s.rows_in = Some(stats.rows_scanned);
                s.rows_out = Some(stats.rows_out);
                s.notes.push(format!(
                    "{} atom(s), {} eval(s)",
                    atoms.len(),
                    stats.atom_evals
                ));
            }
            for node in &plan.nodes {
                match node {
                    PlanNode::Project { attrs } => {
                        let s = profile.stage_at("project", 1, std::time::Duration::ZERO);
                        s.rows_in = Some(stats.rows_out);
                        s.rows_out = Some(stats.rows_out);
                        s.notes.push(attrs.join(", "));
                    }
                    PlanNode::Limit { n } => {
                        let s = profile.stage_at("limit", 1, std::time::Duration::ZERO);
                        s.rows_out = Some(stats.rows_out);
                        s.notes.push(format!("limit {n}"));
                    }
                    _ => {}
                }
            }
        }
        result.map(|(rows, stats, _)| (rows, stats))
    }
}

/// Filter + project one chunk of rows. The shared inner loop of the
/// sequential and parallel paths — identical short-circuit and limit
/// semantics in both.
#[allow(clippy::too_many_arguments)]
fn scan_chunk_filtered<'r>(
    rows: Box<dyn Iterator<Item = &'r Record> + 'r>,
    atoms: &[Atom],
    project: Option<&[String]>,
    limit: Option<usize>,
    source: &dyn RowSource,
    env: &EvalEnv<'_>,
    started: std::time::Instant,
) -> Result<(Vec<Record>, WorkerScan), QueryError> {
    let mut w = WorkerScan {
        rows_scanned: 0,
        atom_evals: 0,
        rows_out: 0,
        duration: std::time::Duration::ZERO,
    };
    let mut out = Vec::new();
    for record in rows {
        if let Some(l) = limit {
            if out.len() >= l {
                break;
            }
        }
        w.rows_scanned += 1;
        let mut pass = true;
        for atom in atoms {
            w.atom_evals += 1;
            if !eval_atom(atom, record, source, env)? {
                pass = false;
                break;
            }
        }
        if !pass {
            continue;
        }
        let projected = match project {
            None => record.clone(),
            Some(attrs) => {
                let mut r = Record::new();
                for a in attrs {
                    if let Some(sym) = source.attr(a) {
                        if let Some(v) = record.get(sym) {
                            r.set(sym, v.clone());
                        }
                    }
                }
                r
            }
        };
        out.push(projected);
    }
    w.rows_out = out.len() as u64;
    w.duration = started.elapsed();
    Ok((out, w))
}

/// Translate an index-scan driving atom into an index predicate.
/// Returns `None` for atom shapes no index answers (`!=`).
fn index_predicate(atom: &Atom) -> Option<IndexPredicate> {
    let Atom::Compare { op, value, .. } = atom else {
        return None;
    };
    let v = value.to_value();
    match op {
        CompareOp::Eq => Some(IndexPredicate::Eq(v)),
        CompareOp::Ne => None,
        CompareOp::Lt => Some(IndexPredicate::Range {
            lo: None,
            hi: Some((v, false)),
        }),
        CompareOp::Le => Some(IndexPredicate::Range {
            lo: None,
            hi: Some((v, true)),
        }),
        CompareOp::Gt => Some(IndexPredicate::Range {
            lo: Some((v, false)),
            hi: None,
        }),
        CompareOp::Ge => Some(IndexPredicate::Range {
            lo: Some((v, true)),
            hi: None,
        }),
    }
}

fn compare(v: &Value, op: CompareOp, rhs: &Value) -> bool {
    if v.is_null() || rhs.is_null() {
        // Codd three-valued logic: unknown never passes a filter.
        return false;
    }
    let ord = v.cmp(rhs);
    match op {
        CompareOp::Eq => ord == std::cmp::Ordering::Equal,
        CompareOp::Ne => ord != std::cmp::Ordering::Equal,
        CompareOp::Lt => ord == std::cmp::Ordering::Less,
        CompareOp::Le => ord != std::cmp::Ordering::Greater,
        CompareOp::Gt => ord == std::cmp::Ordering::Greater,
        CompareOp::Ge => ord != std::cmp::Ordering::Less,
    }
}

fn eval_atom(
    atom: &Atom,
    record: &Record,
    source: &dyn RowSource,
    env: &EvalEnv<'_>,
) -> Result<bool, QueryError> {
    match atom {
        Atom::Compare { attr, op, value } => {
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(v) = record.get(sym) else {
                return Ok(false);
            };
            Ok(compare(v, *op, &value.to_value()))
        }
        Atom::CloseTo {
            attr,
            center,
            width,
        } => {
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(x) = record.get(sym).and_then(|v| v.as_float()) else {
                return Ok(false);
            };
            let pred = FuzzyPredicate::CloseTo {
                center: *center,
                width: *width,
            };
            Ok(pred.membership(x) >= env.alpha)
        }
        Atom::IsConcept { attr, concept } => {
            let Some(sem) = &env.semantic else {
                return Err(QueryError::UnknownConcept(concept.clone()));
            };
            let cid = sem
                .ontology
                .find_concept(concept)
                .map_err(|_| QueryError::UnknownConcept(concept.clone()))?;
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(name) = record.get(sym).map(|v| v.render().into_owned()) else {
                return Ok(false);
            };
            let Some(entity) = sem.entity_of(&name) else {
                return Ok(false);
            };
            Ok(sem.saturation.has_type(entity, cid))
        }
        Atom::HasSome { attr, role } => {
            let Some(sem) = &env.semantic else {
                return Err(QueryError::UnknownConcept(role.clone()));
            };
            let rid = sem
                .ontology
                .find_role(role)
                .map_err(|_| QueryError::UnknownConcept(role.clone()))?;
            let Some(sym) = source.attr(attr) else {
                return Ok(false);
            };
            let Some(name) = record.get(sym).map(|v| v.render().into_owned()) else {
                return Ok(false);
            };
            let Some(entity) = sem.entity_of(&name) else {
                return Ok(false);
            };
            // A named filler or an inferred existential both satisfy ∃R.
            let named = !sem.saturation.fillers(rid, entity).is_empty();
            let inferred = sem
                .saturation
                .existentials()
                .iter()
                .any(|e| e.entity == entity && e.role == rid);
            Ok(named || inferred)
        }
        Atom::ModelAtom { model, threshold } => {
            let Some((trained, features)) = env.models.get(model) else {
                return Err(QueryError::UnknownModel(model.clone()));
            };
            let x = features(record);
            let p = trained
                .predict(&x)
                .map_err(|_| QueryError::UnknownModel(model.clone()))?;
            Ok(p >= *threshold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::LogicalPlan;
    use scdb_semantic::{ModelKind, ModelSpec};
    use scdb_types::Confidence;

    fn trials() -> (SymbolTable, VecSource) {
        let mut syms = SymbolTable::new();
        let drug = syms.intern("drug");
        let dose = syms.intern("effective_dose");
        let rows = vec![
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Float(5.1))]),
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Float(3.4))]),
            Record::from_pairs([(drug, Value::str("Ibuprofen")), (dose, Value::Float(5.05))]),
            Record::from_pairs([(drug, Value::str("Warfarin")), (dose, Value::Null)]),
        ];
        let src = VecSource::new("trials", rows, &syms);
        (syms, src)
    }

    fn run(sql: &str, src: &VecSource, env: &EvalEnv<'_>) -> (Vec<Record>, ExecStats) {
        let q = parse(sql).unwrap();
        let plan = LogicalPlan::from_query(&q);
        Executor::sequential().execute(&plan, src, env).unwrap()
    }

    #[test]
    fn compare_and_project() {
        let (syms, src) = trials();
        let (rows, stats) = run(
            "SELECT effective_dose FROM trials WHERE drug = 'Warfarin'",
            &src,
            &EvalEnv::default(),
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.rows_scanned, 4);
        let dose = syms.get("effective_dose").unwrap();
        let drug = syms.get("drug").unwrap();
        assert!(rows[0].get(dose).is_some());
        assert!(rows[0].get(drug).is_none(), "projected away");
    }

    #[test]
    fn fuzzy_close_to_alpha_cut() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose CLOSE TO 5.0 WITHIN 0.5",
            &src,
            &EvalEnv::default(),
        );
        // 5.1 (0.8) and 5.05 (0.9) pass at alpha 0.5; 3.4 and NULL fail.
        assert_eq!(rows.len(), 2);
        let strict = EvalEnv {
            alpha: 0.85,
            ..Default::default()
        };
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose CLOSE TO 5.0 WITHIN 0.5",
            &src,
            &strict,
        );
        assert_eq!(rows.len(), 1, "only 5.05 passes alpha 0.85");
    }

    #[test]
    fn null_never_passes() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE effective_dose > 0",
            &src,
            &EvalEnv::default(),
        );
        assert_eq!(rows.len(), 3, "null dose row excluded");
    }

    #[test]
    fn limit_short_circuits_scan() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin' LIMIT 1").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let (rows, stats) = Executor::sequential()
            .execute(&plan, &src, &EvalEnv::default())
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(stats.rows_scanned < 4, "scan stopped early");
    }

    #[test]
    fn short_circuit_saves_atom_evals() {
        let (_syms, src) = trials();
        // Selective atom first.
        let (_, cheap) = run(
            "SELECT * FROM trials WHERE drug = 'Ibuprofen' AND effective_dose > 0",
            &src,
            &EvalEnv::default(),
        );
        // Unselective atom first.
        let (_, costly) = run(
            "SELECT * FROM trials WHERE effective_dose > 0 AND drug = 'Ibuprofen'",
            &src,
            &EvalEnv::default(),
        );
        assert!(cheap.atom_evals < costly.atom_evals);
    }

    #[test]
    fn unknown_attr_filters_all() {
        let (_syms, src) = trials();
        let (rows, _) = run(
            "SELECT * FROM trials WHERE nonexistent = 1",
            &src,
            &EvalEnv::default(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn wrong_source_errors() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM other").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor::sequential().execute(&plan, &src, &EvalEnv::default()),
            Err(QueryError::UnknownSource(_))
        ));
    }

    #[test]
    fn empty_plan_scans_nothing() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin'").unwrap();
        let mut plan = LogicalPlan::from_query(&q);
        plan.empty = true;
        let (rows, stats) = Executor::sequential()
            .execute(&plan, &src, &EvalEnv::default())
            .unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.rows_scanned, 0, "the OS.3 unsat win");
    }

    #[test]
    fn semantic_atoms() {
        let (_syms, src) = trials();
        let mut ontology = Ontology::new();
        ontology.subclass("ApprovedDrug", "Drug");
        ontology.subclass_exists("Drug", "has_target", "Gene");
        let approved = ontology.find_concept("ApprovedDrug").unwrap();
        let warfarin = EntityId(1);
        ontology.assert_type(warfarin, approved, Confidence::CERTAIN);
        let sat = scdb_semantic::Reasoner::new().saturate(&ontology);
        let mut entity_by_name = HashMap::new();
        entity_by_name.insert("warfarin".to_string(), warfarin); // normalized key
        let env = EvalEnv {
            semantic: Some(SemanticEnv {
                ontology: &ontology,
                saturation: &sat,
                entity_by_name: &entity_by_name,
            }),
            ..Default::default()
        };
        let (rows, _) = run("SELECT * FROM trials WHERE drug IS 'Drug'", &src, &env);
        assert_eq!(rows.len(), 3, "Warfarin rows pass via ApprovedDrug ⊑ Drug");
        // Existential from the TBox: Drug ⊑ ∃has_target.Gene.
        let (rows, _) = run(
            "SELECT * FROM trials WHERE drug HAS SOME has_target",
            &src,
            &env,
        );
        assert_eq!(rows.len(), 3);
        // Ibuprofen is not registered as an entity ⇒ fails IS.
        let (rows, _) = run(
            "SELECT * FROM trials WHERE drug = 'Ibuprofen' AND drug IS 'Drug'",
            &src,
            &env,
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn semantic_atom_without_env_errors() {
        let (_syms, src) = trials();
        let q = parse("SELECT * FROM trials WHERE drug IS 'Drug'").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor::sequential().execute(&plan, &src, &EvalEnv::default()),
            Err(QueryError::UnknownConcept(_))
        ));
    }

    #[test]
    fn model_atom() {
        let (syms, src) = trials();
        let spec = ModelSpec::new(
            "dose_ok",
            ModelKind::LogisticRegression,
            vec!["dose".into()],
            "dose acceptability",
        );
        let rows: Vec<(Vec<f64>, bool)> =
            (0..40).map(|i| (vec![i as f64 / 10.0], i >= 20)).collect();
        let trained = spec.train(&rows).unwrap();
        let dose = syms.get("effective_dose").unwrap();
        let mut env = EvalEnv::default();
        env.models.insert(
            "dose_ok".to_string(),
            (
                &trained,
                Box::new(move |r: &Record| {
                    vec![r.get(dose).and_then(|v| v.as_float()).unwrap_or(0.0)]
                }),
            ),
        );
        let (rows, _) = run(
            "SELECT * FROM trials WHERE LINKED BY dose_ok >= 0.5",
            &src,
            &env,
        );
        // Doses 5.1, 3.4, and 5.05 are above the learned boundary (~2.0);
        // the NULL dose maps to feature 0.0 and is rejected.
        assert_eq!(rows.len(), 3);
        // Unknown model errors.
        let q = parse("SELECT * FROM trials WHERE LINKED BY nope >= 0.5").unwrap();
        let plan = LogicalPlan::from_query(&q);
        assert!(matches!(
            Executor::sequential().execute(&plan, &src, &env),
            Err(QueryError::UnknownModel(_))
        ));
    }

    fn wide_trials(n: usize) -> (SymbolTable, VecSource) {
        let mut syms = SymbolTable::new();
        let drug = syms.intern("drug");
        let dose = syms.intern("effective_dose");
        let rows = (0..n)
            .map(|i| {
                Record::from_pairs([
                    (
                        drug,
                        Value::str(if i % 3 == 0 { "Warfarin" } else { "Other" }),
                    ),
                    (dose, Value::Float(i as f64 / 10.0)),
                ])
            })
            .collect();
        let src = VecSource::new("trials", rows, &syms);
        (syms, src)
    }

    #[test]
    fn chunk_bounds_partition_the_row_space() {
        for len in [0usize, 1, 7, 100, 101] {
            for of in [1usize, 2, 4, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for chunk in 0..of {
                    let (start, end) = chunk_bounds(len, chunk, of);
                    assert_eq!(start, prev_end, "chunks contiguous");
                    assert!(end >= start);
                    covered += end - start;
                    prev_end = end;
                }
                assert_eq!(covered, len, "chunks cover every row exactly once");
            }
        }
        // Degenerate `of = 0` is treated as 1.
        assert_eq!(chunk_bounds(5, 0, 0), (0, 5));
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let (_syms, src) = wide_trials(97);
        let sql = "SELECT effective_dose FROM trials WHERE drug = 'Warfarin'";
        let q = parse(sql).unwrap();
        let plan = LogicalPlan::from_query(&q);
        let (seq_rows, seq_stats) = Executor::sequential()
            .execute(&plan, &src, &EvalEnv::default())
            .unwrap();
        let par = Executor {
            workers: 4,
            parallel_threshold: 1,
        };
        let (par_rows, par_stats) = par.execute(&plan, &src, &EvalEnv::default()).unwrap();
        assert_eq!(par_rows, seq_rows, "row order preserved across chunks");
        assert_eq!(par_stats.rows_scanned, seq_stats.rows_scanned);
        assert_eq!(par_stats.atom_evals, seq_stats.atom_evals);
        assert_eq!(par_stats.rows_out, seq_stats.rows_out);
    }

    #[test]
    fn parallel_limit_truncates_at_merge() {
        let (_syms, src) = wide_trials(60);
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin' LIMIT 5").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let par = Executor {
            workers: 4,
            parallel_threshold: 1,
        };
        let (rows, stats) = par.execute(&plan, &src, &EvalEnv::default()).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(stats.rows_out, 5);
        // Prefix semantics: the merged limit keeps the first 5 matches in
        // row order, same as a sequential scan.
        let (seq_rows, _) = Executor::sequential()
            .execute(&plan, &src, &EvalEnv::default())
            .unwrap();
        assert_eq!(rows, seq_rows);
    }

    #[test]
    fn parallel_profile_reports_per_worker_truth() {
        let (_syms, src) = wide_trials(80);
        let q = parse("SELECT * FROM trials WHERE drug = 'Warfarin'").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let par = Executor {
            workers: 4,
            parallel_threshold: 1,
        };
        let mut builder = scdb_obs::ProfileBuilder::new();
        let (_, stats) = par
            .execute_profiled(&plan, &src, &EvalEnv::default(), &mut builder)
            .unwrap();
        let profile = builder.finish();
        let scan = profile
            .stages
            .iter()
            .find(|s| s.name == "scan")
            .expect("scan stage present");
        assert!(
            scan.notes.iter().any(|n| n == "parallel workers=4"),
            "scan stage records the fan-out: {:?}",
            scan.notes
        );
        let workers: Vec<_> = profile
            .stages
            .iter()
            .filter(|s| s.name.starts_with("scan.w"))
            .collect();
        assert_eq!(workers.len(), 4);
        let scanned: u64 = workers.iter().map(|s| s.rows_in.unwrap()).sum();
        let emitted: u64 = workers.iter().map(|s| s.rows_out.unwrap()).sum();
        assert_eq!(scanned, stats.rows_scanned, "worker rows sum to the total");
        assert_eq!(emitted, stats.rows_out);
        assert!(workers.iter().all(|s| s.depth == 2));
    }

    #[test]
    fn parallel_worker_error_names_the_chunk() {
        use std::error::Error as _;
        let (_syms, src) = wide_trials(40);
        // A model atom with no registered model fails in every worker; the
        // merge must surface the lowest chunk's failure, worker-tagged.
        let q = parse("SELECT * FROM trials WHERE LINKED BY nope >= 0.5").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let par = Executor {
            workers: 4,
            parallel_threshold: 1,
        };
        let err = par
            .execute(&plan, &src, &EvalEnv::default())
            .expect_err("unknown model must fail");
        match &err {
            QueryError::Worker { worker, cause } => {
                assert_eq!(*worker, 0, "lowest chunk wins deterministically");
                assert!(matches!(**cause, QueryError::UnknownModel(_)));
            }
            other => panic!("expected worker-tagged error, got {other:?}"),
        }
        assert!(err.source().is_some(), "source chain intact");
    }

    fn indexed_store(
        n: i64,
    ) -> (
        SymbolTable,
        scdb_storage::RowStore,
        scdb_storage::index::IndexSet,
    ) {
        use scdb_storage::index::{IndexDef, IndexKind};
        let mut syms = SymbolTable::new();
        let name = syms.intern("name");
        let score = syms.intern("score");
        let mut store = scdb_storage::RowStore::new(scdb_types::SourceId(0));
        for i in 0..n {
            store.append(Record::from_pairs([
                (name, Value::str(format!("r{i}"))),
                (score, Value::Int(i)),
            ]));
        }
        let mut set = scdb_storage::index::IndexSet::new();
        set.create(
            IndexDef {
                name: "ix_name".into(),
                source: "trials".into(),
                attr: "name".into(),
                kind: IndexKind::Hash,
            },
            &syms,
            &store,
        );
        set.create(
            IndexDef {
                name: "ix_score".into(),
                source: "trials".into(),
                attr: "score".into(),
                kind: IndexKind::Ordered,
            },
            &syms,
            &store,
        );
        (syms, store, set)
    }

    fn index_plan(sql: &str, index: &str) -> LogicalPlan {
        let q = parse(sql).unwrap();
        let mut plan = LogicalPlan::from_query(&q);
        let atom = plan.filter_atoms()[0].clone();
        plan.nodes[0] = PlanNode::IndexScan {
            source: q.from.clone(),
            index: index.into(),
            atom,
        };
        plan
    }

    #[test]
    fn index_scan_matches_full_scan() {
        let (syms, store, set) = indexed_store(100);
        let src = StoreSource::with_indexes("trials", &store, &syms, &set);
        for (sql, index) in [
            ("SELECT * FROM trials WHERE name = 'r42'", "ix_name"),
            ("SELECT * FROM trials WHERE score >= 90", "ix_score"),
            (
                "SELECT name FROM trials WHERE score < 5 LIMIT 3",
                "ix_score",
            ),
        ] {
            let q = parse(sql).unwrap();
            let full = LogicalPlan::from_query(&q);
            let (want, want_stats) = Executor::sequential()
                .execute(&full, &src, &EvalEnv::default())
                .unwrap();
            let (got, got_stats) = Executor::sequential()
                .execute(&index_plan(sql, index), &src, &EvalEnv::default())
                .unwrap();
            assert_eq!(got, want, "rows and order identical: {sql}");
            assert!(
                got_stats.rows_scanned <= want_stats.rows_scanned,
                "index never scans more than the full scan for {sql}: {} vs {}",
                got_stats.rows_scanned,
                want_stats.rows_scanned
            );
        }
        // The selective point lookup touches exactly its one candidate
        // where the full scan walks all 100 rows.
        let (_, stats) = Executor::sequential()
            .execute(
                &index_plan("SELECT * FROM trials WHERE name = 'r42'", "ix_name"),
                &src,
                &EvalEnv::default(),
            )
            .unwrap();
        assert_eq!(stats.rows_scanned, 1);
    }

    #[test]
    fn index_scan_rechecks_residual_atoms() {
        let (syms, store, set) = indexed_store(100);
        let src = StoreSource::with_indexes("trials", &store, &syms, &set);
        // Index narrows to score >= 90, residual name filter re-checks.
        let sql = "SELECT * FROM trials WHERE score >= 90 AND name = 'r95'";
        let q = parse(sql).unwrap();
        let mut plan = LogicalPlan::from_query(&q);
        let atom = plan.filter_atoms()[0].clone();
        plan.nodes[0] = PlanNode::IndexScan {
            source: "trials".into(),
            index: "ix_score".into(),
            atom,
        };
        let (rows, stats) = Executor::sequential()
            .execute(&plan, &src, &EvalEnv::default())
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.rows_scanned, 10, "only the candidate rows visited");
    }

    #[test]
    fn index_scan_without_index_falls_back_to_scan() {
        let (syms, store, _set) = indexed_store(50);
        // Source wrapped WITHOUT indexes: the plan's IndexScan degrades
        // to a full scan with identical results.
        let src = StoreSource::new("trials", &store, &syms);
        let sql = "SELECT * FROM trials WHERE name = 'r7'";
        let (rows, stats) = Executor::sequential()
            .execute(&index_plan(sql, "ix_name"), &src, &EvalEnv::default())
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.rows_scanned, 50, "full scan fallback");
    }

    #[test]
    fn index_scan_profile_names_the_access_path() {
        let (syms, store, set) = indexed_store(100);
        let src = StoreSource::with_indexes("trials", &store, &syms, &set);
        let mut builder = scdb_obs::ProfileBuilder::new();
        let plan = index_plan("SELECT * FROM trials WHERE name = 'r42'", "ix_name");
        Executor::sequential()
            .execute_profiled(&plan, &src, &EvalEnv::default(), &mut builder)
            .unwrap();
        let profile = builder.finish();
        let scan = profile
            .stages
            .iter()
            .find(|s| s.name == "scan")
            .expect("scan stage present");
        assert!(
            scan.notes
                .iter()
                .any(|n| n.contains("access=index_scan via 'ix_name'")),
            "scan stage names the index: {:?}",
            scan.notes
        );
    }

    #[test]
    fn threshold_keeps_small_scans_sequential() {
        let (_syms, src) = wide_trials(10);
        let q = parse("SELECT * FROM trials").unwrap();
        let plan = LogicalPlan::from_query(&q);
        let ex = Executor {
            workers: 8,
            parallel_threshold: 1024,
        };
        let mut builder = scdb_obs::ProfileBuilder::new();
        ex.execute_profiled(&plan, &src, &EvalEnv::default(), &mut builder)
            .unwrap();
        let profile = builder.finish();
        assert!(
            !profile.stages.iter().any(|s| s.name.starts_with("scan.w")),
            "below the threshold the scan stays on one thread"
        );
    }
}
