//! OS.3 — rule- and cost-based optimization with semantic rewrites.
//!
//! "How [can we] extend the predominant rule- and cost-based query
//! optimization to leverage the explicit semantics within our data model,
//! so the optimizers are no longer limited to only statistics on data …?
//! Is it possible to exploit the available semantics (e.g., exploiting
//! class and subclass relationships) by inferring the selectivity and
//! rewriting the query to a more efficient query (e.g., by inferring that
//! certain predicates can be collapsed together semantically or can be
//! dropped because they are redundant or unsatisfiable)?"
//!
//! Rewrites (each toggleable for the E-T1-OS3 ablation):
//!
//! 1. **duplicate drop** — identical atoms collapse;
//! 2. **range merge** — `a > 3 AND a > 5` → `a > 5`; contradictions
//!    (`a = 1 AND a = 2`, `a > 5 AND a < 3`) prove the plan empty;
//! 3. **subsumption collapse** — `x IS Neoplasms AND x IS Disease` keeps
//!    only `Neoplasms` when the taxonomy knows `Neoplasms ⊑ Disease`;
//! 4. **disjointness unsat** — `x IS AsianPopulation AND x IS
//!    WhitePopulation` is unsatisfiable when the classes are disjoint;
//! 5. **selectivity reorder** — atoms ordered most-selective-first using
//!    instance statistics *and* semantic selectivity (concept member
//!    counts from the saturation — statistics the raw data cannot give,
//!    "often missing or unavailable for external sources").

use std::collections::HashMap;

use scdb_semantic::{Ontology, Saturation, Taxonomy};
use scdb_storage::index::{IndexDef, IndexKind};
use scdb_storage::stats::AttrStatistics;

use crate::ast::{Atom, CompareOp, Literal};
use crate::plan::{LogicalPlan, PlanNode};

/// Semantic knowledge available to the optimizer.
pub struct SemanticContext<'a> {
    /// The ontology (for concept name resolution).
    pub ontology: &'a Ontology,
    /// Precomputed subsumption/disjointness closure.
    pub taxonomy: &'a Taxonomy,
    /// Saturated ABox for instance counts (semantic selectivity); optional.
    pub saturation: Option<&'a Saturation>,
}

/// Which rewrites are enabled.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Drop duplicate atoms.
    pub drop_duplicates: bool,
    /// Merge/contradict comparison ranges.
    pub merge_ranges: bool,
    /// Collapse subsumed concept atoms.
    pub collapse_subsumed: bool,
    /// Prove unsat via disjointness.
    pub detect_unsat: bool,
    /// Reorder atoms by estimated selectivity.
    pub reorder_by_selectivity: bool,
    /// Consider secondary-index access paths (when index metadata is
    /// supplied) instead of always scanning.
    pub use_index_scan: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            drop_duplicates: true,
            merge_ranges: true,
            collapse_subsumed: true,
            detect_unsat: true,
            reorder_by_selectivity: true,
            use_index_scan: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the naive baseline.
    pub fn disabled() -> Self {
        OptimizerConfig {
            drop_duplicates: false,
            merge_ranges: false,
            collapse_subsumed: false,
            detect_unsat: false,
            reorder_by_selectivity: false,
            use_index_scan: false,
        }
    }
}

/// An index-scan only pays off when the predicate keeps at most this
/// fraction of the source: above it, fetching scattered candidates and
/// re-checking them costs more than the (parallel) sequential scan.
pub const INDEX_SELECTIVITY_THRESHOLD: f64 = 0.25;

/// The optimizer.
#[derive(Debug, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Optimizer with `config`.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    /// Optimize `plan` using optional semantic knowledge and per-attribute
    /// statistics. `base_rows` is the scanned source's cardinality.
    pub fn optimize(
        &self,
        plan: LogicalPlan,
        semantic: Option<&SemanticContext<'_>>,
        stats: Option<&HashMap<String, AttrStatistics>>,
        base_rows: u64,
    ) -> LogicalPlan {
        self.optimize_with_indexes(plan, semantic, stats, base_rows, &[])
    }

    /// [`Optimizer::optimize`] plus access-path selection: when the
    /// scanned source has secondary indexes (`indexes`), the most
    /// selective indexable comparison atom may replace the full scan
    /// with a [`PlanNode::IndexScan`]. The decision (either way) lands
    /// in the rewrite log for EXPLAIN ANALYZE.
    pub fn optimize_with_indexes(
        &self,
        plan: LogicalPlan,
        semantic: Option<&SemanticContext<'_>>,
        stats: Option<&HashMap<String, AttrStatistics>>,
        base_rows: u64,
        indexes: &[IndexDef],
    ) -> LogicalPlan {
        let rewrites_before = plan.rewrites.len();
        let plan = self.optimize_inner(plan, semantic, stats, base_rows, indexes);
        scdb_obs::metrics().add(
            "query.rewrites",
            (plan.rewrites.len() - rewrites_before) as u64,
        );
        plan
    }

    fn optimize_inner(
        &self,
        mut plan: LogicalPlan,
        semantic: Option<&SemanticContext<'_>>,
        stats: Option<&HashMap<String, AttrStatistics>>,
        base_rows: u64,
        indexes: &[IndexDef],
    ) -> LogicalPlan {
        let mut atoms: Vec<Atom> = plan.filter_atoms().to_vec();

        if self.config.drop_duplicates {
            let before = atoms.len();
            let mut seen = Vec::new();
            atoms.retain(|a| {
                if seen.contains(a) {
                    false
                } else {
                    seen.push(a.clone());
                    true
                }
            });
            if atoms.len() < before {
                plan.rewrites.push(format!(
                    "dropped {} duplicate atom(s)",
                    before - atoms.len()
                ));
            }
        }

        if self.config.merge_ranges {
            match merge_ranges(&mut atoms) {
                RangeOutcome::Unsat(reason) => {
                    plan.rewrites.push(format!("unsatisfiable: {reason}"));
                    plan.empty = true;
                    plan.set_filter_atoms(atoms);
                    plan.estimated_rows = Some(0.0);
                    return plan;
                }
                RangeOutcome::Merged(n) if n > 0 => {
                    plan.rewrites.push(format!("merged {n} range atom(s)"));
                }
                _ => {}
            }
        }

        if let Some(ctx) = semantic {
            if self.config.collapse_subsumed {
                let dropped = collapse_subsumed(&mut atoms, ctx);
                if dropped > 0 {
                    plan.rewrites
                        .push(format!("collapsed {dropped} subsumed concept atom(s)"));
                }
            }
            if self.config.detect_unsat {
                if let Some((a, b)) = find_disjoint_pair(&atoms, ctx) {
                    plan.rewrites.push(format!(
                        "unsatisfiable: '{a}' and '{b}' are disjoint classes"
                    ));
                    plan.empty = true;
                    plan.set_filter_atoms(atoms);
                    plan.estimated_rows = Some(0.0);
                    return plan;
                }
            }
        }

        // Selectivity estimation (always computed for the cardinality
        // estimate; ordering applied only when enabled).
        let sels: Vec<f64> = atoms
            .iter()
            .map(|a| estimate_selectivity(a, semantic, stats))
            .collect();
        let combined: f64 = sels.iter().product();
        plan.estimated_rows = Some(combined * base_rows as f64);

        if self.config.use_index_scan && !indexes.is_empty() {
            self.choose_access_path(&mut plan, &atoms, &sels, base_rows, indexes);
        }

        if self.config.reorder_by_selectivity && atoms.len() > 1 {
            let mut order: Vec<usize> = (0..atoms.len()).collect();
            order.sort_by(|&i, &j| sels[i].total_cmp(&sels[j]));
            if order.windows(2).any(|w| w[0] > w[1]) {
                plan.rewrites
                    .push("reordered atoms by estimated selectivity".into());
            }
            atoms = order.into_iter().map(|i| atoms[i].clone()).collect();
        }

        plan.set_filter_atoms(atoms);
        plan
    }

    /// Pick index-scan vs full scan from the statistics: the most
    /// selective comparison atom whose attribute has a usable index
    /// (equality on any kind, ranges on ordered only) becomes an
    /// [`PlanNode::IndexScan`] when its estimated selectivity clears
    /// [`INDEX_SELECTIVITY_THRESHOLD`]; otherwise the scan stays and the
    /// rejection is logged.
    fn choose_access_path(
        &self,
        plan: &mut LogicalPlan,
        atoms: &[Atom],
        sels: &[f64],
        base_rows: u64,
        indexes: &[IndexDef],
    ) {
        let Some(source) = plan.source().map(str::to_string) else {
            return;
        };
        let mut best: Option<(usize, &IndexDef, f64)> = None;
        for (i, atom) in atoms.iter().enumerate() {
            let Atom::Compare { attr, op, .. } = atom else {
                continue;
            };
            for def in indexes {
                if def.source != source || def.attr != *attr {
                    continue;
                }
                let usable = match op {
                    CompareOp::Eq => true,
                    CompareOp::Ne => false,
                    CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                        def.kind == IndexKind::Ordered
                    }
                };
                if !usable {
                    continue;
                }
                if best.is_none_or(|(_, _, s)| sels[i] < s) {
                    best = Some((i, def, sels[i]));
                }
            }
        }
        let Some((i, def, sel)) = best else {
            return;
        };
        let est = sel * base_rows as f64;
        if sel <= INDEX_SELECTIVITY_THRESHOLD {
            let Some(pos) = plan
                .nodes
                .iter()
                .position(|n| matches!(n, PlanNode::Scan { .. }))
            else {
                return;
            };
            plan.nodes[pos] = PlanNode::IndexScan {
                source,
                index: def.name.clone(),
                atom: atoms[i].clone(),
            };
            plan.rewrites.push(format!(
                "access path: index_scan via '{}' on {} \
                 (estimated {est:.1} of {base_rows} rows, selectivity {sel:.4})",
                def.name, def.attr
            ));
        } else {
            plan.rewrites.push(format!(
                "access path: scan (best index '{}' selectivity {sel:.2} \
                 above threshold {INDEX_SELECTIVITY_THRESHOLD})",
                def.name
            ));
        }
    }
}

enum RangeOutcome {
    Merged(usize),
    Unsat(String),
    Nothing,
}

fn literal_num(l: &Literal) -> Option<f64> {
    match l {
        Literal::Int(i) => Some(*i as f64),
        Literal::Float(f) => Some(*f),
        _ => None,
    }
}

/// Merge numeric comparison atoms per attribute; detect contradictions.
fn merge_ranges(atoms: &mut Vec<Atom>) -> RangeOutcome {
    #[derive(Default, Clone)]
    struct Range {
        lo: Option<(f64, bool)>, // (bound, inclusive)
        hi: Option<(f64, bool)>,
        eq: Option<f64>,
    }
    let mut ranges: HashMap<String, Range> = HashMap::new();
    let mut numeric_compare_count: HashMap<String, usize> = HashMap::new();

    for atom in atoms.iter() {
        if let Atom::Compare { attr, op, value } = atom {
            let Some(v) = literal_num(value) else {
                continue;
            };
            *numeric_compare_count.entry(attr.clone()).or_insert(0) += 1;
            let r = ranges.entry(attr.clone()).or_default();
            match op {
                CompareOp::Eq => {
                    if let Some(prev) = r.eq {
                        if prev != v {
                            return RangeOutcome::Unsat(format!(
                                "{attr} = {prev} contradicts {attr} = {v}"
                            ));
                        }
                    }
                    r.eq = Some(v);
                }
                CompareOp::Gt | CompareOp::Ge => {
                    let inclusive = *op == CompareOp::Ge;
                    let tighter = match r.lo {
                        Some((b, _)) => v > b,
                        None => true,
                    };
                    if tighter {
                        r.lo = Some((v, inclusive));
                    }
                }
                CompareOp::Lt | CompareOp::Le => {
                    let inclusive = *op == CompareOp::Le;
                    let tighter = match r.hi {
                        Some((b, _)) => v < b,
                        None => true,
                    };
                    if tighter {
                        r.hi = Some((v, inclusive));
                    }
                }
                CompareOp::Ne => {}
            }
        }
    }

    // Contradiction checks.
    for (attr, r) in &ranges {
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (r.lo, r.hi) {
            if lo > hi || (lo == hi && !(lo_inc && hi_inc)) {
                return RangeOutcome::Unsat(format!("{attr} range [{lo}, {hi}] is empty"));
            }
        }
        if let Some(eq) = r.eq {
            if let Some((lo, inc)) = r.lo {
                if eq < lo || (eq == lo && !inc) {
                    return RangeOutcome::Unsat(format!("{attr} = {eq} below lower bound {lo}"));
                }
            }
            if let Some((hi, inc)) = r.hi {
                if eq > hi || (eq == hi && !inc) {
                    return RangeOutcome::Unsat(format!("{attr} = {eq} above upper bound {hi}"));
                }
            }
        }
    }

    // Rebuild: keep only the tightest atoms for attrs with multiple
    // numeric comparisons.
    let multi: Vec<&String> = numeric_compare_count
        .iter()
        .filter(|(_, c)| **c > 1)
        .map(|(a, _)| a)
        .collect();
    if multi.is_empty() {
        return RangeOutcome::Nothing;
    }
    let before = atoms.len();
    let mut rebuilt: Vec<Atom> = Vec::with_capacity(atoms.len());
    let mut emitted: HashMap<String, bool> = HashMap::new();
    for atom in atoms.iter() {
        match atom {
            Atom::Compare { attr, op, value }
                if literal_num(value).is_some()
                    && multi.contains(&attr)
                    && !matches!(op, CompareOp::Ne) =>
            {
                if emitted.insert(attr.clone(), true).is_none() {
                    let r = &ranges[attr];
                    if let Some(eq) = r.eq {
                        rebuilt.push(Atom::Compare {
                            attr: attr.clone(),
                            op: CompareOp::Eq,
                            value: Literal::Float(eq),
                        });
                    } else {
                        if let Some((lo, inc)) = r.lo {
                            rebuilt.push(Atom::Compare {
                                attr: attr.clone(),
                                op: if inc { CompareOp::Ge } else { CompareOp::Gt },
                                value: Literal::Float(lo),
                            });
                        }
                        if let Some((hi, inc)) = r.hi {
                            rebuilt.push(Atom::Compare {
                                attr: attr.clone(),
                                op: if inc { CompareOp::Le } else { CompareOp::Lt },
                                value: Literal::Float(hi),
                            });
                        }
                    }
                }
            }
            other => rebuilt.push(other.clone()),
        }
    }
    let merged = before.saturating_sub(rebuilt.len());
    *atoms = rebuilt;
    if merged > 0 {
        RangeOutcome::Merged(merged)
    } else {
        RangeOutcome::Nothing
    }
}

/// Drop concept atoms implied by a more specific one on the same attr.
fn collapse_subsumed(atoms: &mut Vec<Atom>, ctx: &SemanticContext<'_>) -> usize {
    let concepts: Vec<(usize, String, String)> = atoms
        .iter()
        .enumerate()
        .filter_map(|(i, a)| match a {
            Atom::IsConcept { attr, concept } => Some((i, attr.clone(), concept.clone())),
            _ => None,
        })
        .collect();
    let mut drop = Vec::new();
    for (i, attr_i, c_i) in &concepts {
        for (j, attr_j, c_j) in &concepts {
            if i == j || attr_i != attr_j || drop.contains(i) || drop.contains(j) {
                continue;
            }
            let (Ok(ci), Ok(cj)) = (
                ctx.ontology.find_concept(c_i),
                ctx.ontology.find_concept(c_j),
            ) else {
                continue;
            };
            // c_i ⊑ c_j and distinct ⇒ the broader c_j is redundant.
            if ci != cj && ctx.taxonomy.subsumes(cj, ci) {
                drop.push(*j);
            }
        }
    }
    drop.sort_unstable();
    drop.dedup();
    for &idx in drop.iter().rev() {
        atoms.remove(idx);
    }
    drop.len()
}

/// Find a pair of disjoint concept atoms on the same attribute.
fn find_disjoint_pair(atoms: &[Atom], ctx: &SemanticContext<'_>) -> Option<(String, String)> {
    let concepts: Vec<(&String, &String)> = atoms
        .iter()
        .filter_map(|a| match a {
            Atom::IsConcept { attr, concept } => Some((attr, concept)),
            _ => None,
        })
        .collect();
    for (i, (attr_i, c_i)) in concepts.iter().enumerate() {
        for (attr_j, c_j) in &concepts[i + 1..] {
            if attr_i != attr_j {
                continue;
            }
            let (Ok(ci), Ok(cj)) = (
                ctx.ontology.find_concept(c_i),
                ctx.ontology.find_concept(c_j),
            ) else {
                continue;
            };
            if ctx.taxonomy.are_disjoint(ci, cj) {
                return Some((c_i.to_string(), c_j.to_string()));
            }
        }
    }
    None
}

/// Estimate an atom's selectivity in `[0, 1]`.
pub fn estimate_selectivity(
    atom: &Atom,
    semantic: Option<&SemanticContext<'_>>,
    stats: Option<&HashMap<String, AttrStatistics>>,
) -> f64 {
    match atom {
        Atom::Compare { attr, op, value } => {
            let s = stats.and_then(|m| m.get(attr));
            match (op, s) {
                (CompareOp::Eq, Some(s)) => s.selectivity_eq(&value.to_value()).clamp(0.0, 1.0),
                (CompareOp::Ne, Some(s)) => {
                    (1.0 - s.selectivity_eq(&value.to_value())).clamp(0.0, 1.0)
                }
                (CompareOp::Lt | CompareOp::Le, Some(s)) => {
                    match (&s.histogram, literal_num(value)) {
                        (Some(h), Some(v)) => h.selectivity_le(v),
                        _ => 0.33,
                    }
                }
                (CompareOp::Gt | CompareOp::Ge, Some(s)) => {
                    match (&s.histogram, literal_num(value)) {
                        (Some(h), Some(v)) => (1.0 - h.selectivity_le(v)).max(0.0),
                        _ => 0.33,
                    }
                }
                (CompareOp::Eq, None) => 0.1,
                (CompareOp::Ne, None) => 0.9,
                _ => 0.33,
            }
        }
        Atom::CloseTo {
            attr,
            center,
            width,
        } => {
            // Treat as the range [center−width, center+width].
            let s = stats.and_then(|m| m.get(attr));
            match s.and_then(|s| s.histogram.as_ref()) {
                Some(h) => h.selectivity_range(center - width, center + width),
                None => 0.2,
            }
        }
        Atom::IsConcept { concept, .. } => {
            // Semantic selectivity: members(C) / members(⊤). This is the
            // OS.3 trick — statistics derived from the TBox+ABox, not the
            // column data.
            match semantic {
                Some(ctx) => match (ctx.saturation, ctx.ontology.find_concept(concept)) {
                    (Some(sat), Ok(c)) => {
                        let members = sat.members_of(c).len() as f64;
                        let total = (0..ctx.taxonomy.concept_count())
                            .map(|i| sat.members_of(scdb_types::ConceptId(i as u32)).len())
                            .max()
                            .unwrap_or(0)
                            .max(1) as f64;
                        (members / total).clamp(0.001, 1.0)
                    }
                    _ => 0.25,
                },
                None => 0.25,
            }
        }
        Atom::HasSome { .. } => 0.5,
        Atom::ModelAtom { threshold, .. } => (1.0 - threshold).clamp(0.05, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::LogicalPlan;
    use scdb_types::{Confidence, EntityId};

    fn semantic_fixture() -> (Ontology, Taxonomy, Saturation) {
        let mut o = Ontology::new();
        o.subclass("Neoplasms", "Disease");
        o.subclass("Osteosarcoma", "Neoplasms");
        o.subclass("JointDisease", "Disease");
        o.disjoint("Neoplasms", "JointDisease");
        let osteo = o.find_concept("Osteosarcoma").unwrap();
        let disease = o.find_concept("Disease").unwrap();
        o.assert_type(EntityId(0), osteo, Confidence::CERTAIN);
        for i in 1..10 {
            o.assert_type(EntityId(i), disease, Confidence::CERTAIN);
        }
        let sat = scdb_semantic::Reasoner::new().saturate(&o);
        let tax = Taxonomy::build(&o);
        (o, tax, sat)
    }

    fn optimize(sql: &str, cfg: OptimizerConfig) -> LogicalPlan {
        let (o, tax, sat) = semantic_fixture();
        let ctx = SemanticContext {
            ontology: &o,
            taxonomy: &tax,
            saturation: Some(&sat),
        };
        let q = parse(sql).unwrap();
        let plan = LogicalPlan::from_query(&q);
        Optimizer::new(cfg).optimize(plan, Some(&ctx), None, 1000)
    }

    #[test]
    fn duplicates_dropped() {
        let p = optimize(
            "SELECT * FROM t WHERE a = 1 AND a = 1",
            OptimizerConfig::default(),
        );
        assert_eq!(p.filter_atoms().len(), 1);
        assert!(p.rewrites.iter().any(|r| r.contains("duplicate")));
    }

    #[test]
    fn ranges_merged() {
        let p = optimize(
            "SELECT * FROM t WHERE a > 3 AND a > 5 AND a < 100",
            OptimizerConfig::default(),
        );
        // a > 5 AND a < 100 remain.
        assert_eq!(p.filter_atoms().len(), 2);
        assert!(!p.empty);
        assert!(p.rewrites.iter().any(|r| r.contains("merged")));
    }

    #[test]
    fn contradictory_equalities_unsat() {
        let p = optimize(
            "SELECT * FROM t WHERE a = 1 AND a = 2",
            OptimizerConfig::default(),
        );
        assert!(p.empty);
        assert_eq!(p.estimated_rows, Some(0.0));
    }

    #[test]
    fn empty_range_unsat() {
        let p = optimize(
            "SELECT * FROM t WHERE a > 5 AND a < 3",
            OptimizerConfig::default(),
        );
        assert!(p.empty);
        let p = optimize(
            "SELECT * FROM t WHERE a >= 5 AND a < 5",
            OptimizerConfig::default(),
        );
        assert!(p.empty);
        // Touching inclusive bounds are satisfiable.
        let p = optimize(
            "SELECT * FROM t WHERE a >= 5 AND a <= 5",
            OptimizerConfig::default(),
        );
        assert!(!p.empty);
    }

    #[test]
    fn eq_outside_range_unsat() {
        let p = optimize(
            "SELECT * FROM t WHERE a = 10 AND a < 5",
            OptimizerConfig::default(),
        );
        assert!(p.empty);
    }

    #[test]
    fn subsumption_collapse() {
        let p = optimize(
            "SELECT * FROM t WHERE x IS 'Osteosarcoma' AND x IS 'Disease'",
            OptimizerConfig::default(),
        );
        let atoms = p.filter_atoms();
        assert_eq!(atoms.len(), 1, "broader Disease atom dropped: {atoms:?}");
        assert!(matches!(
            &atoms[0],
            Atom::IsConcept { concept, .. } if concept == "Osteosarcoma"
        ));
    }

    #[test]
    fn disjointness_unsat() {
        let p = optimize(
            "SELECT * FROM t WHERE x IS 'Neoplasms' AND x IS 'JointDisease'",
            OptimizerConfig::default(),
        );
        assert!(p.empty);
        assert!(p.rewrites.iter().any(|r| r.contains("disjoint")));
    }

    #[test]
    fn disjointness_on_different_attrs_is_fine() {
        let p = optimize(
            "SELECT * FROM t WHERE x IS 'Neoplasms' AND y IS 'JointDisease'",
            OptimizerConfig::default(),
        );
        assert!(!p.empty);
    }

    #[test]
    fn disabled_config_does_nothing() {
        let p = optimize(
            "SELECT * FROM t WHERE a = 1 AND a = 2 AND x IS 'Neoplasms' AND x IS 'JointDisease'",
            OptimizerConfig::disabled(),
        );
        assert!(!p.empty);
        assert_eq!(p.filter_atoms().len(), 4);
        assert!(p.rewrites.is_empty());
    }

    #[test]
    fn semantic_selectivity_orders_specific_concept_first() {
        let p = optimize(
            "SELECT * FROM t WHERE x IS 'Disease' AND x IS 'Osteosarcoma' AND y HAS SOME r",
            OptimizerConfig {
                collapse_subsumed: false, // keep both to observe ordering
                ..OptimizerConfig::default()
            },
        );
        let atoms = p.filter_atoms();
        assert!(
            matches!(
                &atoms[0],
                Atom::IsConcept { concept, .. } if concept == "Osteosarcoma"
            ),
            "most selective first: {atoms:?}"
        );
    }

    #[test]
    fn cardinality_estimate_scales_with_base() {
        let p = optimize("SELECT * FROM t WHERE a = 1", OptimizerConfig::default());
        let rows = p.estimated_rows.unwrap();
        assert!(rows > 0.0 && rows < 1000.0);
    }

    fn index_fixture() -> (HashMap<String, AttrStatistics>, Vec<IndexDef>) {
        let mut stats = HashMap::new();
        // `name`: 1000 distinct values — equality is highly selective.
        let mut name = AttrStatistics::new(16, 4096);
        for i in 0..1000 {
            name.observe(&scdb_types::Value::str(format!("r{i}")));
        }
        stats.insert("name".to_string(), name);
        // `category`: one value covers 60% of rows.
        let mut cat = AttrStatistics::new(16, 4096);
        for i in 0..1000 {
            cat.observe(&scdb_types::Value::str(if i % 5 < 3 {
                "hot"
            } else {
                "cold"
            }));
        }
        stats.insert("category".to_string(), cat);
        // `score`: uniform numeric 0..1000. The incremental histogram
        // seeds its range from the first value, so give it the settled
        // full-range histogram an ANALYZE pass would produce.
        let mut score = AttrStatistics::new(16, 4096);
        for i in 0..1000 {
            score.observe(&scdb_types::Value::Float(i as f64));
        }
        score.histogram =
            scdb_storage::stats::Histogram::from_values((0..1000).map(|i| i as f64), 32);
        stats.insert("score".to_string(), score);
        let indexes = vec![
            IndexDef {
                name: "ix_name".into(),
                source: "t".into(),
                attr: "name".into(),
                kind: IndexKind::Hash,
            },
            IndexDef {
                name: "ix_cat".into(),
                source: "t".into(),
                attr: "category".into(),
                kind: IndexKind::Hash,
            },
            IndexDef {
                name: "ix_score".into(),
                source: "t".into(),
                attr: "score".into(),
                kind: IndexKind::Ordered,
            },
        ];
        (stats, indexes)
    }

    fn optimize_indexed(sql: &str, cfg: OptimizerConfig) -> LogicalPlan {
        let (stats, indexes) = index_fixture();
        let q = parse(sql).unwrap();
        let plan = LogicalPlan::from_query(&q);
        Optimizer::new(cfg).optimize_with_indexes(plan, None, Some(&stats), 1000, &indexes)
    }

    #[test]
    fn selective_equality_chooses_index_scan() {
        let p = optimize_indexed(
            "SELECT * FROM t WHERE name = 'r42'",
            OptimizerConfig::default(),
        );
        assert!(
            matches!(&p.nodes[0], PlanNode::IndexScan { index, .. } if index == "ix_name"),
            "expected index scan: {p}"
        );
        assert!(p.rewrites.iter().any(|r| r.contains("index_scan")));
        // The driving atom stays in the filter (residual re-check).
        assert_eq!(p.filter_atoms().len(), 1);
    }

    #[test]
    fn non_selective_equality_keeps_scan() {
        let p = optimize_indexed(
            "SELECT * FROM t WHERE category = 'hot'",
            OptimizerConfig::default(),
        );
        assert!(
            matches!(&p.nodes[0], PlanNode::Scan { .. }),
            "60% selectivity must not use the index: {p}"
        );
        assert!(
            p.rewrites.iter().any(|r| r.contains("access path: scan")),
            "rejection surfaced in EXPLAIN: {:?}",
            p.rewrites
        );
    }

    #[test]
    fn range_uses_ordered_index_only() {
        let p = optimize_indexed(
            "SELECT * FROM t WHERE score < 100.0",
            OptimizerConfig::default(),
        );
        assert!(
            matches!(&p.nodes[0], PlanNode::IndexScan { index, .. } if index == "ix_score"),
            "selective range rides the ordered index: {p}"
        );
        // A range over the hash-indexed attr cannot use it: no access-path
        // candidate at all, so no decision line either.
        let p = optimize_indexed(
            "SELECT * FROM t WHERE name > 'r5'",
            OptimizerConfig::default(),
        );
        assert!(matches!(&p.nodes[0], PlanNode::Scan { .. }));
        assert!(!p.rewrites.iter().any(|r| r.contains("access path")));
    }

    #[test]
    fn most_selective_indexable_atom_wins() {
        let p = optimize_indexed(
            "SELECT * FROM t WHERE category = 'hot' AND name = 'r42'",
            OptimizerConfig::default(),
        );
        assert!(
            matches!(&p.nodes[0], PlanNode::IndexScan { index, .. } if index == "ix_name"),
            "name (1/1000) beats category (0.6): {p}"
        );
    }

    #[test]
    fn index_scan_disabled_by_config_and_empty_metadata() {
        let p = optimize_indexed(
            "SELECT * FROM t WHERE name = 'r42'",
            OptimizerConfig {
                use_index_scan: false,
                ..OptimizerConfig::default()
            },
        );
        assert!(matches!(&p.nodes[0], PlanNode::Scan { .. }));
        // No index metadata: plain optimize() never switches access path.
        let (stats, _) = index_fixture();
        let q = parse("SELECT * FROM t WHERE name = 'r42'").unwrap();
        let p = Optimizer::new(OptimizerConfig::default()).optimize(
            LogicalPlan::from_query(&q),
            None,
            Some(&stats),
            1000,
        );
        assert!(matches!(&p.nodes[0], PlanNode::Scan { .. }));
    }

    #[test]
    fn foreign_source_indexes_ignored() {
        let (stats, mut indexes) = index_fixture();
        for d in &mut indexes {
            d.source = "other".into();
        }
        let q = parse("SELECT * FROM t WHERE name = 'r42'").unwrap();
        let p = Optimizer::new(OptimizerConfig::default()).optimize_with_indexes(
            LogicalPlan::from_query(&q),
            None,
            Some(&stats),
            1000,
            &indexes,
        );
        assert!(matches!(&p.nodes[0], PlanNode::Scan { .. }));
    }
}
