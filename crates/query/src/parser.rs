//! Recursive-descent parser for ScQL.
//!
//! ```text
//! query  := SELECT cols FROM ident [WHERE atom (AND atom)*] [LIMIT n]
//! cols   := '*' | ident (',' ident)*
//! atom   := ident op literal
//!         | ident CLOSE TO number [WITHIN number]
//!         | ident IS (string | ident)
//!         | ident HAS SOME ident
//!         | LINKED BY ident (>= | >) number
//! ```

use crate::ast::{Atom, CompareOp, Literal, Query};
use crate::error::QueryError;
use crate::lexer::{lex, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, expected: &str) -> QueryError {
        let t = self.peek();
        QueryError::Parse {
            at: t.at,
            expected: expected.to_string(),
            found: t.kind.describe(),
        }
    }

    /// Consume an identifier matching `kw` case-insensitively.
    fn keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.advance();
                Ok(())
            }
            _ => Err(self.error(kw)),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            _ => Err(self.error("identifier")),
        }
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        match self.peek().kind {
            TokenKind::Number(n) => {
                self.advance();
                Ok(n)
            }
            _ => Err(self.error("number")),
        }
    }

    fn literal(&mut self) -> Result<Literal, QueryError> {
        let t = self.peek().kind.clone();
        match t {
            TokenKind::Number(n) => {
                self.advance();
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Literal::Int(n as i64))
                } else {
                    Ok(Literal::Float(n))
                }
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Literal::Str(s))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("true") => {
                self.advance();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("false") => {
                self.advance();
                Ok(Literal::Bool(false))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("null") => {
                self.advance();
                Ok(Literal::Null)
            }
            _ => Err(self.error("literal")),
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp, QueryError> {
        let op = match self.peek().kind {
            TokenKind::Eq => CompareOp::Eq,
            TokenKind::Ne => CompareOp::Ne,
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Le => CompareOp::Le,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Ge => CompareOp::Ge,
            _ => return Err(self.error("comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    fn atom(&mut self) -> Result<Atom, QueryError> {
        if self.is_keyword("LINKED") {
            self.advance();
            self.keyword("BY")?;
            let model = self.ident()?;
            let op = self.compare_op()?;
            if !matches!(op, CompareOp::Ge | CompareOp::Gt) {
                return Err(self.error(">= or > after model name"));
            }
            let threshold = self.number()?;
            return Ok(Atom::ModelAtom { model, threshold });
        }
        let attr = self.ident()?;
        if self.is_keyword("CLOSE") {
            self.advance();
            self.keyword("TO")?;
            let center = self.number()?;
            let width = if self.is_keyword("WITHIN") {
                self.advance();
                self.number()?
            } else {
                // Default width: 10% of |center| (narrow-range default).
                center.abs() * 0.1
            };
            return Ok(Atom::CloseTo {
                attr,
                center,
                width,
            });
        }
        if self.is_keyword("IS") {
            self.advance();
            let concept = match self.peek().kind.clone() {
                TokenKind::Str(s) => {
                    self.advance();
                    s
                }
                TokenKind::Ident(s) => {
                    self.advance();
                    s
                }
                _ => return Err(self.error("concept name")),
            };
            return Ok(Atom::IsConcept { attr, concept });
        }
        if self.is_keyword("HAS") {
            self.advance();
            self.keyword("SOME")?;
            let role = self.ident()?;
            return Ok(Atom::HasSome { attr, role });
        }
        let op = self.compare_op()?;
        let value = self.literal()?;
        Ok(Atom::Compare { attr, op, value })
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.keyword("SELECT")?;
        let mut select = Vec::new();
        if matches!(self.peek().kind, TokenKind::Star) {
            self.advance();
        } else {
            select.push(self.ident()?);
            while matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
                select.push(self.ident()?);
            }
        }
        self.keyword("FROM")?;
        let from = self.ident()?;
        let mut atoms = Vec::new();
        if self.is_keyword("WHERE") {
            self.advance();
            atoms.push(self.atom()?);
            while self.is_keyword("AND") {
                self.advance();
                atoms.push(self.atom()?);
            }
        }
        let mut limit = None;
        if self.is_keyword("LIMIT") {
            self.advance();
            let n = self.number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(self.error("non-negative integer limit"));
            }
            limit = Some(n as usize);
        }
        if !matches!(self.peek().kind, TokenKind::Eof) {
            return Err(self.error("end of query"));
        }
        Ok(Query {
            select,
            from,
            atoms,
            limit,
        })
    }
}

/// Parse an ScQL query string.
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("SELECT * FROM trials").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.from, "trials");
        assert!(q.atoms.is_empty());
        assert_eq!(q.limit, None);
    }

    #[test]
    fn full_warfarin_query() {
        let q = parse(
            "SELECT drug, effective_dose FROM trials \
             WHERE drug = 'Warfarin' \
               AND effective_dose CLOSE TO 5.0 WITHIN 0.5 \
               AND drug IS 'Drug' \
               AND drug HAS SOME has_target \
               AND LINKED BY link_model >= 0.7 \
             LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.select, vec!["drug", "effective_dose"]);
        assert_eq!(q.atoms.len(), 5);
        assert_eq!(
            q.atoms[1],
            Atom::CloseTo {
                attr: "effective_dose".into(),
                center: 5.0,
                width: 0.5
            }
        );
        assert_eq!(
            q.atoms[3],
            Atom::HasSome {
                attr: "drug".into(),
                role: "has_target".into()
            }
        );
        assert_eq!(
            q.atoms[4],
            Atom::ModelAtom {
                model: "link_model".into(),
                threshold: 0.7
            }
        );
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn close_to_default_width() {
        let q = parse("SELECT * FROM t WHERE dose CLOSE TO 5.0").unwrap();
        assert_eq!(
            q.atoms[0],
            Atom::CloseTo {
                attr: "dose".into(),
                center: 5.0,
                width: 0.5
            }
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse("select a from t where a >= 3 and b is Drug limit 1").unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.limit, Some(1));
    }

    #[test]
    fn literals() {
        let q =
            parse("SELECT * FROM t WHERE a = 'x' AND b = 2.5 AND c = true AND d != NULL").unwrap();
        assert_eq!(q.atoms.len(), 4);
        assert!(matches!(
            &q.atoms[0],
            Atom::Compare { value: Literal::Str(s), .. } if s == "x"
        ));
        assert!(matches!(
            q.atoms[1],
            Atom::Compare {
                value: Literal::Float(f),
                ..
            } if f == 2.5
        ));
        assert!(matches!(
            q.atoms[2],
            Atom::Compare {
                value: Literal::Bool(true),
                ..
            }
        ));
        assert!(matches!(
            q.atoms[3],
            Atom::Compare {
                value: Literal::Null,
                ..
            }
        ));
    }

    #[test]
    fn errors_carry_position_and_expectation() {
        // `FROM` is lexed as an identifier, so it is consumed as the
        // column list and the parser then misses the FROM keyword.
        let err = parse("SELECT FROM t").unwrap_err();
        match err {
            QueryError::Parse { expected, .. } => assert_eq!(expected, "FROM"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
        assert!(parse("SELECT * FROM t garbage").is_err());
        assert!(parse("SELECT * FROM t WHERE LINKED BY m = 0.5").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t LIMIT 1 LIMIT 2").is_err());
    }

    #[test]
    fn display_reparses() {
        let q = parse(
            "SELECT a FROM t WHERE a CLOSE TO 5.0 WITHIN 0.5 AND b IS 'Drug' AND c >= 3 LIMIT 2",
        )
        .unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
