//! The ScQL abstract syntax tree.

use std::fmt;

use scdb_types::Value;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// NULL.
    Null,
}

impl Literal {
    /// Convert to an instance-layer value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Str(s) => Value::str(s),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Null => Value::Null,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One conjunct of the WHERE clause — the unified-language atoms (FS.5).
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `attr op literal` — the relational core (subset of SQL/FOL).
    Compare {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CompareOp,
        /// Constant.
        value: Literal,
    },
    /// `attr CLOSE TO center WITHIN width` — the fuzzy closeness atom
    /// (§4.2: "the notion of closeness can … be formulated based on fuzzy
    /// logic").
    CloseTo {
        /// Attribute name.
        attr: String,
        /// Triangle center.
        center: f64,
        /// Triangle half-width.
        width: f64,
    },
    /// `attr IS 'Concept'` — OWL-style membership (the semantic half of
    /// FS.5).
    IsConcept {
        /// Attribute holding the entity reference (or the entity name
        /// attribute).
        attr: String,
        /// Concept name.
        concept: String,
    },
    /// `attr HAS SOME role` — existential restriction over the relation
    /// layer (§3.3's "Acetaminophen has a target").
    HasSome {
        /// Attribute holding the entity reference.
        attr: String,
        /// Role name.
        role: String,
    },
    /// `LINKED BY model >= threshold` — the statistical-model atom (FS.4
    /// into FS.5).
    ModelAtom {
        /// Model name.
        model: String,
        /// Acceptance threshold on the predicted probability.
        threshold: f64,
    },
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Compare { attr, op, value } => write!(f, "{attr} {op} {value}"),
            Atom::CloseTo {
                attr,
                center,
                width,
            } => write!(f, "{attr} CLOSE TO {center} WITHIN {width}"),
            Atom::IsConcept { attr, concept } => write!(f, "{attr} IS '{concept}'"),
            Atom::HasSome { attr, role } => write!(f, "{attr} HAS SOME {role}"),
            Atom::ModelAtom { model, threshold } => {
                write!(f, "LINKED BY {model} >= {threshold}")
            }
        }
    }
}

/// A parsed ScQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected attributes; empty means `*`.
    pub select: Vec<String>,
    /// Source name.
    pub from: String,
    /// Conjunctive predicates.
    pub atoms: Vec<Atom>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.select.is_empty() {
            write!(f, "*")?;
        } else {
            write!(f, "{}", self.select.join(", "))?;
        }
        write!(f, " FROM {}", self.from)?;
        if !self.atoms.is_empty() {
            let atoms: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
            write!(f, " WHERE {}", atoms.join(" AND "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_to_value() {
        assert_eq!(Literal::Int(4).to_value(), Value::Int(4));
        assert_eq!(Literal::Str("x".into()).to_value(), Value::str("x"));
        assert_eq!(Literal::Null.to_value(), Value::Null);
        assert_eq!(Literal::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(Literal::Float(1.5).to_value(), Value::Float(1.5));
    }

    #[test]
    fn display_roundtrips_visually() {
        let q = Query {
            select: vec!["name".into(), "dose".into()],
            from: "trials".into(),
            atoms: vec![
                Atom::Compare {
                    attr: "name".into(),
                    op: CompareOp::Eq,
                    value: Literal::Str("Warfarin".into()),
                },
                Atom::CloseTo {
                    attr: "dose".into(),
                    center: 5.0,
                    width: 0.5,
                },
                Atom::IsConcept {
                    attr: "name".into(),
                    concept: "Drug".into(),
                },
            ],
            limit: Some(10),
        };
        let s = q.to_string();
        assert!(s.contains("SELECT name, dose FROM trials"));
        assert!(s.contains("dose CLOSE TO 5 WITHIN 0.5"));
        assert!(s.contains("name IS 'Drug'"));
        assert!(s.ends_with("LIMIT 10"));
    }

    #[test]
    fn star_select_display() {
        let q = Query {
            select: vec![],
            from: "s".into(),
            atoms: vec![],
            limit: None,
        };
        assert_eq!(q.to_string(), "SELECT * FROM s");
    }
}
