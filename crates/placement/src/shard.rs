//! Write-shard routing for the range-sharded commit path.
//!
//! The core crate partitions its write path into N shards, each with its
//! own state slice, WAL, and committer. Which shard owns a record is
//! decided here: a routing key (the record's identity value) hashes onto
//! one of [`SHARD_SLOTS`] virtual slots, and a slot→shard table — built
//! from the same [`PlacementPolicy`] machinery that drives the OS.4
//! placement experiments — maps the slot to its owning shard.
//!
//! Virtual slots keep the table small and checkpointable (the core crate
//! persists the slot vector in its snapshots so a reopened database
//! routes identically), while the policy choice controls the shape:
//! [`PlacementPolicy::Range`] assigns contiguous slot ranges per shard
//! (the default — neighbouring keys co-locate), [`PlacementPolicy::Hash`]
//! scatters slots uniformly, and [`PlacementPolicy::Affinity`] packs
//! co-accessed slot groups together when a workload trace is supplied.

use crate::policy::{compute_placement, PlacementPolicy};

/// Number of virtual routing slots. Keys hash onto slots; slots map to
/// shards. 64 slots comfortably over-partition any realistic shard count
/// (the core crate caps shards well below this) while keeping the
/// persisted table a fixed 64 entries.
pub const SHARD_SLOTS: usize = 64;

/// An immutable slot→shard routing table for the sharded write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
    /// `slots[i]` = owning shard of virtual slot `i`; length [`SHARD_SLOTS`].
    slots: Vec<u32>,
}

impl ShardMap {
    /// The identity map for an unsharded database: one shard owns every
    /// slot.
    pub fn single() -> ShardMap {
        ShardMap {
            shards: 1,
            slots: vec![0; SHARD_SLOTS],
        }
    }

    /// Build a map for `shards` write shards under `policy`. `workload`
    /// optionally lists co-accessed slot groups (only
    /// [`PlacementPolicy::Affinity`] consults it); pass `&[]` otherwise.
    /// A `shards` of 0 or 1 degenerates to [`ShardMap::single`].
    pub fn build(policy: PlacementPolicy, shards: u32, workload: &[Vec<u64>]) -> ShardMap {
        if shards <= 1 {
            return ShardMap::single();
        }
        let n = (shards as usize).min(SHARD_SLOTS);
        let placement = compute_placement(
            policy,
            SHARD_SLOTS as u64,
            n,
            workload,
            // Capacity never binds for routing: every shard must accept
            // its full slot share.
            usize::MAX,
            0.0,
        );
        let slots = (0..SHARD_SLOTS as u64)
            .map(|slot| placement.primary_of(slot).unwrap_or(0))
            .collect();
        ShardMap {
            shards: n as u32,
            slots,
        }
    }

    /// Rehydrate a map persisted in a checkpoint. Returns `None` when
    /// the slot vector is malformed (wrong length, out-of-range shard).
    pub fn from_slots(shards: u32, slots: Vec<u32>) -> Option<ShardMap> {
        if shards == 0 || slots.len() != SHARD_SLOTS || slots.iter().any(|&s| s >= shards) {
            return None;
        }
        Some(ShardMap { shards, slots })
    }

    /// Number of write shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The persisted slot→shard vector (length [`SHARD_SLOTS`]).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// Owning shard of `slot` (slot taken modulo [`SHARD_SLOTS`]).
    pub fn shard_of_slot(&self, slot: usize) -> u32 {
        self.slots[slot % SHARD_SLOTS]
    }

    /// Owning shard of a routing key: FNV-1a over the key bytes, onto a
    /// slot, through the table. Deterministic across processes and
    /// restarts — the crash-recovery oracle depends on it.
    pub fn shard_of_key(&self, key: &str) -> u32 {
        self.shard_of_slot(fnv1a(key.as_bytes()) as usize)
    }
}

/// 64-bit FNV-1a — stable, dependency-free, and good enough to spread
/// identity strings over 64 slots.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_map_routes_everything_to_shard_zero() {
        let map = ShardMap::single();
        assert_eq!(map.shards(), 1);
        for key in ["", "a", "aspirin", "§weird§"] {
            assert_eq!(map.shard_of_key(key), 0);
        }
    }

    #[test]
    fn build_range_covers_every_shard() {
        for n in [2u32, 3, 4, 8] {
            let map = ShardMap::build(PlacementPolicy::Range, n, &[]);
            assert_eq!(map.shards(), n);
            assert_eq!(map.slots().len(), SHARD_SLOTS);
            for shard in 0..n {
                assert!(
                    map.slots().contains(&shard),
                    "shard {shard} owns no slot under Range/{n}"
                );
            }
            // Range placement is contiguous in slot space.
            let mut changes = 0;
            for w in map.slots().windows(2) {
                if w[0] != w[1] {
                    changes += 1;
                }
            }
            assert_eq!(changes, (n - 1) as usize, "contiguous slot ranges");
        }
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let map = ShardMap::build(PlacementPolicy::Range, 4, &[]);
        let mut seen = [0usize; 4];
        for i in 0..1000 {
            let key = format!("entity-{i}");
            let a = map.shard_of_key(&key);
            let b = map.shard_of_key(&key);
            assert_eq!(a, b, "routing must be deterministic");
            seen[a as usize] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            assert!(count > 100, "shard {shard} got {count}/1000 keys");
        }
    }

    #[test]
    fn from_slots_validates() {
        let map = ShardMap::build(PlacementPolicy::Hash, 3, &[]);
        let rebuilt = ShardMap::from_slots(3, map.slots().to_vec()).unwrap();
        assert_eq!(rebuilt, map);
        assert!(ShardMap::from_slots(0, vec![0; SHARD_SLOTS]).is_none());
        assert!(ShardMap::from_slots(2, vec![0; 3]).is_none());
        assert!(ShardMap::from_slots(2, vec![5; SHARD_SLOTS]).is_none());
    }

    #[test]
    fn shards_capped_by_slot_count() {
        let map = ShardMap::build(PlacementPolicy::Range, 1000, &[]);
        assert_eq!(map.shards() as usize, SHARD_SLOTS);
    }
}
