//! The cluster cost model and placement evaluation.

use std::collections::{HashMap, HashSet};

/// Cluster parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of memory nodes.
    pub n_nodes: usize,
    /// Per-node capacity in items (replicas count against capacity).
    pub node_capacity: usize,
    /// Cost of touching a local item.
    pub local_cost: f64,
    /// Cost of touching a remote item (one-sided RDMA-style read).
    pub remote_cost: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_nodes: 8,
            node_capacity: usize::MAX,
            local_cost: 1.0,
            remote_cost: 10.0,
        }
    }
}

/// A placement: every item has a primary node and possibly replicas.
#[derive(Debug, Clone)]
pub struct Placement {
    /// item → primary node.
    primary: Vec<u32>,
    /// item → replica nodes (not including the primary).
    replicas: HashMap<u64, Vec<u32>>,
    n_nodes: usize,
}

impl Placement {
    /// Build from primary assignments.
    pub fn new(primary: Vec<u32>, n_nodes: usize) -> Self {
        Placement {
            primary,
            replicas: HashMap::new(),
            n_nodes,
        }
    }

    /// Number of items placed.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// Primary node of `item`.
    pub fn primary_of(&self, item: u64) -> Option<u32> {
        self.primary.get(item as usize).copied()
    }

    /// Add a replica of `item` on `node` (no-op if it is the primary or
    /// already replicated there).
    pub fn add_replica(&mut self, item: u64, node: u32) {
        if self.primary_of(item) == Some(node) {
            return;
        }
        let list = self.replicas.entry(item).or_default();
        if !list.contains(&node) {
            list.push(node);
        }
    }

    /// All nodes holding `item`.
    pub fn holders(&self, item: u64) -> Vec<u32> {
        let mut v = Vec::new();
        if let Some(p) = self.primary_of(item) {
            v.push(p);
        }
        if let Some(r) = self.replicas.get(&item) {
            v.extend(r.iter().copied());
        }
        v
    }

    /// Item count per node (primaries + replicas).
    pub fn node_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.n_nodes];
        for &p in &self.primary {
            if let Some(l) = loads.get_mut(p as usize) {
                *l += 1;
            }
        }
        for list in self.replicas.values() {
            for &n in list {
                if let Some(l) = loads.get_mut(n as usize) {
                    *l += 1;
                }
            }
        }
        loads
    }

    /// Duplication factor: total copies / items (1.0 = no replication).
    pub fn duplication(&self) -> f64 {
        if self.primary.is_empty() {
            return 1.0;
        }
        let copies: usize =
            self.primary.len() + self.replicas.values().map(Vec::len).sum::<usize>();
        copies as f64 / self.primary.len() as f64
    }
}

/// Evaluation result for a placement against a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// Total simulated access cost.
    pub total_cost: f64,
    /// Fraction of item touches that were remote.
    pub remote_ratio: f64,
    /// Largest per-node item count.
    pub max_node_load: usize,
    /// Memory duplication factor.
    pub duplication: f64,
    /// Number of accesses evaluated.
    pub accesses: usize,
}

/// Evaluate `placement` on a workload of co-access groups.
///
/// For each access, the coordinator node is chosen optimally for that
/// access: the node holding (a copy of) the plurality of the group's
/// items. Items with a copy on the coordinator cost `local_cost`; the
/// rest cost `remote_cost`.
pub fn evaluate(
    placement: &Placement,
    workload: &[Vec<u64>],
    config: &ClusterConfig,
) -> PlacementReport {
    let mut total_cost = 0.0;
    let mut touches = 0u64;
    let mut remote = 0u64;
    for group in workload {
        if group.is_empty() {
            continue;
        }
        // Coordinator: node covering the most items of this group.
        let mut cover: HashMap<u32, usize> = HashMap::new();
        for &item in group {
            for node in placement.holders(item) {
                *cover.entry(node).or_insert(0) += 1;
            }
        }
        let coordinator = cover
            .iter()
            .max_by_key(|(node, c)| (**c, std::cmp::Reverse(**node)))
            .map(|(n, _)| *n)
            .unwrap_or(0);
        let local: HashSet<u64> = group
            .iter()
            .copied()
            .filter(|i| placement.holders(*i).contains(&coordinator))
            .collect();
        for &item in group {
            touches += 1;
            if local.contains(&item) {
                total_cost += config.local_cost;
            } else {
                total_cost += config.remote_cost;
                remote += 1;
            }
        }
    }
    PlacementReport {
        total_cost,
        remote_ratio: if touches == 0 {
            0.0
        } else {
            remote as f64 / touches as f64
        },
        max_node_load: placement.node_loads().into_iter().max().unwrap_or(0),
        duplication: placement.duplication(),
        accesses: workload.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holders_and_loads() {
        let mut p = Placement::new(vec![0, 1, 0], 2);
        assert_eq!(p.primary_of(1), Some(1));
        p.add_replica(1, 0);
        p.add_replica(1, 0); // idempotent
        p.add_replica(2, 0); // no-op: already primary there
        assert_eq!(p.holders(1), vec![1, 0]);
        assert_eq!(p.node_loads(), vec![3, 1]);
        assert!((p.duplication() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_group_is_all_local() {
        let p = Placement::new(vec![0, 0, 0, 1], 2);
        let cfg = ClusterConfig::default();
        let report = evaluate(&p, &[vec![0, 1, 2]], &cfg);
        assert_eq!(report.remote_ratio, 0.0);
        assert_eq!(report.total_cost, 3.0);
    }

    #[test]
    fn scattered_group_pays_remote() {
        let p = Placement::new(vec![0, 1, 2, 3], 4);
        let cfg = ClusterConfig::default();
        let report = evaluate(&p, &[vec![0, 1, 2, 3]], &cfg);
        // Coordinator covers exactly one item; 3 remote.
        assert!((report.remote_ratio - 0.75).abs() < 1e-9);
        assert_eq!(report.total_cost, 1.0 + 3.0 * 10.0);
    }

    #[test]
    fn replication_reduces_remote_at_duplication_cost() {
        let mut p = Placement::new(vec![0, 1], 2);
        let cfg = ClusterConfig::default();
        let before = evaluate(&p, &[vec![0, 1]], &cfg);
        p.add_replica(1, 0);
        let after = evaluate(&p, &[vec![0, 1]], &cfg);
        assert!(after.remote_ratio < before.remote_ratio);
        assert!(after.duplication > before.duplication);
    }

    #[test]
    fn empty_workload() {
        let p = Placement::new(vec![0], 1);
        let report = evaluate(&p, &[], &ClusterConfig::default());
        assert_eq!(report.total_cost, 0.0);
        assert_eq!(report.remote_ratio, 0.0);
    }

    #[test]
    fn unplaced_item_counts_remote() {
        let p = Placement::new(vec![0], 1);
        let report = evaluate(&p, &[vec![0, 99]], &ClusterConfig::default());
        assert!(report.remote_ratio > 0.0);
    }
}
