//! Placement policies.
//!
//! Three primary-placement policies plus optional replication of hot
//! items. The affinity policy consumes the same co-access evidence the
//! OS.1 clusterer uses — the paper's point that instance-level affinity
//! should drive *both* intra-node layout and inter-node placement.

use std::collections::HashMap;

use crate::sim::Placement;

/// Primary placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// `item % n_nodes` — uniform scatter.
    Hash,
    /// Contiguous ranges of the item space.
    Range,
    /// Greedy co-access packing: frequent groups are assigned wholesale to
    /// the least-loaded node with room.
    Affinity,
}

/// Compute a placement of items `0..n_items` on `n_nodes` nodes.
///
/// `workload` is consulted only by [`PlacementPolicy::Affinity`].
/// `capacity` bounds per-node primaries (use `usize::MAX` for unbounded);
/// `replicate_hot_fraction` (0.0–1.0) additionally replicates the hottest
/// items to every node that accessed them.
pub fn compute_placement(
    policy: PlacementPolicy,
    n_items: u64,
    n_nodes: usize,
    workload: &[Vec<u64>],
    capacity: usize,
    replicate_hot_fraction: f64,
) -> Placement {
    let n_nodes = n_nodes.max(1);
    let mut primary = vec![u32::MAX; n_items as usize];
    let mut loads = vec![0usize; n_nodes];

    match policy {
        PlacementPolicy::Hash => {
            for i in 0..n_items {
                // Multiplicative scramble so adjacent items scatter.
                let node = ((i.wrapping_mul(0x9E3779B97F4A7C15)) % n_nodes as u64) as u32;
                primary[i as usize] = node;
                loads[node as usize] += 1;
            }
        }
        PlacementPolicy::Range => {
            let per = n_items.div_ceil(n_nodes as u64).max(1);
            for i in 0..n_items {
                let node = ((i / per) as usize).min(n_nodes - 1) as u32;
                primary[i as usize] = node;
                loads[node as usize] += 1;
            }
        }
        PlacementPolicy::Affinity => {
            // Count group frequencies.
            let mut group_freq: HashMap<&[u64], usize> = HashMap::new();
            for g in workload {
                *group_freq.entry(g.as_slice()).or_insert(0) += 1;
            }
            let mut groups: Vec<(&[u64], usize)> = group_freq.into_iter().collect();
            groups.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            // Hottest groups first: place all unassigned members on the
            // least-loaded node with capacity for them.
            for (group, _) in groups {
                let unassigned: Vec<u64> = group
                    .iter()
                    .copied()
                    .filter(|&i| (i as usize) < primary.len() && primary[i as usize] == u32::MAX)
                    .collect();
                if unassigned.is_empty() {
                    continue;
                }
                // Prefer the node already holding most of this group.
                let mut cover = vec![0usize; n_nodes];
                for &i in group.iter() {
                    if (i as usize) < primary.len() && primary[i as usize] != u32::MAX {
                        cover[primary[i as usize] as usize] += 1;
                    }
                }
                let candidate = (0..n_nodes)
                    .filter(|&n| loads[n] + unassigned.len() <= capacity)
                    .max_by_key(|&n| (cover[n], std::cmp::Reverse(loads[n])))
                    .or_else(|| (0..n_nodes).min_by_key(|&n| loads[n]));
                let node = candidate.unwrap_or(0) as u32;
                for i in unassigned {
                    primary[i as usize] = node;
                    loads[node as usize] += 1;
                }
            }
            // Leftovers (never accessed): fill least-loaded.
            for slot in primary.iter_mut() {
                if *slot == u32::MAX {
                    let node = (0..n_nodes).min_by_key(|&n| loads[n]).unwrap_or(0);
                    *slot = node as u32;
                    loads[node] += 1;
                }
            }
        }
    }

    let mut placement = Placement::new(primary, n_nodes);

    if replicate_hot_fraction > 0.0 && !workload.is_empty() {
        // Item heat.
        let mut heat: HashMap<u64, usize> = HashMap::new();
        let mut accessed_from: HashMap<u64, Vec<u32>> = HashMap::new();
        for g in workload {
            // The access's natural coordinator under current primaries.
            let mut cover: HashMap<u32, usize> = HashMap::new();
            for &i in g {
                if let Some(p) = placement.primary_of(i) {
                    *cover.entry(p).or_insert(0) += 1;
                }
            }
            let coord = cover
                .iter()
                .max_by_key(|(n, c)| (**c, std::cmp::Reverse(**n)))
                .map(|(n, _)| *n)
                .unwrap_or(0);
            for &i in g {
                *heat.entry(i).or_insert(0) += 1;
                accessed_from.entry(i).or_default().push(coord);
            }
        }
        let mut hot: Vec<(u64, usize)> = heat.into_iter().collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let take = ((hot.len() as f64) * replicate_hot_fraction.clamp(0.0, 1.0)).ceil() as usize;
        for (item, _) in hot.into_iter().take(take) {
            if let Some(coords) = accessed_from.get(&item) {
                for &node in coords {
                    placement.add_replica(item, node);
                }
            }
        }
    }

    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{evaluate, ClusterConfig};

    fn affine_workload() -> Vec<Vec<u64>> {
        // Groups spanning the item space so range/hash both split them.
        let mut w = Vec::new();
        for rep in 0..20 {
            for g in 0..10u64 {
                let group = vec![g, g + 50, g + 100, g + 150];
                w.push(group);
                let _ = rep;
            }
        }
        w
    }

    #[test]
    fn all_policies_place_every_item() {
        let w = affine_workload();
        for policy in [
            PlacementPolicy::Hash,
            PlacementPolicy::Range,
            PlacementPolicy::Affinity,
        ] {
            let p = compute_placement(policy, 200, 4, &w, usize::MAX, 0.0);
            for i in 0..200u64 {
                assert!(p.primary_of(i).is_some(), "{policy:?} item {i}");
                assert!(p.primary_of(i).unwrap() < 4);
            }
        }
    }

    #[test]
    fn affinity_beats_hash_and_range_on_affine_workload() {
        let w = affine_workload();
        let cfg = ClusterConfig {
            n_nodes: 4,
            ..Default::default()
        };
        let score = |policy| {
            let p = compute_placement(policy, 200, 4, &w, usize::MAX, 0.0);
            evaluate(&p, &w, &cfg).remote_ratio
        };
        let hash = score(PlacementPolicy::Hash);
        let range = score(PlacementPolicy::Range);
        let affinity = score(PlacementPolicy::Affinity);
        assert!(
            affinity < hash && affinity < range,
            "affinity {affinity} vs hash {hash} vs range {range}"
        );
        assert!(affinity < 0.05, "affine groups should be fully co-located");
    }

    #[test]
    fn capacity_respected_by_affinity() {
        let w = affine_workload();
        let p = compute_placement(PlacementPolicy::Affinity, 200, 4, &w, 60, 0.0);
        for load in p.node_loads() {
            assert!(load <= 60, "load {load} exceeds capacity");
        }
    }

    #[test]
    fn replication_reduces_remote_ratio() {
        let w = affine_workload();
        let cfg = ClusterConfig {
            n_nodes: 4,
            ..Default::default()
        };
        let base = compute_placement(PlacementPolicy::Hash, 200, 4, &w, usize::MAX, 0.0);
        let replicated = compute_placement(PlacementPolicy::Hash, 200, 4, &w, usize::MAX, 0.5);
        let r0 = evaluate(&base, &w, &cfg);
        let r1 = evaluate(&replicated, &w, &cfg);
        assert!(r1.remote_ratio < r0.remote_ratio);
        assert!(r1.duplication > r0.duplication);
    }

    #[test]
    fn range_is_contiguous() {
        let p = compute_placement(PlacementPolicy::Range, 100, 4, &[], usize::MAX, 0.0);
        // Non-decreasing node over item index.
        let mut prev = 0;
        for i in 0..100u64 {
            let n = p.primary_of(i).unwrap();
            assert!(n >= prev);
            prev = n;
        }
    }

    #[test]
    fn single_node_degenerate() {
        let p = compute_placement(
            PlacementPolicy::Affinity,
            10,
            1,
            &[vec![1, 2]],
            usize::MAX,
            0.0,
        );
        for i in 0..10u64 {
            assert_eq!(p.primary_of(i), Some(0));
        }
    }
}
