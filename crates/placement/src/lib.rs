//! OS.4 — data placement in distributed shared memory.
//!
//! "How can existing placement strategies be adapted to transition from
//! disk data placement to placing data in distributed main memory at
//! cloud scale? How can the data be judiciously placed in distributed
//! shared memory with close affinity when online integration of data
//! sources is likely, in order to eliminate the storage access cost and to
//! reduce the main memory footprint by avoiding data cache duplication?"
//!
//! Real RDMA clusters are substituted (per DESIGN.md) by a deterministic
//! cost model: a cluster of `n` memory nodes, items with sizes, accesses
//! that touch groups of items from a coordinator node, local accesses at
//! unit cost and remote accesses at a configurable multiple. Policies:
//!
//! * [`PlacementPolicy::Hash`] — uniform scatter (the classical default);
//! * [`PlacementPolicy::Range`] — contiguous ranges (disk-era placement
//!   "adapted" naively);
//! * [`PlacementPolicy::Affinity`] — co-access-aware greedy packing: items
//!   accessed together land on the same node, subject to capacity;
//! * optional replication of hot items, which trades memory duplication
//!   for remote-access reduction — exactly the footprint-vs-cost tension
//!   the statement names.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod shard;
pub mod sim;

pub use policy::{compute_placement, PlacementPolicy};
pub use shard::{ShardMap, SHARD_SLOTS};
pub use sim::{evaluate, ClusterConfig, Placement, PlacementReport};
