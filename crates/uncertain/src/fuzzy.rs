//! Fuzzy logic: membership functions and t-norms.
//!
//! §4.2: "the notion of closeness can further be formulated based on fuzzy
//! logic in light of the fact that 'Warfarin has a very narrow therapeutic
//! range'." A [`FuzzyPredicate`] maps a value to a membership degree in
//! `[0, 1]`; t-norms/t-conorms combine degrees conjunctively and
//! disjunctively.

/// Triangular-norm families for fuzzy conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TNorm {
    /// Gödel (minimum) — the standard fuzzy "and".
    Minimum,
    /// Product — independent-evidence flavour.
    Product,
    /// Łukasiewicz — `max(0, a + b − 1)`.
    Lukasiewicz,
}

/// Fuzzy conjunction under the chosen t-norm.
pub fn t_norm(norm: TNorm, a: f64, b: f64) -> f64 {
    let (a, b) = (a.clamp(0.0, 1.0), b.clamp(0.0, 1.0));
    match norm {
        TNorm::Minimum => a.min(b),
        TNorm::Product => a * b,
        TNorm::Lukasiewicz => (a + b - 1.0).max(0.0),
    }
}

/// The dual t-conorm (fuzzy disjunction) of each t-norm.
pub fn t_conorm(norm: TNorm, a: f64, b: f64) -> f64 {
    let (a, b) = (a.clamp(0.0, 1.0), b.clamp(0.0, 1.0));
    match norm {
        TNorm::Minimum => a.max(b),
        TNorm::Product => a + b - a * b,
        TNorm::Lukasiewicz => (a + b).min(1.0),
    }
}

/// Fuzzy negation (standard complement).
pub fn f_not(a: f64) -> f64 {
    1.0 - a.clamp(0.0, 1.0)
}

/// A fuzzy predicate over numeric values.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyPredicate {
    /// Triangular "close to `center`" with full membership at the center
    /// decaying linearly to 0 at distance `width`. The §4.2 dosage
    /// predicate: narrow therapeutic range ⇒ small `width`.
    CloseTo {
        /// Peak of the triangle.
        center: f64,
        /// Half-width at zero membership.
        width: f64,
    },
    /// Trapezoidal membership: full inside `[core_lo, core_hi]`, linear
    /// shoulders out to `[support_lo, support_hi]`.
    Trapezoid {
        /// Left support edge (membership 0).
        support_lo: f64,
        /// Left core edge (membership 1).
        core_lo: f64,
        /// Right core edge (membership 1).
        core_hi: f64,
        /// Right support edge (membership 0).
        support_hi: f64,
    },
    /// Smooth sigmoid "at least `threshold`", steepness `slope`.
    AtLeast {
        /// Inflection point.
        threshold: f64,
        /// Steepness; larger is crisper.
        slope: f64,
    },
}

impl FuzzyPredicate {
    /// Membership degree of `x`.
    pub fn membership(&self, x: f64) -> f64 {
        match *self {
            FuzzyPredicate::CloseTo { center, width } => {
                if width <= 0.0 {
                    return f64::from(u8::from(x == center));
                }
                (1.0 - (x - center).abs() / width).max(0.0)
            }
            FuzzyPredicate::Trapezoid {
                support_lo,
                core_lo,
                core_hi,
                support_hi,
            } => {
                if x < support_lo || x > support_hi {
                    0.0
                } else if x >= core_lo && x <= core_hi {
                    1.0
                } else if x < core_lo {
                    (x - support_lo) / (core_lo - support_lo).max(f64::MIN_POSITIVE)
                } else {
                    (support_hi - x) / (support_hi - core_hi).max(f64::MIN_POSITIVE)
                }
            }
            FuzzyPredicate::AtLeast { threshold, slope } => {
                1.0 / (1.0 + (-slope * (x - threshold)).exp())
            }
        }
    }

    /// Crisp cut: membership at or above `alpha`.
    pub fn alpha_cut(&self, x: f64, alpha: f64) -> bool {
        self.membership(x) >= alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_to_triangle() {
        let p = FuzzyPredicate::CloseTo {
            center: 5.0,
            width: 0.5,
        };
        assert_eq!(p.membership(5.0), 1.0);
        assert!((p.membership(5.1) - 0.8).abs() < 1e-9);
        assert_eq!(p.membership(5.5), 0.0);
        assert_eq!(p.membership(6.0), 0.0);
        assert_eq!(p.membership(4.5), 0.0);
    }

    #[test]
    fn warfarin_narrow_range_semantics() {
        // Narrow therapeutic range: 5.1 mg is "close to" 5.0 mg, 3.4 and
        // 6.1 are not.
        let narrow = FuzzyPredicate::CloseTo {
            center: 5.0,
            width: 0.5,
        };
        assert!(narrow.alpha_cut(5.1, 0.5));
        assert!(!narrow.alpha_cut(3.4, 0.5));
        assert!(!narrow.alpha_cut(6.1, 0.5));
    }

    #[test]
    fn degenerate_width() {
        let p = FuzzyPredicate::CloseTo {
            center: 2.0,
            width: 0.0,
        };
        assert_eq!(p.membership(2.0), 1.0);
        assert_eq!(p.membership(2.0001), 0.0);
    }

    #[test]
    fn trapezoid() {
        let p = FuzzyPredicate::Trapezoid {
            support_lo: 0.0,
            core_lo: 1.0,
            core_hi: 2.0,
            support_hi: 4.0,
        };
        assert_eq!(p.membership(-1.0), 0.0);
        assert!((p.membership(0.5) - 0.5).abs() < 1e-9);
        assert_eq!(p.membership(1.5), 1.0);
        assert!((p.membership(3.0) - 0.5).abs() < 1e-9);
        assert_eq!(p.membership(5.0), 0.0);
    }

    #[test]
    fn at_least_sigmoid() {
        let p = FuzzyPredicate::AtLeast {
            threshold: 10.0,
            slope: 2.0,
        };
        assert!((p.membership(10.0) - 0.5).abs() < 1e-9);
        assert!(p.membership(15.0) > 0.99);
        assert!(p.membership(5.0) < 0.01);
    }

    #[test]
    fn t_norm_laws() {
        for norm in [TNorm::Minimum, TNorm::Product, TNorm::Lukasiewicz] {
            // Identity: T(a, 1) = a.
            assert!((t_norm(norm, 0.7, 1.0) - 0.7).abs() < 1e-9, "{norm:?}");
            // Annihilator: T(a, 0) = 0.
            assert_eq!(t_norm(norm, 0.7, 0.0), 0.0, "{norm:?}");
            // Commutativity.
            assert_eq!(t_norm(norm, 0.3, 0.6), t_norm(norm, 0.6, 0.3));
            // Bounded.
            let v = t_norm(norm, 0.4, 0.9);
            assert!((0.0..=1.0).contains(&v));
            // De Morgan duality with the standard complement.
            let a = 0.35;
            let b = 0.8;
            let lhs = f_not(t_norm(norm, a, b));
            let rhs = t_conorm(norm, f_not(a), f_not(b));
            assert!((lhs - rhs).abs() < 1e-9, "{norm:?}");
        }
    }

    #[test]
    fn t_norm_ordering() {
        // Łukasiewicz ≤ product ≤ minimum pointwise.
        let (a, b) = (0.6, 0.7);
        assert!(t_norm(TNorm::Lukasiewicz, a, b) <= t_norm(TNorm::Product, a, b));
        assert!(t_norm(TNorm::Product, a, b) <= t_norm(TNorm::Minimum, a, b));
    }

    #[test]
    fn inputs_clamped() {
        assert_eq!(t_norm(TNorm::Minimum, 1.5, 2.0), 1.0);
        assert_eq!(t_conorm(TNorm::Product, -0.5, 0.0), 0.0);
        assert_eq!(f_not(2.0), 0.0);
    }
}
