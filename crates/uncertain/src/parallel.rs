//! FS.10 — parallel worlds and justified answers (§4.2).
//!
//! "Data at the web scale consist\[s\] of a large set of actual worlds
//! (independent data sources), not just postulated probable worlds. These
//! independent actual worlds, which we refer to as 'parallel worlds' …
//! may have conflicting facts, an alternative view of worlds, or relative
//! facts that are only locally consistent given the premise of the
//! particular world." A *justified* answer takes "justify … as a fuzzy
//! definition of 'certain' to capture, possibly in a relaxed form,
//! correctness and consistency".
//!
//! The Warfarin scenario is the acceptance test: three clinical sources
//! report effective dosages 5.1 / 3.4 / 6.1 mg for white / Asian / black
//! populations. Asked "is 5.0 mg effective?":
//!
//! * **naive certain answer** — must hold in *every* world ⇒ `false`
//!   (3.4 and 6.1 are not close to 5.0);
//! * **justified answer** — the worlds' premises (population classes) are
//!   pairwise *disjoint*, so the worlds describe different slices of
//!   reality, not contradictory views of one; it suffices that *some*
//!   world supports the answer ⇒ `true`, justified by the white-population
//!   world at fuzzy degree 0.8.

use scdb_types::{ConceptId, Record, WorldId};

/// One independent actual world: a source's data plus the premises
/// (concept tags, e.g. a population class) under which its facts hold.
#[derive(Debug, Clone)]
pub struct ParallelWorld {
    /// World identity (typically one per source).
    pub id: WorldId,
    /// The premises of the world — semantic classes qualifying every fact.
    pub premises: Vec<ConceptId>,
    /// The world's tuples (locally complete and consistent).
    pub tuples: Vec<Record>,
}

/// The answer of a justified evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct JustifiedAnswer {
    /// The verdict at the requested threshold.
    pub justified: bool,
    /// Per-world support degree in `[0, 1]`, sorted by world id.
    pub support: Vec<(WorldId, f64)>,
    /// Whether the worlds were recognized as premise-disjoint (parallel)
    /// rather than overlapping views that must agree.
    pub premises_disjoint: bool,
}

impl JustifiedAnswer {
    /// The strongest supporting world, if any support exists.
    pub fn best_world(&self) -> Option<(WorldId, f64)> {
        self.support
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// A set of parallel worlds with evaluation semantics.
#[derive(Debug, Clone, Default)]
pub struct ParallelWorldSet {
    worlds: Vec<ParallelWorld>,
}

impl ParallelWorldSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a world.
    pub fn add(&mut self, world: ParallelWorld) {
        self.worlds.push(world);
    }

    /// The worlds.
    pub fn worlds(&self) -> &[ParallelWorld] {
        &self.worlds
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Per-world fuzzy support for a query: the maximum membership any
    /// tuple of the world achieves under `degree`.
    pub fn world_support<F: Fn(&Record) -> f64>(&self, degree: &F) -> Vec<(WorldId, f64)> {
        let mut v: Vec<(WorldId, f64)> = self
            .worlds
            .iter()
            .map(|w| {
                let best = w
                    .tuples
                    .iter()
                    .map(degree)
                    .fold(0.0f64, |acc, d| acc.max(d.clamp(0.0, 1.0)));
                (w.id, best)
            })
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// **Naive certain answer**: the query must hold (degree ≥ `alpha`) in
    /// every world — the semantics that returns *false* for the Warfarin
    /// question.
    pub fn naive_certain<F: Fn(&Record) -> f64>(&self, degree: &F, alpha: f64) -> bool {
        !self.worlds.is_empty() && self.world_support(degree).iter().all(|(_, d)| *d >= alpha)
    }

    /// **Justified answer** (FS.10): when the worlds' premises are
    /// pairwise disjoint (per `disjoint`), the worlds are parallel slices
    /// of reality and one sufficiently supporting world justifies the
    /// answer. When premises overlap (or are absent), the worlds are
    /// competing views of the same reality and the naive intersection
    /// semantics is kept.
    pub fn justified<F, D>(&self, degree: &F, alpha: f64, disjoint: D) -> JustifiedAnswer
    where
        F: Fn(&Record) -> f64,
        D: Fn(ConceptId, ConceptId) -> bool,
    {
        let support = self.world_support(degree);
        let premises_disjoint = self.premises_pairwise_disjoint(&disjoint);
        let justified = if premises_disjoint {
            support.iter().any(|(_, d)| *d >= alpha)
        } else {
            !support.is_empty() && support.iter().all(|(_, d)| *d >= alpha)
        };
        JustifiedAnswer {
            justified,
            support,
            premises_disjoint,
        }
    }

    /// Context-conditioned evaluation: restrict to worlds whose premises
    /// include `premise` (the refined query "…for the Asian population").
    pub fn justified_given<F: Fn(&Record) -> f64>(
        &self,
        degree: &F,
        alpha: f64,
        premise: ConceptId,
    ) -> JustifiedAnswer {
        let mut sub = ParallelWorldSet::new();
        for w in &self.worlds {
            if w.premises.contains(&premise) {
                sub.add(w.clone());
            }
        }
        let support = sub.world_support(degree);
        JustifiedAnswer {
            justified: support.iter().any(|(_, d)| *d >= alpha),
            support,
            premises_disjoint: true,
        }
    }

    /// True when every pair of worlds has pairwise-disjoint premise sets:
    /// each pair must exhibit at least one disjoint concept pair and no
    /// shared concept.
    fn premises_pairwise_disjoint<D>(&self, disjoint: &D) -> bool
    where
        D: Fn(ConceptId, ConceptId) -> bool,
    {
        if self.worlds.len() < 2 {
            return false;
        }
        for (i, a) in self.worlds.iter().enumerate() {
            for b in &self.worlds[i + 1..] {
                if a.premises.is_empty() || b.premises.is_empty() {
                    return false;
                }
                let shares = a.premises.iter().any(|p| b.premises.contains(p));
                if shares {
                    return false;
                }
                let any_disjoint = a
                    .premises
                    .iter()
                    .any(|p| b.premises.iter().any(|q| disjoint(*p, *q)));
                if !any_disjoint {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::{SymbolTable, Value};

    /// The §4.2 Warfarin setting: three clinical sources with disjoint
    /// population premises and dosages 5.1 / 3.4 / 6.1.
    fn warfarin() -> (
        ParallelWorldSet,
        SymbolTable,
        ConceptId,
        ConceptId,
        ConceptId,
    ) {
        let mut syms = SymbolTable::new();
        let dose = syms.intern("dose");
        let white = ConceptId(0);
        let asian = ConceptId(1);
        let black = ConceptId(2);
        let mut set = ParallelWorldSet::new();
        for (i, (premise, d)) in [(white, 5.1), (asian, 3.4), (black, 6.1)]
            .into_iter()
            .enumerate()
        {
            set.add(ParallelWorld {
                id: WorldId(i as u32),
                premises: vec![premise],
                tuples: vec![Record::from_pairs([(dose, Value::Float(d))])],
            });
        }
        (set, syms, white, asian, black)
    }

    /// Fuzzy "effective at 5.0 mg" with narrow width (0.5).
    fn close_to_5(syms: &SymbolTable) -> impl Fn(&Record) -> f64 {
        let dose = syms.get("dose").unwrap();
        move |r: &Record| {
            r.get(dose)
                .and_then(|v| v.as_float())
                .map(|x| (1.0 - (x - 5.0f64).abs() / 0.5).max(0.0))
                .unwrap_or(0.0)
        }
    }

    #[test]
    fn warfarin_naive_certain_is_false() {
        let (set, syms, ..) = warfarin();
        assert!(!set.naive_certain(&close_to_5(&syms), 0.5));
    }

    #[test]
    fn warfarin_justified_is_true_under_disjoint_premises() {
        let (set, syms, ..) = warfarin();
        let ans = set.justified(&close_to_5(&syms), 0.5, |_, _| true);
        assert!(ans.justified, "paper's headline result");
        assert!(ans.premises_disjoint);
        let (best_world, best_degree) = ans.best_world().unwrap();
        assert_eq!(best_world, WorldId(0), "white-population world supports");
        assert!(
            (best_degree - 0.8).abs() < 1e-9,
            "5.1 is close to 5.0 at 0.8"
        );
    }

    #[test]
    fn without_disjointness_knowledge_falls_back_to_naive() {
        let (set, syms, ..) = warfarin();
        // The semantic layer cannot prove disjointness ⇒ intersection
        // semantics ⇒ false.
        let ans = set.justified(&close_to_5(&syms), 0.5, |_, _| false);
        assert!(!ans.justified);
        assert!(!ans.premises_disjoint);
    }

    #[test]
    fn context_conditioned_answer() {
        let (set, syms, _white, asian, _black) = warfarin();
        let dose = syms.get("dose").unwrap();
        // "Is 3.4 mg effective for the Asian population?"
        let close_to_34 = move |r: &Record| {
            r.get(dose)
                .and_then(|v| v.as_float())
                .map(|x| (1.0 - (x - 3.4f64).abs() / 0.5).max(0.0))
                .unwrap_or(0.0)
        };
        let ans = set.justified_given(&close_to_34, 0.9, asian);
        assert!(ans.justified);
        assert_eq!(ans.support.len(), 1);
        // The same question for 5.0 mg in the Asian world fails.
        let ans = set.justified_given(&close_to_5(&syms), 0.5, asian);
        assert!(!ans.justified);
    }

    #[test]
    fn shared_premises_are_not_parallel() {
        let (mut set, syms, white, ..) = warfarin();
        // Add a world sharing the white premise: now views overlap.
        let dose = syms.get("dose").unwrap();
        set.add(ParallelWorld {
            id: WorldId(9),
            premises: vec![white],
            tuples: vec![Record::from_pairs([(dose, Value::Float(2.0))])],
        });
        let ans = set.justified(&close_to_5(&syms), 0.5, |_, _| true);
        assert!(!ans.premises_disjoint);
        assert!(!ans.justified);
    }

    #[test]
    fn single_world_is_not_parallel() {
        let (_, syms, white, ..) = warfarin();
        let dose = syms.get("dose").unwrap();
        let mut set = ParallelWorldSet::new();
        set.add(ParallelWorld {
            id: WorldId(0),
            premises: vec![white],
            tuples: vec![Record::from_pairs([(dose, Value::Float(5.1))])],
        });
        let ans = set.justified(&close_to_5(&syms), 0.5, |_, _| true);
        // One world: plain evaluation; 5.1 supports at 0.8 ≥ 0.5.
        assert!(ans.justified);
        assert!(!ans.premises_disjoint);
    }

    #[test]
    fn empty_set_answers_nothing() {
        let set = ParallelWorldSet::new();
        let ans = set.justified(&|_: &Record| 1.0, 0.5, |_, _| true);
        assert!(!ans.justified);
        assert!(!set.naive_certain(&|_: &Record| 1.0, 0.5));
    }

    #[test]
    fn worlds_without_premises_not_parallel() {
        let mut syms = SymbolTable::new();
        let dose = syms.intern("dose");
        let mut set = ParallelWorldSet::new();
        for i in 0..2 {
            set.add(ParallelWorld {
                id: WorldId(i),
                premises: vec![],
                tuples: vec![Record::from_pairs([(dose, Value::Float(5.1))])],
            });
        }
        let ans = set.justified(&close_to_5(&syms), 0.5, |_, _| true);
        assert!(!ans.premises_disjoint);
        // Both worlds support 0.8 ≥ 0.5, so even the naive semantics says
        // yes here.
        assert!(ans.justified);
    }
}
