//! Conditional tables (c-tables).
//!
//! "A well-known expressive representational model is a conditional table
//! (c-table), in which each tuple tᵢ is associated with a Boolean formula
//! (the condition cᵢ). The existence of a tuple in a possible world is
//! subject to the satisfaction of its condition; c-tables are formally
//! expressed as the valuation function of conditions v(c)." (§4.2)
//!
//! Variables range over finite domains; a *valuation* assigns each
//! variable a value; a condition evaluates under a valuation; the set of
//! valuations induces the possible worlds consumed by
//! [`crate::worlds::PossibleWorlds`].

use std::collections::{BTreeMap, HashMap};

use scdb_types::{Record, Value};

/// A condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(pub u32);

/// A boolean condition over variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Always true (a certain tuple).
    True,
    /// Always false.
    False,
    /// `var = value`.
    Eq(Variable, Value),
    /// `var ≠ value`.
    Ne(Variable, Value),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Conjoin two conditions, simplifying the `True`/`False` units.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (a, b) => Condition::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjoin two conditions, simplifying units.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::False, c) | (c, Condition::False) => c,
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (a, b) => Condition::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluate under a (total) valuation. Variables absent from the
    /// valuation make `Eq`/`Ne` evaluate pessimistically to `false`.
    pub fn eval(&self, valuation: &HashMap<Variable, Value>) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Eq(v, val) => valuation.get(v).is_some_and(|x| x == val),
            Condition::Ne(v, val) => valuation.get(v).is_some_and(|x| x != val),
            Condition::And(a, b) => a.eval(valuation) && b.eval(valuation),
            Condition::Or(a, b) => a.eval(valuation) || b.eval(valuation),
            Condition::Not(a) => !a.eval(valuation),
        }
    }

    /// Collect the variables mentioned.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Variable>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(v, _) | Condition::Ne(v, _) => out.push(*v),
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Condition::Not(a) => a.collect_vars(out),
        }
    }
}

/// A conditional table: tuples paired with existence conditions, plus the
/// domains of the condition variables.
#[derive(Debug, Clone, Default)]
pub struct CTable {
    tuples: Vec<(Record, Condition)>,
    domains: BTreeMap<Variable, Vec<Value>>,
}

impl CTable {
    /// Empty c-table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a variable's finite domain. Duplicate values are removed.
    pub fn declare(&mut self, var: Variable, mut domain: Vec<Value>) {
        domain.dedup();
        self.domains.insert(var, domain);
    }

    /// Add a tuple guarded by `condition`.
    pub fn add(&mut self, tuple: Record, condition: Condition) {
        self.tuples.push((tuple, condition));
    }

    /// The tuples with their conditions.
    pub fn tuples(&self) -> &[(Record, Condition)] {
        &self.tuples
    }

    /// Number of tuples (certain and conditional).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Declared variables in order.
    pub fn variables(&self) -> impl Iterator<Item = (Variable, &[Value])> {
        self.domains.iter().map(|(v, d)| (*v, d.as_slice()))
    }

    /// Enumerate all valuations (cartesian product of domains). The count
    /// is exponential in the number of variables; callers guard size.
    pub fn valuations(&self) -> Vec<HashMap<Variable, Value>> {
        let mut out: Vec<HashMap<Variable, Value>> = vec![HashMap::new()];
        for (var, domain) in &self.domains {
            let mut next = Vec::with_capacity(out.len() * domain.len().max(1));
            for partial in &out {
                for value in domain {
                    let mut v = partial.clone();
                    v.insert(*var, value.clone());
                    next.push(v);
                }
            }
            out = next;
        }
        out
    }

    /// The world (set of tuples) induced by one valuation.
    pub fn world_of(&self, valuation: &HashMap<Variable, Value>) -> Vec<&Record> {
        self.tuples
            .iter()
            .filter(|(_, c)| c.eval(valuation))
            .map(|(t, _)| t)
            .collect()
    }

    /// Tuples whose condition is `True` — present in every world
    /// regardless of the valuation (the syntactic certain core).
    pub fn certain_core(&self) -> Vec<&Record> {
        self.tuples
            .iter()
            .filter(|(_, c)| *c == Condition::True)
            .map(|(t, _)| t)
            .collect()
    }

    /// Number of possible worlds (product of domain sizes).
    pub fn world_count(&self) -> u64 {
        self.domains
            .values()
            .map(|d| d.len() as u64)
            .product::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SymbolTable;

    fn rec(syms: &mut SymbolTable, name: &str) -> Record {
        let a = syms.intern("name");
        Record::from_pairs([(a, Value::str(name))])
    }

    #[test]
    fn condition_eval() {
        let x = Variable(0);
        let mut v = HashMap::new();
        v.insert(x, Value::Int(1));
        assert!(Condition::Eq(x, Value::Int(1)).eval(&v));
        assert!(!Condition::Eq(x, Value::Int(2)).eval(&v));
        assert!(Condition::Ne(x, Value::Int(2)).eval(&v));
        assert!(Condition::Not(Box::new(Condition::Eq(x, Value::Int(2)))).eval(&v));
        let and = Condition::Eq(x, Value::Int(1)).and(Condition::Ne(x, Value::Int(0)));
        assert!(and.eval(&v));
    }

    #[test]
    fn unbound_variable_is_false() {
        let v = HashMap::new();
        assert!(!Condition::Eq(Variable(9), Value::Int(1)).eval(&v));
        assert!(!Condition::Ne(Variable(9), Value::Int(1)).eval(&v));
    }

    #[test]
    fn unit_simplification() {
        let x = Variable(0);
        let c = Condition::Eq(x, Value::Int(1));
        assert_eq!(Condition::True.and(c.clone()), c);
        assert_eq!(Condition::False.and(c.clone()), Condition::False);
        assert_eq!(Condition::False.or(c.clone()), c);
        assert_eq!(Condition::True.or(c.clone()), Condition::True);
    }

    #[test]
    fn variables_collected() {
        let c = Condition::Eq(Variable(2), Value::Int(1))
            .and(Condition::Ne(Variable(0), Value::Int(3)))
            .or(Condition::Eq(Variable(2), Value::Int(9)));
        assert_eq!(c.variables(), vec![Variable(0), Variable(2)]);
    }

    #[test]
    fn valuations_cartesian() {
        let mut t = CTable::new();
        t.declare(Variable(0), vec![Value::Int(1), Value::Int(2)]);
        t.declare(Variable(1), vec![Value::Bool(true), Value::Bool(false)]);
        assert_eq!(t.valuations().len(), 4);
        assert_eq!(t.world_count(), 4);
    }

    #[test]
    fn worlds_select_tuples_by_condition() {
        let mut syms = SymbolTable::new();
        let mut t = CTable::new();
        let x = Variable(0);
        t.declare(x, vec![Value::Int(0), Value::Int(1)]);
        t.add(rec(&mut syms, "always"), Condition::True);
        t.add(rec(&mut syms, "when-1"), Condition::Eq(x, Value::Int(1)));
        let vals = t.valuations();
        let worlds: Vec<usize> = vals.iter().map(|v| t.world_of(v).len()).collect();
        let mut sorted = worlds.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2]);
        assert_eq!(t.certain_core().len(), 1);
    }

    #[test]
    fn empty_ctable_has_one_world() {
        let t = CTable::new();
        assert_eq!(t.valuations().len(), 1);
        assert_eq!(t.world_count(), 1);
        assert!(t.is_empty());
    }
}
