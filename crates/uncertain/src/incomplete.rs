//! Incomplete databases: labelled nulls, OWA/CWA, certain answers.
//!
//! "The incompleteness semantics ⟦·⟧ is defined for an incomplete database
//! D as a set of complete databases ⟦D⟧ constructed given an
//! interpretation of null values under either an open- or closed-world
//! assumption … the certain answer is defined as certain(Q, D) =
//! ⋂ {Q(Dᵢ) | Dᵢ ∈ ⟦D⟧}" (§4.2, after Libkin \[10\]).
//!
//! We evaluate selection-style queries directly on the incomplete instance
//! with **Codd three-valued logic** (the paper's named example of a null
//! interpretation): predicates over nulls return [`Truth::Unknown`], a
//! tuple is a *certain* answer when the predicate is [`Truth::True`] under
//! every completion, and a *possible* answer when some completion makes it
//! true. For the predicate class we support (per-attribute comparisons),
//! three-valued evaluation computes exactly the certain/possible sets
//! without enumerating completions — the standard naive-evaluation result.

use scdb_types::{Record, Symbol, Value};

/// Kleene/Codd three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (a null was involved).
    Unknown,
}

impl Truth {
    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)] // the logic-literature name
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// From a definite boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

/// A predicate over records evaluated in three-valued logic.
pub trait ThreeValuedPredicate {
    /// Evaluate against one record.
    fn eval(&self, record: &Record) -> Truth;
}

/// `attr op value` comparison predicate.
#[derive(Debug, Clone)]
pub struct Compare {
    /// Attribute to test.
    pub attr: Symbol,
    /// Comparison operator.
    pub op: CompareOp,
    /// Right-hand constant.
    pub value: Value,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl ThreeValuedPredicate for Compare {
    fn eval(&self, record: &Record) -> Truth {
        let Some(v) = record.get(self.attr) else {
            // Attribute absent ⇒ treated as null.
            return Truth::Unknown;
        };
        if v.is_null() || self.value.is_null() {
            return Truth::Unknown;
        }
        let ord = v.cmp(&self.value);
        let b = match self.op {
            CompareOp::Eq => ord == std::cmp::Ordering::Equal,
            CompareOp::Ne => ord != std::cmp::Ordering::Equal,
            CompareOp::Lt => ord == std::cmp::Ordering::Less,
            CompareOp::Le => ord != std::cmp::Ordering::Greater,
            CompareOp::Gt => ord == std::cmp::Ordering::Greater,
            CompareOp::Ge => ord != std::cmp::Ordering::Less,
        };
        Truth::from_bool(b)
    }
}

/// An incomplete database instance: records where `Value::Null` stands for
/// a labelled null (each occurrence independent, per the marked-null model
/// with distinct labels).
#[derive(Debug, Clone, Default)]
pub struct IncompleteDb {
    records: Vec<Record>,
}

impl IncompleteDb {
    /// Empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a (possibly incomplete) record.
    pub fn add(&mut self, record: Record) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of records containing at least one null.
    pub fn incompleteness(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let with_null = self
            .records
            .iter()
            .filter(|r| r.iter().any(|(_, v)| v.is_null()))
            .count();
        with_null as f64 / self.records.len() as f64
    }

    /// Certain answers to a selection: records whose predicate is
    /// definitely true in every completion.
    pub fn certain<P: ThreeValuedPredicate>(&self, pred: &P) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| pred.eval(r) == Truth::True)
            .collect()
    }

    /// Possible answers: records true in at least one completion (i.e.
    /// not definitely false).
    pub fn possible<P: ThreeValuedPredicate>(&self, pred: &P) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| pred.eval(r) != Truth::False)
            .collect()
    }

    /// Certain boolean answer under the **closed-world assumption**: the
    /// query "∃ record satisfying pred" is certainly true iff some record
    /// satisfies it definitely.
    pub fn certain_exists_cwa<P: ThreeValuedPredicate>(&self, pred: &P) -> bool {
        !self.certain(pred).is_empty()
    }

    /// Under the **open-world assumption** the instance is a lower bound:
    /// existence can never be certainly *false*, so the function reports
    /// `Some(true)` when certain, `None` (unknown) otherwise — there is no
    /// certain "no" in OWA.
    pub fn certain_exists_owa<P: ThreeValuedPredicate>(&self, pred: &P) -> Option<bool> {
        if self.certain_exists_cwa(pred) {
            Some(true)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SymbolTable;

    fn db() -> (IncompleteDb, Symbol) {
        let mut syms = SymbolTable::new();
        let dose = syms.intern("dose");
        let mut db = IncompleteDb::new();
        db.add(Record::from_pairs([(dose, Value::Float(5.1))]));
        db.add(Record::from_pairs([(dose, Value::Null)]));
        db.add(Record::from_pairs([(dose, Value::Float(3.4))]));
        (db, dose)
    }

    #[test]
    fn three_valued_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn certain_excludes_nulls_possible_includes() {
        let (db, dose) = db();
        let pred = Compare {
            attr: dose,
            op: CompareOp::Gt,
            value: Value::Float(4.0),
        };
        assert_eq!(db.certain(&pred).len(), 1);
        assert_eq!(db.possible(&pred).len(), 2); // the null row might be > 4
    }

    #[test]
    fn absent_attribute_is_null() {
        let mut syms = SymbolTable::new();
        let dose = syms.intern("dose");
        let other = syms.intern("other");
        let mut db = IncompleteDb::new();
        db.add(Record::from_pairs([(other, Value::Int(1))]));
        let pred = Compare {
            attr: dose,
            op: CompareOp::Eq,
            value: Value::Int(1),
        };
        assert!(db.certain(&pred).is_empty());
        assert_eq!(db.possible(&pred).len(), 1);
    }

    #[test]
    fn cwa_vs_owa_existence() {
        let (db, dose) = db();
        let hit = Compare {
            attr: dose,
            op: CompareOp::Eq,
            value: Value::Float(5.1),
        };
        let miss = Compare {
            attr: dose,
            op: CompareOp::Eq,
            value: Value::Float(9.9),
        };
        assert!(db.certain_exists_cwa(&hit));
        assert!(!db.certain_exists_cwa(&miss));
        assert_eq!(db.certain_exists_owa(&hit), Some(true));
        // Under OWA a miss is unknown, not false: more data may exist.
        assert_eq!(db.certain_exists_owa(&miss), None);
    }

    #[test]
    fn incompleteness_fraction() {
        let (db, _) = db();
        assert!((db.incompleteness() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(IncompleteDb::new().incompleteness(), 0.0);
    }

    #[test]
    fn comparison_operators() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("a");
        let r = Record::from_pairs([(a, Value::Int(5))]);
        let test = |op, v: i64| {
            Compare {
                attr: a,
                op,
                value: Value::Int(v),
            }
            .eval(&r)
        };
        assert_eq!(test(CompareOp::Eq, 5), Truth::True);
        assert_eq!(test(CompareOp::Ne, 5), Truth::False);
        assert_eq!(test(CompareOp::Lt, 6), Truth::True);
        assert_eq!(test(CompareOp::Le, 5), Truth::True);
        assert_eq!(test(CompareOp::Gt, 5), Truth::False);
        assert_eq!(test(CompareOp::Ge, 6), Truth::False);
    }
}
