//! FS.3 — a single tractable formalism aggregating isolated uncertainty
//! forms.
//!
//! "Is it possible to define a new unifying approach, but perhaps less
//! expressive, to aggregate these isolated forms of uncertainty in a
//! single tractable formalism?" (FS.3). The paper distinguishes *hard*
//! sources ("a clear mathematical model of uncertainty, e.g., sensor
//! data") from *soft* sources ("vague statements of truth (often fuzzy)").
//!
//! [`Evidence`] is that unifying value: a pair `(support, plausibility)`
//! with `0 ≤ support ≤ plausibility ≤ 1` — a Dempster–Shafer-style
//! interval chosen deliberately because each isolated formalism embeds
//! into it *losslessly for decision-making*:
//!
//! * probability `p` ↦ `(p, p)` (the Bayesian special case);
//! * fuzzy degree `μ` ↦ `(μ, μ)` after an explicit reinterpretation, or
//!   `(0, μ)` under a "possibilistic" reading — both provided;
//! * a missing value (labelled null) ↦ `(0, 1)` (total ignorance);
//! * a certain fact ↦ `(1, 1)`; certain absence ↦ `(0, 0)`.
//!
//! Combination is interval arithmetic under the product t-norm
//! (conjunction), its dual (disjunction), and a source-fusion average
//! weighted by source richness (FS.2 feeds FS.3, as the paper's feedback
//! loop in FS.9 requires). All operations are O(1) — "tractable" in the
//! strongest sense — at the cost of expressiveness (no joint
//! distributions), matching the statement's "perhaps less expressive".

use scdb_types::Confidence;

/// A unified uncertainty value: `[support, plausibility]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evidence {
    support: f64,
    plausibility: f64,
}

impl Evidence {
    /// Certain truth.
    pub const TRUE: Evidence = Evidence {
        support: 1.0,
        plausibility: 1.0,
    };
    /// Certain falsity.
    pub const FALSE: Evidence = Evidence {
        support: 0.0,
        plausibility: 0.0,
    };
    /// Total ignorance (a labelled null).
    pub const UNKNOWN: Evidence = Evidence {
        support: 0.0,
        plausibility: 1.0,
    };

    /// Construct, clamping and ordering the bounds.
    pub fn new(support: f64, plausibility: f64) -> Self {
        let s = if support.is_nan() {
            0.0
        } else {
            support.clamp(0.0, 1.0)
        };
        let p = if plausibility.is_nan() {
            1.0
        } else {
            plausibility.clamp(0.0, 1.0)
        };
        Evidence {
            support: s.min(p),
            plausibility: s.max(p),
        }
    }

    /// Embed a probability (hard source): a point interval.
    pub fn from_probability(p: f64) -> Self {
        Evidence::new(p, p)
    }

    /// Embed a fuzzy degree read as graded truth (soft source, truth-
    /// functional reading).
    pub fn from_fuzzy(mu: f64) -> Self {
        Evidence::new(mu, mu)
    }

    /// Embed a fuzzy degree read possibilistically: the statement is
    /// *possible* to degree μ but has no committed support.
    pub fn from_possibility(mu: f64) -> Self {
        Evidence::new(0.0, mu)
    }

    /// Embed a [`Confidence`] from the provenance layer.
    pub fn from_confidence(c: Confidence) -> Self {
        Evidence::from_probability(c.value())
    }

    /// Lower bound: committed support.
    pub fn support(&self) -> f64 {
        self.support
    }

    /// Upper bound: plausibility.
    pub fn plausibility(&self) -> f64 {
        self.plausibility
    }

    /// Width of the interval — the residual ignorance.
    pub fn ignorance(&self) -> f64 {
        self.plausibility - self.support
    }

    /// Conjunction (independent evidence, product t-norm on both bounds).
    pub fn and(self, other: Evidence) -> Evidence {
        Evidence::new(
            self.support * other.support,
            self.plausibility * other.plausibility,
        )
    }

    /// Disjunction (dual of the product t-norm on both bounds).
    pub fn or(self, other: Evidence) -> Evidence {
        let s = self.support + other.support - self.support * other.support;
        let p = self.plausibility + other.plausibility - self.plausibility * other.plausibility;
        Evidence::new(s, p)
    }

    /// Negation: `¬[s, p] = [1−p, 1−s]`.
    #[allow(clippy::should_implement_trait)] // the logic-literature name
    pub fn not(self) -> Evidence {
        Evidence::new(1.0 - self.plausibility, 1.0 - self.support)
    }

    /// Fuse evidence about the same proposition from independent sources,
    /// weighted (e.g. by FS.2 richness). Weighted mean of both bounds —
    /// commutative, idempotent on identical inputs, and ignorance-
    /// reducing when sources agree.
    pub fn fuse(items: &[(Evidence, f64)]) -> Evidence {
        let total: f64 = items.iter().map(|(_, w)| w.max(0.0)).sum();
        if total <= 0.0 {
            return Evidence::UNKNOWN;
        }
        let s = items
            .iter()
            .map(|(e, w)| e.support * w.max(0.0))
            .sum::<f64>()
            / total;
        let p = items
            .iter()
            .map(|(e, w)| e.plausibility * w.max(0.0))
            .sum::<f64>()
            / total;
        Evidence::new(s, p)
    }

    /// Decision rule: accept when support clears `tau`, reject when
    /// plausibility falls below it, abstain otherwise (the three-valued
    /// projection).
    pub fn decide(&self, tau: f64) -> Option<bool> {
        if self.support >= tau {
            Some(true)
        } else if self.plausibility < tau {
            Some(false)
        } else {
            None
        }
    }
}

/// A value annotated with unified evidence — what the holistic data model
/// stores when "each data item \[may\] be noisy, fuzzy, uncertain, or
/// incomplete" (§5, extended null-treatment rule).
#[derive(Debug, Clone, PartialEq)]
pub struct UnifiedValue<T> {
    /// The carried value.
    pub value: T,
    /// Evidence that the value is correct.
    pub evidence: Evidence,
}

impl<T> UnifiedValue<T> {
    /// A certain value.
    pub fn certain(value: T) -> Self {
        UnifiedValue {
            value,
            evidence: Evidence::TRUE,
        }
    }

    /// A value with probabilistic evidence.
    pub fn probabilistic(value: T, p: f64) -> Self {
        UnifiedValue {
            value,
            evidence: Evidence::from_probability(p),
        }
    }

    /// A value with fuzzy evidence.
    pub fn fuzzy(value: T, mu: f64) -> Self {
        UnifiedValue {
            value,
            evidence: Evidence::from_fuzzy(mu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings() {
        let p = Evidence::from_probability(0.7);
        assert_eq!(p.support(), 0.7);
        assert_eq!(p.plausibility(), 0.7);
        assert_eq!(p.ignorance(), 0.0);
        let f = Evidence::from_possibility(0.4);
        assert_eq!(f.support(), 0.0);
        assert_eq!(f.plausibility(), 0.4);
        assert_eq!(Evidence::UNKNOWN.ignorance(), 1.0);
        assert_eq!(Evidence::TRUE.decide(0.9), Some(true));
        assert_eq!(Evidence::FALSE.decide(0.1), Some(false));
    }

    #[test]
    fn construction_normalizes() {
        let e = Evidence::new(0.9, 0.2); // reversed bounds
        assert_eq!(e.support(), 0.2);
        assert_eq!(e.plausibility(), 0.9);
        let e = Evidence::new(f64::NAN, f64::NAN);
        assert_eq!((e.support(), e.plausibility()), (0.0, 1.0));
        let e = Evidence::new(-1.0, 2.0);
        assert_eq!((e.support(), e.plausibility()), (0.0, 1.0));
    }

    #[test]
    fn negation_swaps_bounds() {
        let e = Evidence::new(0.3, 0.8);
        let n = e.not();
        assert!((n.support() - 0.2).abs() < 1e-9);
        assert!((n.plausibility() - 0.7).abs() < 1e-9);
        // Double negation.
        let nn = n.not();
        assert!((nn.support() - e.support()).abs() < 1e-9);
    }

    #[test]
    fn conjunction_with_unknown_keeps_ignorance() {
        let p = Evidence::from_probability(0.9);
        let c = p.and(Evidence::UNKNOWN);
        assert_eq!(c.support(), 0.0);
        assert!((c.plausibility() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn probability_special_case_matches_bayes() {
        // On point intervals the algebra reduces to independent
        // probability combination.
        let a = Evidence::from_probability(0.5);
        let b = Evidence::from_probability(0.4);
        let and = a.and(b);
        assert!((and.support() - 0.2).abs() < 1e-9);
        assert_eq!(and.ignorance(), 0.0);
        let or = a.or(b);
        assert!((or.support() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn fusion_weights_by_richness() {
        let rich = (Evidence::from_probability(0.9), 3.0);
        let poor = (Evidence::from_probability(0.1), 1.0);
        let fused = Evidence::fuse(&[rich, poor]);
        assert!(fused.support() > 0.6, "rich source dominates: {fused:?}");
        // Degenerate weights.
        assert_eq!(Evidence::fuse(&[]), Evidence::UNKNOWN);
        assert_eq!(Evidence::fuse(&[(Evidence::TRUE, 0.0)]), Evidence::UNKNOWN);
    }

    #[test]
    fn fusion_of_agreement_reduces_ignorance() {
        let vague = Evidence::new(0.4, 0.9);
        let sharp = Evidence::from_probability(0.7);
        let fused = Evidence::fuse(&[(vague, 1.0), (sharp, 1.0)]);
        assert!(fused.ignorance() < vague.ignorance());
    }

    #[test]
    fn decide_abstains_inside_interval() {
        let e = Evidence::new(0.3, 0.8);
        assert_eq!(e.decide(0.5), None);
        assert_eq!(e.decide(0.2), Some(true));
        assert_eq!(e.decide(0.9), Some(false));
    }

    #[test]
    fn unified_value_constructors() {
        let v = UnifiedValue::certain(5);
        assert_eq!(v.evidence, Evidence::TRUE);
        let v = UnifiedValue::probabilistic("x", 0.5);
        assert_eq!(v.evidence.support(), 0.5);
        let v = UnifiedValue::fuzzy(1.5f64, 0.8);
        assert_eq!(v.evidence.plausibility(), 0.8);
    }
}
