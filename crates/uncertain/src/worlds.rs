//! The possible-worlds probability space.
//!
//! "Given an instance of data with uncertainty, we have a discrete
//! probability space P = (W, P), where W is a set of all the possible
//! worlds … and P is a probability model that assigns probability P(Iᵢ) to
//! each possible world Iᵢ such that 0 ≤ P(I) ≤ 1 and Σ P(Iᵢ) = 1. The
//! probability of any tuple t is the total probability of all worlds in
//! which t exists." (§4.2)

use std::collections::HashMap;

use scdb_types::{Record, Value};

use crate::ctable::{CTable, Variable};

/// A world with its probability.
#[derive(Debug, Clone)]
pub struct WorldProb {
    /// Tuples present in this world.
    pub tuples: Vec<Record>,
    /// World probability.
    pub prob: f64,
}

/// A fully enumerated probability space over the worlds of a c-table.
#[derive(Debug, Clone)]
pub struct PossibleWorlds {
    worlds: Vec<WorldProb>,
}

impl PossibleWorlds {
    /// Enumerate the worlds of `table` under independent per-variable
    /// distributions. Variables missing from `dist` get a uniform
    /// distribution over their domain. Each distribution is normalized.
    ///
    /// Worlds are capped at `max_worlds`; `None` is returned when the
    /// space is larger (callers fall back to the condition-level
    /// [`CTable::certain_core`]).
    pub fn enumerate(
        table: &CTable,
        dist: &HashMap<Variable, HashMap<Value, f64>>,
        max_worlds: u64,
    ) -> Option<Self> {
        if table.world_count() > max_worlds {
            return None;
        }
        let valuations = table.valuations();
        let mut worlds = Vec::with_capacity(valuations.len());
        for valuation in &valuations {
            let mut prob = 1.0f64;
            for (var, value) in valuation {
                let domain_size = table
                    .variables()
                    .find(|(v, _)| v == var)
                    .map(|(_, d)| d.len())
                    .unwrap_or(1)
                    .max(1);
                let p = match dist.get(var) {
                    Some(d) => {
                        let total: f64 = d.values().sum();
                        if total <= 0.0 {
                            1.0 / domain_size as f64
                        } else {
                            d.get(value).copied().unwrap_or(0.0) / total
                        }
                    }
                    None => 1.0 / domain_size as f64,
                };
                prob *= p;
            }
            worlds.push(WorldProb {
                tuples: table.world_of(valuation).into_iter().cloned().collect(),
                prob,
            });
        }
        // Normalize (guards against zero-probability assignments summing
        // below 1).
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        if total > 0.0 {
            for w in &mut worlds {
                w.prob /= total;
            }
        }
        Some(PossibleWorlds { worlds })
    }

    /// The worlds.
    pub fn worlds(&self) -> &[WorldProb] {
        &self.worlds
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when empty (degenerate).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Marginal probability of a tuple: `Σ {P(I) | t ∈ I}`.
    pub fn tuple_probability(&self, tuple: &Record) -> f64 {
        self.worlds
            .iter()
            .filter(|w| w.tuples.iter().any(|t| t == tuple))
            .map(|w| w.prob)
            .sum()
    }

    /// Certain answer for a boolean query: true iff `q` holds in *every*
    /// world (the classical intersection semantics).
    pub fn certain<Q: Fn(&[Record]) -> bool>(&self, q: Q) -> bool {
        self.worlds.iter().all(|w| q(&w.tuples))
    }

    /// Possible answer: true iff `q` holds in *some* world.
    pub fn possible<Q: Fn(&[Record]) -> bool>(&self, q: Q) -> bool {
        self.worlds.iter().any(|w| q(&w.tuples))
    }

    /// Probability that the boolean query holds.
    pub fn probability<Q: Fn(&[Record]) -> bool>(&self, q: Q) -> f64 {
        self.worlds
            .iter()
            .filter(|w| q(&w.tuples))
            .map(|w| w.prob)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::Condition;
    use scdb_types::SymbolTable;

    fn rec(syms: &mut SymbolTable, name: &str) -> Record {
        let a = syms.intern("name");
        Record::from_pairs([(a, Value::str(name))])
    }

    /// One variable x ∈ {0,1}: tuple A always, tuple B iff x=1.
    fn simple() -> (CTable, Record, Record) {
        let mut syms = SymbolTable::new();
        let mut t = CTable::new();
        let x = Variable(0);
        t.declare(x, vec![Value::Int(0), Value::Int(1)]);
        let a = rec(&mut syms, "A");
        let b = rec(&mut syms, "B");
        t.add(a.clone(), Condition::True);
        t.add(b.clone(), Condition::Eq(x, Value::Int(1)));
        (t, a, b)
    }

    #[test]
    fn uniform_marginals() {
        let (t, a, b) = simple();
        let pw = PossibleWorlds::enumerate(&t, &HashMap::new(), 1000).unwrap();
        assert_eq!(pw.len(), 2);
        assert!((pw.tuple_probability(&a) - 1.0).abs() < 1e-9);
        assert!((pw.tuple_probability(&b) - 0.5).abs() < 1e-9);
        let total: f64 = pw.worlds().iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_marginals() {
        let (t, _a, b) = simple();
        let mut dist = HashMap::new();
        let mut d = HashMap::new();
        d.insert(Value::Int(0), 0.2);
        d.insert(Value::Int(1), 0.8);
        dist.insert(Variable(0), d);
        let pw = PossibleWorlds::enumerate(&t, &dist, 1000).unwrap();
        assert!((pw.tuple_probability(&b) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn certain_vs_possible() {
        let (t, a, b) = simple();
        let pw = PossibleWorlds::enumerate(&t, &HashMap::new(), 1000).unwrap();
        let has = |needle: Record| move |ts: &[Record]| ts.contains(&needle);
        assert!(pw.certain(has(a.clone())));
        assert!(!pw.certain(has(b.clone())));
        assert!(pw.possible(has(b.clone())));
        assert!((pw.probability(has(b)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cap_respected() {
        let mut t = CTable::new();
        for i in 0..20 {
            t.declare(Variable(i), vec![Value::Int(0), Value::Int(1)]);
        }
        assert!(PossibleWorlds::enumerate(&t, &HashMap::new(), 1000).is_none());
    }

    #[test]
    fn unnormalized_distribution_normalized() {
        let (t, _a, b) = simple();
        let mut dist = HashMap::new();
        let mut d = HashMap::new();
        d.insert(Value::Int(0), 2.0);
        d.insert(Value::Int(1), 6.0);
        dist.insert(Variable(0), d);
        let pw = PossibleWorlds::enumerate(&t, &dist, 1000).unwrap();
        assert!((pw.tuple_probability(&b) - 0.75).abs() < 1e-9);
    }
}
