//! Uncertainty formalisms for the `scdb` self-curating database.
//!
//! §4.2 of the paper reviews the classical machinery — possible worlds,
//! c-tables, incompleteness semantics `⟦D⟧` under open- and closed-world
//! assumptions — and then asks for two new things:
//!
//! * **FS.3** — "a new unifying approach … to aggregate these isolated
//!   forms of uncertainty in a single tractable formalism": see
//!   [`unified`], which folds probabilistic evidence, fuzzy membership,
//!   and null-incompleteness into one algebra;
//! * **FS.10** — "parallel world semantics … for computing justified
//!   answers" over independent *actual* worlds whose facts are only
//!   locally consistent: see [`parallel`], which implements the Warfarin
//!   dosage scenario end-to-end (naive certain answer = *false*, justified
//!   answer = *true*).
//!
//! The classical substrates are implemented faithfully first:
//!
//! * [`ctable`] — conditional tables `(tᵢ, cᵢ)` with boolean conditions
//!   over variables, valuations `v(c)`, and world extraction;
//! * [`worlds`] — the discrete probability space `P = (W, P)` with
//!   `Σ P(Iᵢ) = 1`, tuple marginals, and certain answers;
//! * [`incomplete`] — labelled nulls, Codd three-valued logic, and
//!   `certain(Q, D) = ⋂ {Q(Dᵢ) | Dᵢ ∈ ⟦D⟧}`;
//! * [`fuzzy`] — membership functions and t-norms for the "very narrow
//!   therapeutic range" closeness predicate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ctable;
pub mod fuzzy;
pub mod incomplete;
pub mod parallel;
pub mod unified;
pub mod worlds;

pub use ctable::{CTable, Condition, Variable};
pub use fuzzy::{t_conorm, t_norm, FuzzyPredicate, TNorm};
pub use incomplete::{IncompleteDb, Truth};
pub use parallel::{JustifiedAnswer, ParallelWorld, ParallelWorldSet};
pub use unified::{Evidence, UnifiedValue};
pub use worlds::{PossibleWorlds, WorldProb};
