//! Physical framing for the on-disk WAL: `[len: u32][crc32: u32][payload]`.
//!
//! Every logical [`crate::LogRecord`] (and every snapshot record in the
//! core crate) is wrapped in one frame before it touches a storage medium.
//! The length field bounds the read; the CRC32 (IEEE polynomial, the same
//! checksum used by zip/png and most WAL implementations) detects both
//! torn tails *and* silent bit rot. Decoding walks frames front to back
//! and stops at the first frame that is short or fails its checksum —
//! everything before that point is bit-exact, everything after is
//! reported as a truncated suffix so recovery can log it instead of
//! silently dropping bytes.

use bytes::{BufMut, Bytes, BytesMut};

/// Frame header size: 4-byte length + 4-byte CRC32.
pub const FRAME_HEADER: usize = 8;

/// Frames larger than this are treated as corruption, not data. A single
/// log record is a handful of attribute values; a multi-megabyte length
/// field can only come from reading garbage as a header.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one framed payload to `out`.
pub fn write_frame(out: &mut BytesMut, payload: &[u8]) {
    out.put_u32(payload.len() as u32);
    out.put_u32(crc32(payload));
    out.put_slice(payload);
}

/// Encode a single framed payload as a standalone byte vector.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_frame(&mut buf, payload);
    buf.freeze().as_slice().to_vec()
}

/// What the tail of a frame stream looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailReport {
    /// Bytes consumed by frames that decoded cleanly.
    pub clean_bytes: usize,
    /// Bytes past the last clean frame (torn or corrupt suffix).
    pub truncated_bytes: usize,
    /// Number of clean frames.
    pub frames: usize,
    /// True when the suffix failed a CRC check (bit rot) rather than
    /// merely being short (torn write).
    pub corrupt: bool,
}

/// Decode a stream of frames, stopping at the first torn or corrupt one.
/// Returns the clean payloads plus a [`TailReport`] describing the cut.
pub fn read_frames(data: &[u8]) -> (Vec<Bytes>, TailReport) {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    let mut corrupt = false;
    while data.len() - at >= FRAME_HEADER {
        let len = u32::from_be_bytes(data[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(data[at + 4..at + 8].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_PAYLOAD {
            corrupt = true;
            break;
        }
        if data.len() - at - FRAME_HEADER < len {
            // Torn: the payload never fully reached the medium.
            break;
        }
        let payload = &data[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(payload) != crc {
            corrupt = true;
            break;
        }
        payloads.push(Bytes::from(payload));
        at += FRAME_HEADER + len;
    }
    let report = TailReport {
        clean_bytes: at,
        truncated_bytes: data.len() - at,
        frames: payloads.len(),
        corrupt,
    };
    (payloads, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"b");
        write_frame(&mut buf, &[0u8; 300]);
        let (frames, tail) = read_frames(buf.freeze().as_slice());
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].as_slice(), b"alpha");
        assert_eq!(frames[1].as_slice(), b"b");
        assert_eq!(frames[2].len(), 300);
        assert_eq!(tail.truncated_bytes, 0);
        assert!(!tail.corrupt);
    }

    #[test]
    fn torn_tail_cuts_at_frame_boundary() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"kept");
        write_frame(&mut buf, b"lost in the crash");
        let bytes = buf.freeze();
        // Cut three bytes into the second frame's payload.
        let cut = bytes.len() - 10;
        let (frames, tail) = read_frames(&bytes.as_slice()[..cut]);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].as_slice(), b"kept");
        assert!(tail.truncated_bytes > 0);
        assert!(!tail.corrupt, "short tail is torn, not corrupt");
    }

    #[test]
    fn bit_flip_detected_as_corrupt() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"kept");
        write_frame(&mut buf, b"flipped");
        let mut raw = buf.freeze().as_slice().to_vec();
        let n = raw.len();
        raw[n - 3] ^= 0x40; // payload byte of the second frame
        let (frames, tail) = read_frames(&raw);
        assert_eq!(frames.len(), 1);
        assert!(tail.corrupt);
        assert!(tail.truncated_bytes > 0);
    }

    #[test]
    fn garbage_header_is_corrupt() {
        let raw = vec![0xFFu8; 64];
        let (frames, tail) = read_frames(&raw);
        assert!(frames.is_empty());
        assert!(tail.corrupt, "absurd length field treated as corruption");
        assert_eq!(tail.truncated_bytes, 64);
    }

    #[test]
    fn empty_and_header_only_inputs() {
        let (frames, tail) = read_frames(&[]);
        assert!(frames.is_empty());
        assert_eq!(tail.clean_bytes, 0);
        // Fewer bytes than a header: torn.
        let (frames, tail) = read_frames(&[1, 2, 3]);
        assert!(frames.is_empty());
        assert_eq!(tail.truncated_bytes, 3);
        assert!(!tail.corrupt);
    }
}
