//! Write-ahead logging and recovery.
//!
//! A minimal but complete redo log: every transactional write is appended
//! before commit; a commit record seals the transaction; recovery replays
//! only sealed transactions (uncommitted tails are discarded, torn/corrupt
//! suffixes are cut at the last valid record). The log serializes to bytes
//! so durability can be layered on any medium; here it lives in memory
//! (tests exercise the full encode → crash → decode → replay path).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use scdb_types::Value;

use crate::error::TxnError;
use crate::mvcc::{TxnManager, VersionOrigin};

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A write of `key` by `txn` (None = delete).
    Write {
        /// Writing transaction.
        txn: u64,
        /// Key written.
        key: u64,
        /// New value (`None` is a tombstone).
        value: Option<Value>,
    },
    /// Transaction `txn` committed.
    Commit {
        /// Committing transaction.
        txn: u64,
    },
    /// Transaction `txn` aborted.
    Abort {
        /// Aborting transaction.
        txn: u64,
    },
    /// A checkpoint: all records before this offset are reflected in the
    /// checkpointed state.
    Checkpoint,
}

const TAG_WRITE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

fn put_value(buf: &mut BytesMut, v: &Option<Value>) {
    match v {
        None => buf.put_u8(0),
        Some(Value::Null) => buf.put_u8(1),
        Some(Value::Bool(b)) => {
            buf.put_u8(2);
            buf.put_u8(u8::from(*b));
        }
        Some(Value::Int(i)) => {
            buf.put_u8(3);
            buf.put_i64(*i);
        }
        Some(Value::Float(f)) => {
            buf.put_u8(4);
            buf.put_f64(*f);
        }
        Some(Value::Str(s)) => {
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Some(Value::Timestamp(t)) => {
            buf.put_u8(6);
            buf.put_i64(*t);
        }
        Some(other) => {
            // Bytes/Doc serialize via their textual rendering — the WAL is
            // for the scalar fast path; the core crate stores documents in
            // the instance layer, not through the WAL.
            let s = other.render();
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

fn get_value(buf: &mut Bytes, at: usize) -> Result<Option<Value>, TxnError> {
    let corrupt = TxnError::CorruptLog { offset: at };
    if buf.remaining() < 1 {
        return Err(corrupt);
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(Value::Null)),
        2 => {
            if buf.remaining() < 1 {
                return Err(corrupt);
            }
            Ok(Some(Value::Bool(buf.get_u8() != 0)))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Int(buf.get_i64())))
        }
        4 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Float(buf.get_f64())))
        }
        5 => {
            if buf.remaining() < 4 {
                return Err(corrupt);
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(corrupt);
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes).map_err(|_| corrupt.clone())?;
            Ok(Some(Value::str(s)))
        }
        6 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Timestamp(buf.get_i64())))
        }
        _ => Err(corrupt),
    }
}

/// An append-only in-memory write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn append(&mut self, record: LogRecord) {
        scdb_obs::metrics().inc("txn.wal_records");
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Truncate everything before the last checkpoint (log compaction).
    pub fn compact(&mut self) -> usize {
        if let Some(pos) = self
            .records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint))
        {
            let dropped = pos + 1;
            self.records.drain(..dropped);
            dropped
        } else {
            0
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        for r in &self.records {
            match r {
                LogRecord::Write { txn, key, value } => {
                    buf.put_u8(TAG_WRITE);
                    buf.put_u64(*txn);
                    buf.put_u64(*key);
                    put_value(&mut buf, value);
                }
                LogRecord::Commit { txn } => {
                    buf.put_u8(TAG_COMMIT);
                    buf.put_u64(*txn);
                }
                LogRecord::Abort { txn } => {
                    buf.put_u8(TAG_ABORT);
                    buf.put_u64(*txn);
                }
                LogRecord::Checkpoint => buf.put_u8(TAG_CHECKPOINT),
            }
        }
        scdb_obs::metrics().add("txn.wal_bytes", buf.len() as u64);
        buf.freeze()
    }

    /// Decode from bytes, stopping cleanly at a torn suffix: records up to
    /// the first malformed byte are kept, the rest is discarded (standard
    /// crash-recovery semantics for a torn tail).
    pub fn decode(mut data: Bytes) -> Wal {
        let total = data.len();
        let mut records = Vec::new();
        while data.has_remaining() {
            let at = total - data.remaining();
            let tag = data.get_u8();
            let parsed: Result<LogRecord, TxnError> = (|| {
                let corrupt = TxnError::CorruptLog { offset: at };
                match tag {
                    TAG_WRITE => {
                        if data.remaining() < 16 {
                            return Err(corrupt);
                        }
                        let txn = data.get_u64();
                        let key = data.get_u64();
                        let value = get_value(&mut data, at)?;
                        Ok(LogRecord::Write { txn, key, value })
                    }
                    TAG_COMMIT => {
                        if data.remaining() < 8 {
                            return Err(corrupt);
                        }
                        Ok(LogRecord::Commit {
                            txn: data.get_u64(),
                        })
                    }
                    TAG_ABORT => {
                        if data.remaining() < 8 {
                            return Err(corrupt);
                        }
                        Ok(LogRecord::Abort {
                            txn: data.get_u64(),
                        })
                    }
                    TAG_CHECKPOINT => Ok(LogRecord::Checkpoint),
                    _ => Err(corrupt),
                }
            })();
            match parsed {
                Ok(r) => records.push(r),
                Err(_) => break, // torn tail
            }
        }
        Wal { records }
    }
}

/// Outcome of recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed.
    pub transactions_replayed: usize,
    /// Writes installed.
    pub writes_installed: usize,
    /// Transactions discarded (no commit record).
    pub transactions_discarded: usize,
}

/// Redo recovery: replay committed transactions' writes, in log order,
/// into a fresh [`TxnManager`].
pub fn recover(wal: &Wal) -> (TxnManager, RecoveryReport) {
    use std::collections::{HashMap, HashSet};
    let mut committed: HashSet<u64> = HashSet::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for r in wal.records() {
        if let LogRecord::Commit { txn } = r {
            committed.insert(*txn);
        }
        match r {
            LogRecord::Write { txn, .. } | LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                seen.insert(*txn);
            }
            LogRecord::Checkpoint => {}
        }
    }
    let tm = TxnManager::new();
    let mut writes_installed = 0;
    // Group writes per transaction preserving order, then install per
    // commit order (log order approximates it).
    let mut buffered: HashMap<u64, Vec<(u64, Option<Value>)>> = HashMap::new();
    for r in wal.records() {
        match r {
            LogRecord::Write { txn, key, value } => {
                buffered
                    .entry(*txn)
                    .or_default()
                    .push((*key, value.clone()));
            }
            LogRecord::Commit { txn } => {
                if let Some(ws) = buffered.remove(txn) {
                    for (key, value) in ws {
                        tm.install_raw(key, value, VersionOrigin::Explicit);
                        writes_installed += 1;
                    }
                }
            }
            _ => {}
        }
    }
    let report = RecoveryReport {
        transactions_replayed: committed.len(),
        writes_installed,
        transactions_discarded: seen.len().saturating_sub(committed.len()),
    };
    (tm, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Wal {
        let mut wal = Wal::new();
        wal.append(LogRecord::Write {
            txn: 1,
            key: 10,
            value: Some(Value::Int(1)),
        });
        wal.append(LogRecord::Write {
            txn: 2,
            key: 20,
            value: Some(Value::str("uncommitted")),
        });
        wal.append(LogRecord::Commit { txn: 1 });
        wal.append(LogRecord::Write {
            txn: 3,
            key: 30,
            value: None,
        });
        wal.append(LogRecord::Abort { txn: 3 });
        wal
    }

    #[test]
    fn encode_decode_roundtrip() {
        let wal = sample();
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let mut wal = Wal::new();
        for v in [
            None,
            Some(Value::Null),
            Some(Value::Bool(true)),
            Some(Value::Int(-5)),
            Some(Value::Float(2.5)),
            Some(Value::str("héllo")),
            Some(Value::Timestamp(99)),
        ] {
            wal.append(LogRecord::Write {
                txn: 1,
                key: 0,
                value: v,
            });
        }
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn torn_tail_truncated() {
        let wal = sample();
        let bytes = wal.encode();
        // Cut mid-record.
        let torn = bytes.slice(0..bytes.len() - 3);
        let decoded = Wal::decode(torn);
        assert!(decoded.len() < wal.len());
        assert!(decoded.len() >= 3, "prefix preserved");
    }

    #[test]
    fn recovery_replays_only_committed() {
        let wal = sample();
        let (tm, report) = recover(&wal);
        assert_eq!(report.transactions_replayed, 1);
        assert_eq!(report.writes_installed, 1);
        assert_eq!(report.transactions_discarded, 2);
        assert_eq!(tm.read_latest(10), Some(Value::Int(1)));
        assert_eq!(tm.read_latest(20), None, "uncommitted write dropped");
        assert_eq!(tm.read_latest(30), None, "aborted write dropped");
    }

    #[test]
    fn crash_recover_end_to_end() {
        // Run real transactions, logging as we go.
        let tm = TxnManager::new();
        let mut wal = Wal::new();
        let mut t = tm.begin();
        t.write(1, Value::Int(100)).unwrap();
        wal.append(LogRecord::Write {
            txn: t.id(),
            key: 1,
            value: Some(Value::Int(100)),
        });
        tm.commit(&mut t).unwrap();
        wal.append(LogRecord::Commit { txn: t.id() });

        let mut t2 = tm.begin();
        t2.write(2, Value::Int(200)).unwrap();
        wal.append(LogRecord::Write {
            txn: t2.id(),
            key: 2,
            value: Some(Value::Int(200)),
        });
        // Crash before commit record.
        let bytes = wal.encode();
        let (recovered, report) = recover(&Wal::decode(bytes));
        assert_eq!(recovered.read_latest(1), Some(Value::Int(100)));
        assert_eq!(recovered.read_latest(2), None);
        assert_eq!(report.transactions_discarded, 1);
    }

    #[test]
    fn compaction_drops_through_checkpoint() {
        let mut wal = sample();
        wal.append(LogRecord::Checkpoint);
        wal.append(LogRecord::Commit { txn: 9 });
        let dropped = wal.compact();
        assert_eq!(dropped, 6);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.compact(), 0, "no checkpoint left");
    }

    #[test]
    fn garbage_bytes_yield_empty_log() {
        let decoded = Wal::decode(Bytes::from_static(&[0xFF, 0x00, 0x01]));
        assert!(decoded.is_empty());
    }
}
