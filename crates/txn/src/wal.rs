//! Write-ahead logging and recovery.
//!
//! A minimal but complete redo log: every transactional write is appended
//! before commit; a commit record seals the transaction; recovery replays
//! only sealed transactions (uncommitted tails are discarded, torn/corrupt
//! suffixes are cut at the last valid record and the truncated byte count
//! is reported, not swallowed). The log serializes to bytes so durability
//! can be layered on any medium; [`crate::durable::DurableWal`] layers the
//! segmented on-disk format (per-record CRC32 framing) on top of the
//! per-record codec exposed here.
//!
//! Besides the classical kv records (`Write`/`Commit`/`Abort`), the log
//! carries the curation pipeline's own mutations: `SourceReg` (source
//! registration), `IngestRow` (one raw record entering the instance
//! layer), `DiscoverLinks` (an instance-level link discovery sweep) and
//! `Enrich` (an auto-committed curation write). The core crate replays
//! these through the same ingest pipeline on [`Db::open`]; this crate's
//! [`recover`] only interprets the kv subset.
//!
//! [`Db::open`]: https://docs.rs/scdb-core

use bytes::{Buf, BufMut, Bytes, BytesMut};
use scdb_types::Value;

use crate::error::TxnError;
use crate::mvcc::{TxnManager, VersionOrigin};

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A write of `key` by `txn` (None = delete).
    Write {
        /// Writing transaction.
        txn: u64,
        /// Key written.
        key: u64,
        /// New value (`None` is a tombstone).
        value: Option<Value>,
    },
    /// Transaction `txn` committed.
    Commit {
        /// Committing transaction.
        txn: u64,
    },
    /// Transaction `txn` aborted.
    Abort {
        /// Aborting transaction.
        txn: u64,
    },
    /// A group-commit seal: every transaction in `txns` committed
    /// atomically with this record. Used by the core crate's batching
    /// ingest committer so one fsync seals many rows; recovery treats it
    /// as a `Commit` for each listed transaction, in list order. A torn
    /// or missing group seal discards *all* of the batch's rows — the
    /// log never exposes a partial batch.
    ///
    /// A *cross-shard* batch carries a non-empty `shards` vector: one
    /// `(shard, first_txn)` entry per participating write shard, in
    /// ascending shard order. The identical vector is sealed into every
    /// participant's log, and recovery commits the group only when every
    /// participant's log contains its matching seal — a torn seal on any
    /// shard discards the whole batch on all of them. Single-shard
    /// batches leave `shards` empty, which encodes byte-identically to
    /// the historical tag-9 framing.
    CommitGroup {
        /// Sealed transactions, in log (= apply) order.
        txns: Vec<u64>,
        /// Cross-shard participant vector: `(shard, first_txn)` per
        /// participating shard, ascending; empty for single-shard seals.
        shards: Vec<(u32, u64)>,
    },
    /// A checkpoint: all records before this offset are reflected in the
    /// checkpointed state.
    Checkpoint,
    /// A source registration in the instance layer.
    SourceReg {
        /// Source name.
        name: String,
        /// Configured identity attribute, if any.
        identity_attr: Option<String>,
    },
    /// One raw record entering the instance layer via `Db::ingest`.
    IngestRow {
        /// The ingest transaction this row belongs to.
        txn: u64,
        /// Source name the row was ingested into.
        source: String,
        /// Attribute name/value pairs in record order.
        attrs: Vec<(String, Value)>,
        /// Free-text payload indexed alongside the row, if any.
        text: Option<String>,
    },
    /// An instance-level link discovery sweep (mutates the graph).
    DiscoverLinks {
        /// The ingest transaction sealing this sweep.
        txn: u64,
    },
    /// An auto-committed curation write to the kv/enrichment store.
    Enrich {
        /// Key written.
        key: u64,
        /// New value (`None` retracts).
        value: Option<Value>,
    },
    /// A secondary-index creation. Auto-sealed like `SourceReg`: the
    /// definition takes effect at this log position and the index
    /// contents rebuild deterministically from the rows visible at that
    /// point (contents are never logged). Checkpoints also carry the
    /// definitions, since compaction drops pre-checkpoint records.
    IndexCreate {
        /// Index name (unique across the database).
        name: String,
        /// Source whose rows are indexed.
        source: String,
        /// Indexed attribute.
        attr: String,
        /// Index-kind wire tag (`scdb-storage`'s `IndexKind::tag`).
        kind: u8,
    },
    /// A secondary-index drop (auto-sealed).
    IndexDrop {
        /// Index name.
        name: String,
    },
}

const TAG_WRITE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_SOURCE_REG: u8 = 5;
const TAG_INGEST_ROW: u8 = 6;
const TAG_DISCOVER_LINKS: u8 = 7;
const TAG_ENRICH: u8 = 8;
const TAG_COMMIT_GROUP: u8 = 9;
const TAG_INDEX_CREATE: u8 = 10;
const TAG_INDEX_DROP: u8 = 11;

/// Serialize an optional [`Value`] in the WAL wire format (shared with
/// the core crate's snapshot files).
pub fn put_value(buf: &mut BytesMut, v: &Option<Value>) {
    match v {
        None => buf.put_u8(0),
        Some(Value::Null) => buf.put_u8(1),
        Some(Value::Bool(b)) => {
            buf.put_u8(2);
            buf.put_u8(u8::from(*b));
        }
        Some(Value::Int(i)) => {
            buf.put_u8(3);
            buf.put_i64(*i);
        }
        Some(Value::Float(f)) => {
            buf.put_u8(4);
            buf.put_f64(*f);
        }
        Some(Value::Str(s)) => {
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Some(Value::Timestamp(t)) => {
            buf.put_u8(6);
            buf.put_i64(*t);
        }
        Some(other) => {
            // Bytes/Doc serialize via their textual rendering — the WAL is
            // for the scalar fast path; the core crate stores documents in
            // the instance layer, not through the WAL.
            let s = other.render();
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

/// Decode an optional [`Value`] written by [`put_value`]. `at` is only
/// used to report the offset in the error.
pub fn get_value(buf: &mut Bytes, at: usize) -> Result<Option<Value>, TxnError> {
    let corrupt = TxnError::CorruptLog { offset: at };
    if buf.remaining() < 1 {
        return Err(corrupt);
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(Value::Null)),
        2 => {
            if buf.remaining() < 1 {
                return Err(corrupt);
            }
            Ok(Some(Value::Bool(buf.get_u8() != 0)))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Int(buf.get_i64())))
        }
        4 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Float(buf.get_f64())))
        }
        5 => {
            if buf.remaining() < 4 {
                return Err(corrupt);
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(corrupt);
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes).map_err(|_| corrupt.clone())?;
            Ok(Some(Value::str(s)))
        }
        6 => {
            if buf.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(Some(Value::Timestamp(buf.get_i64())))
        }
        _ => Err(corrupt),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, at: usize) -> Result<String, TxnError> {
    let corrupt = TxnError::CorruptLog { offset: at };
    if buf.remaining() < 4 {
        return Err(corrupt);
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt);
    }
    let bytes = buf.copy_to_bytes(len);
    std::str::from_utf8(&bytes)
        .map(str::to_owned)
        .map_err(|_| corrupt)
}

fn put_opt_str(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut Bytes, at: usize) -> Result<Option<String>, TxnError> {
    if buf.remaining() < 1 {
        return Err(TxnError::CorruptLog { offset: at });
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf, at)?)),
        _ => Err(TxnError::CorruptLog { offset: at }),
    }
}

/// Serialize one record into `buf` (no framing — the durable layer adds
/// length + CRC32 around each record).
pub fn encode_record(buf: &mut BytesMut, record: &LogRecord) {
    match record {
        LogRecord::Write { txn, key, value } => {
            buf.put_u8(TAG_WRITE);
            buf.put_u64(*txn);
            buf.put_u64(*key);
            put_value(buf, value);
        }
        LogRecord::Commit { txn } => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u64(*txn);
        }
        LogRecord::Abort { txn } => {
            buf.put_u8(TAG_ABORT);
            buf.put_u64(*txn);
        }
        LogRecord::CommitGroup { txns, shards } => {
            buf.put_u8(TAG_COMMIT_GROUP);
            buf.put_u32(txns.len() as u32);
            for txn in txns {
                buf.put_u64(*txn);
            }
            // Optional cross-shard suffix: absent (byte-identical to the
            // historical framing) for single-shard seals, otherwise a
            // count followed by (shard, first_txn) pairs.
            if !shards.is_empty() {
                buf.put_u32(shards.len() as u32);
                for (shard, first_txn) in shards {
                    buf.put_u32(*shard);
                    buf.put_u64(*first_txn);
                }
            }
        }
        LogRecord::Checkpoint => buf.put_u8(TAG_CHECKPOINT),
        LogRecord::SourceReg {
            name,
            identity_attr,
        } => {
            buf.put_u8(TAG_SOURCE_REG);
            put_str(buf, name);
            put_opt_str(buf, identity_attr);
        }
        LogRecord::IngestRow {
            txn,
            source,
            attrs,
            text,
        } => {
            buf.put_u8(TAG_INGEST_ROW);
            buf.put_u64(*txn);
            put_str(buf, source);
            buf.put_u32(attrs.len() as u32);
            for (name, value) in attrs {
                put_str(buf, name);
                put_value(buf, &Some(value.clone()));
            }
            put_opt_str(buf, text);
        }
        LogRecord::DiscoverLinks { txn } => {
            buf.put_u8(TAG_DISCOVER_LINKS);
            buf.put_u64(*txn);
        }
        LogRecord::Enrich { key, value } => {
            buf.put_u8(TAG_ENRICH);
            buf.put_u64(*key);
            put_value(buf, value);
        }
        LogRecord::IndexCreate {
            name,
            source,
            attr,
            kind,
        } => {
            buf.put_u8(TAG_INDEX_CREATE);
            put_str(buf, name);
            put_str(buf, source);
            put_str(buf, attr);
            buf.put_u8(*kind);
        }
        LogRecord::IndexDrop { name } => {
            buf.put_u8(TAG_INDEX_DROP);
            put_str(buf, name);
        }
    }
}

/// Decode one record from `data` (the cursor advances past it). `at` is
/// the logical offset used in corruption errors.
pub fn decode_record(data: &mut Bytes, at: usize) -> Result<LogRecord, TxnError> {
    let corrupt = TxnError::CorruptLog { offset: at };
    if data.remaining() < 1 {
        return Err(corrupt);
    }
    let tag = data.get_u8();
    match tag {
        TAG_WRITE => {
            if data.remaining() < 16 {
                return Err(corrupt);
            }
            let txn = data.get_u64();
            let key = data.get_u64();
            let value = get_value(data, at)?;
            Ok(LogRecord::Write { txn, key, value })
        }
        TAG_COMMIT => {
            if data.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(LogRecord::Commit {
                txn: data.get_u64(),
            })
        }
        TAG_ABORT => {
            if data.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(LogRecord::Abort {
                txn: data.get_u64(),
            })
        }
        TAG_COMMIT_GROUP => {
            if data.remaining() < 4 {
                return Err(corrupt);
            }
            let n = data.get_u32() as usize;
            if data.remaining() < n.checked_mul(8).ok_or_else(|| corrupt.clone())? {
                return Err(corrupt);
            }
            let mut txns = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                txns.push(data.get_u64());
            }
            // Cross-shard suffix, present only for multi-shard seals.
            let mut shards = Vec::new();
            if data.remaining() >= 4 {
                let m = data.get_u32() as usize;
                if data.remaining() < m.checked_mul(12).ok_or_else(|| corrupt.clone())? {
                    return Err(corrupt);
                }
                shards.reserve(m.min(4096));
                for _ in 0..m {
                    let shard = data.get_u32();
                    let first_txn = data.get_u64();
                    shards.push((shard, first_txn));
                }
            }
            Ok(LogRecord::CommitGroup { txns, shards })
        }
        TAG_CHECKPOINT => Ok(LogRecord::Checkpoint),
        TAG_SOURCE_REG => {
            let name = get_str(data, at)?;
            let identity_attr = get_opt_str(data, at)?;
            Ok(LogRecord::SourceReg {
                name,
                identity_attr,
            })
        }
        TAG_INGEST_ROW => {
            if data.remaining() < 8 {
                return Err(corrupt);
            }
            let txn = data.get_u64();
            let source = get_str(data, at)?;
            if data.remaining() < 4 {
                return Err(corrupt);
            }
            let n = data.get_u32() as usize;
            let mut attrs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_str(data, at)?;
                let value = get_value(data, at)?.ok_or_else(|| corrupt.clone())?;
                attrs.push((name, value));
            }
            let text = get_opt_str(data, at)?;
            Ok(LogRecord::IngestRow {
                txn,
                source,
                attrs,
                text,
            })
        }
        TAG_DISCOVER_LINKS => {
            if data.remaining() < 8 {
                return Err(corrupt);
            }
            Ok(LogRecord::DiscoverLinks {
                txn: data.get_u64(),
            })
        }
        TAG_ENRICH => {
            if data.remaining() < 8 {
                return Err(corrupt);
            }
            let key = data.get_u64();
            let value = get_value(data, at)?;
            Ok(LogRecord::Enrich { key, value })
        }
        TAG_INDEX_CREATE => {
            let name = get_str(data, at)?;
            let source = get_str(data, at)?;
            let attr = get_str(data, at)?;
            if data.remaining() < 1 {
                return Err(corrupt);
            }
            let kind = data.get_u8();
            Ok(LogRecord::IndexCreate {
                name,
                source,
                attr,
                kind,
            })
        }
        TAG_INDEX_DROP => {
            let name = get_str(data, at)?;
            Ok(LogRecord::IndexDrop { name })
        }
        _ => Err(corrupt),
    }
}

/// An append-only in-memory write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn append(&mut self, record: LogRecord) {
        scdb_obs::metrics().inc("txn.wal.records");
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Log compaction around the last checkpoint.
    ///
    /// Transactions *sealed* (committed or aborted) before the checkpoint
    /// are fully reflected in the checkpointed state, so their records —
    /// and the checkpoint marker itself — are dropped. Records belonging
    /// to transactions still open at the checkpoint are **retained**:
    /// dropping them would lose the transaction's writes if it commits
    /// after the checkpoint (the bug this used to have). Returns the
    /// number of records dropped.
    pub fn compact(&mut self) -> usize {
        let Some(pos) = self
            .records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint))
        else {
            return 0;
        };
        use std::collections::HashSet;
        let mut sealed: HashSet<u64> = HashSet::new();
        for r in &self.records[..pos] {
            match r {
                LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                    sealed.insert(*txn);
                }
                LogRecord::CommitGroup { txns, .. } => {
                    sealed.extend(txns.iter().copied());
                }
                _ => {}
            }
        }
        let before = self.records.len();
        let tail = self.records.split_off(pos + 1);
        let head = std::mem::take(&mut self.records);
        let mut kept: Vec<LogRecord> = head
            .into_iter()
            .take(pos) // drop the checkpoint marker itself
            .filter(|r| match r {
                LogRecord::Write { txn, .. }
                | LogRecord::IngestRow { txn, .. }
                | LogRecord::DiscoverLinks { txn } => !sealed.contains(txn),
                _ => false,
            })
            .collect();
        kept.extend(tail);
        self.records = kept;
        before - self.records.len()
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        for r in &self.records {
            encode_record(&mut buf, r);
        }
        scdb_obs::metrics().add("txn.wal.bytes", buf.len() as u64);
        buf.freeze()
    }

    /// Decode from bytes, stopping cleanly at a torn suffix: records up to
    /// the first malformed byte are kept, the rest is discarded (standard
    /// crash-recovery semantics for a torn tail). Use
    /// [`Wal::decode_reporting`] to also learn how many bytes were cut.
    pub fn decode(data: Bytes) -> Wal {
        Wal::decode_reporting(data).0
    }

    /// Decode from bytes, returning the log plus the number of bytes
    /// discarded at the torn/corrupt suffix. A non-zero count is surfaced
    /// as an `scdb-obs` warning and the `txn.wal.truncated_bytes` counter
    /// rather than silently dropped.
    pub fn decode_reporting(mut data: Bytes) -> (Wal, usize) {
        let total = data.len();
        let mut records = Vec::new();
        let mut truncated = 0usize;
        while data.has_remaining() {
            let at = total - data.remaining();
            match decode_record(&mut data, at) {
                Ok(r) => records.push(r),
                Err(_) => {
                    truncated = total - at;
                    break; // torn tail
                }
            }
        }
        if truncated > 0 {
            scdb_obs::metrics().add("txn.wal.truncated_bytes", truncated as u64);
            scdb_obs::warn(format!(
                "wal: discarded {truncated} byte(s) of torn/corrupt log suffix \
                 after {} clean record(s)",
                records.len()
            ));
        }
        (Wal { records }, truncated)
    }
}

/// Outcome of recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed.
    pub transactions_replayed: usize,
    /// Writes installed.
    pub writes_installed: usize,
    /// Transactions discarded (no commit record).
    pub transactions_discarded: usize,
    /// Bytes discarded at the torn/corrupt log suffix (0 when recovering
    /// from an in-memory log that was never serialized).
    pub bytes_truncated: usize,
}

/// Redo recovery: replay committed transactions' writes, in log order,
/// into a fresh [`TxnManager`]. Only the kv subset (`Write`) installs
/// state here; curation records (`IngestRow` et al.) are replayed by the
/// core crate's `Db::open` and merely participate in commit accounting.
pub fn recover(wal: &Wal) -> (TxnManager, RecoveryReport) {
    recover_with_truncation(wal, 0)
}

/// [`recover`] over a serialized log, threading the torn-suffix byte
/// count from decoding into the report.
pub fn recover_from_bytes(data: Bytes) -> (TxnManager, RecoveryReport) {
    let (wal, truncated) = Wal::decode_reporting(data);
    recover_with_truncation(&wal, truncated)
}

fn recover_with_truncation(wal: &Wal, bytes_truncated: usize) -> (TxnManager, RecoveryReport) {
    use std::collections::{HashMap, HashSet};
    let mut committed: HashSet<u64> = HashSet::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for r in wal.records() {
        if let LogRecord::Commit { txn } = r {
            committed.insert(*txn);
        }
        match r {
            LogRecord::Write { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::IngestRow { txn, .. }
            | LogRecord::DiscoverLinks { txn } => {
                seen.insert(*txn);
            }
            LogRecord::CommitGroup { txns, .. } => {
                committed.extend(txns.iter().copied());
                seen.extend(txns.iter().copied());
            }
            LogRecord::Checkpoint
            | LogRecord::SourceReg { .. }
            | LogRecord::Enrich { .. }
            | LogRecord::IndexCreate { .. }
            | LogRecord::IndexDrop { .. } => {}
        }
    }
    let tm = TxnManager::new();
    let mut writes_installed = 0;
    // Group writes per transaction preserving order, then install per
    // commit order (log order approximates it).
    let mut buffered: HashMap<u64, Vec<(u64, Option<Value>)>> = HashMap::new();
    for r in wal.records() {
        match r {
            LogRecord::Write { txn, key, value } => {
                buffered
                    .entry(*txn)
                    .or_default()
                    .push((*key, value.clone()));
            }
            LogRecord::Commit { txn } => {
                if let Some(ws) = buffered.remove(txn) {
                    for (key, value) in ws {
                        tm.install_raw(key, value, VersionOrigin::Explicit);
                        writes_installed += 1;
                    }
                }
            }
            LogRecord::CommitGroup { txns, .. } => {
                for txn in txns {
                    if let Some(ws) = buffered.remove(txn) {
                        for (key, value) in ws {
                            tm.install_raw(key, value, VersionOrigin::Explicit);
                            writes_installed += 1;
                        }
                    }
                }
            }
            LogRecord::Enrich { key, value } => {
                tm.install_raw(*key, value.clone(), VersionOrigin::Enrichment);
                writes_installed += 1;
            }
            _ => {}
        }
    }
    let report = RecoveryReport {
        transactions_replayed: committed.len(),
        writes_installed,
        transactions_discarded: seen.len().saturating_sub(committed.len()),
        bytes_truncated,
    };
    (tm, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Wal {
        let mut wal = Wal::new();
        wal.append(LogRecord::Write {
            txn: 1,
            key: 10,
            value: Some(Value::Int(1)),
        });
        wal.append(LogRecord::Write {
            txn: 2,
            key: 20,
            value: Some(Value::str("uncommitted")),
        });
        wal.append(LogRecord::Commit { txn: 1 });
        wal.append(LogRecord::Write {
            txn: 3,
            key: 30,
            value: None,
        });
        wal.append(LogRecord::Abort { txn: 3 });
        wal
    }

    #[test]
    fn encode_decode_roundtrip() {
        let wal = sample();
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let mut wal = Wal::new();
        for v in [
            None,
            Some(Value::Null),
            Some(Value::Bool(true)),
            Some(Value::Int(-5)),
            Some(Value::Float(2.5)),
            Some(Value::str("héllo")),
            Some(Value::Timestamp(99)),
        ] {
            wal.append(LogRecord::Write {
                txn: 1,
                key: 0,
                value: v,
            });
        }
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn roundtrip_curation_records() {
        let mut wal = Wal::new();
        wal.append(LogRecord::SourceReg {
            name: "drugbank".into(),
            identity_attr: Some("drug".into()),
        });
        wal.append(LogRecord::SourceReg {
            name: "free".into(),
            identity_attr: None,
        });
        wal.append(LogRecord::IngestRow {
            txn: (1 << 63) | 7,
            source: "drugbank".into(),
            attrs: vec![
                ("drug".into(), Value::str("Warfarin")),
                ("dose".into(), Value::Float(5.1)),
                ("ok".into(), Value::Bool(true)),
            ],
            text: Some("an anticoagulant".into()),
        });
        wal.append(LogRecord::DiscoverLinks { txn: (1 << 63) | 8 });
        wal.append(LogRecord::Enrich {
            key: 42,
            value: Some(Value::Int(9)),
        });
        wal.append(LogRecord::Enrich {
            key: 42,
            value: None,
        });
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn roundtrip_index_records() {
        let mut wal = Wal::new();
        wal.append(LogRecord::IndexCreate {
            name: "ix_drug".into(),
            source: "drugbank".into(),
            attr: "drug".into(),
            kind: 0,
        });
        wal.append(LogRecord::IndexCreate {
            name: "ix_dose".into(),
            source: "drugbank".into(),
            attr: "dose".into(),
            kind: 1,
        });
        wal.append(LogRecord::IndexDrop {
            name: "ix_drug".into(),
        });
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
        // Auto-sealed: recovery must not treat them as open-transaction
        // work nor report torn bytes.
        let (_, report) = recover_from_bytes(wal.encode());
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(report.transactions_discarded, 0);
    }

    #[test]
    fn commit_group_roundtrip_and_recovery() {
        let mut wal = Wal::new();
        for txn in [4u64, 5, 6] {
            wal.append(LogRecord::Write {
                txn,
                key: txn * 10,
                value: Some(Value::Int(txn as i64)),
            });
        }
        // txn 7 is in the log but not in the group seal: discarded.
        wal.append(LogRecord::Write {
            txn: 7,
            key: 70,
            value: Some(Value::Int(7)),
        });
        wal.append(LogRecord::CommitGroup {
            txns: vec![4, 5, 6],
            shards: Vec::new(),
        });
        let decoded = Wal::decode(wal.encode());
        assert_eq!(decoded.records(), wal.records());
        let (tm, report) = recover(&wal);
        assert_eq!(report.transactions_replayed, 3);
        assert_eq!(report.transactions_discarded, 1);
        for txn in [4u64, 5, 6] {
            assert_eq!(tm.read_latest(txn * 10), Some(Value::Int(txn as i64)));
        }
        assert_eq!(tm.read_latest(70), None, "outside the group seal");
        // An empty group is legal on the wire (a fully-invalid batch).
        let mut empty = Wal::new();
        empty.append(LogRecord::CommitGroup {
            txns: vec![],
            shards: Vec::new(),
        });
        assert_eq!(Wal::decode(empty.encode()).records(), empty.records());
    }

    #[test]
    fn compaction_treats_group_seal_like_commit() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Write {
            txn: 1,
            key: 10,
            value: Some(Value::Int(1)),
        });
        wal.append(LogRecord::Write {
            txn: 2,
            key: 20,
            value: Some(Value::Int(2)),
        });
        wal.append(LogRecord::CommitGroup {
            txns: vec![1, 2],
            shards: Vec::new(),
        });
        wal.append(LogRecord::Write {
            txn: 3,
            key: 30,
            value: Some(Value::Int(3)),
        });
        wal.append(LogRecord::Checkpoint);
        wal.append(LogRecord::CommitGroup {
            txns: vec![3],
            shards: Vec::new(),
        });
        wal.compact();
        // Group-sealed txns 1 and 2 are folded into the checkpoint; txn 3
        // was open at the checkpoint, so its write and later seal survive.
        let (tm, report) = recover(&wal);
        assert_eq!(report.transactions_replayed, 1);
        assert_eq!(tm.read_latest(30), Some(Value::Int(3)));
        assert_eq!(tm.read_latest(10), None, "compacted into checkpoint");
    }

    #[test]
    fn torn_tail_truncated() {
        let wal = sample();
        let bytes = wal.encode();
        // Cut mid-record.
        let torn = bytes.slice(0..bytes.len() - 3);
        let (decoded, truncated) = Wal::decode_reporting(torn);
        assert!(decoded.len() < wal.len());
        assert!(decoded.len() >= 3, "prefix preserved");
        assert!(truncated > 0, "cut bytes are reported, not swallowed");
    }

    #[test]
    fn recovery_replays_only_committed() {
        let wal = sample();
        let (tm, report) = recover(&wal);
        assert_eq!(report.transactions_replayed, 1);
        assert_eq!(report.writes_installed, 1);
        assert_eq!(report.transactions_discarded, 2);
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(tm.read_latest(10), Some(Value::Int(1)));
        assert_eq!(tm.read_latest(20), None, "uncommitted write dropped");
        assert_eq!(tm.read_latest(30), None, "aborted write dropped");
    }

    #[test]
    fn crash_recover_end_to_end() {
        // Run real transactions, logging as we go.
        let tm = TxnManager::new();
        let mut wal = Wal::new();
        let mut t = tm.begin();
        t.write(1, Value::Int(100)).unwrap();
        wal.append(LogRecord::Write {
            txn: t.id(),
            key: 1,
            value: Some(Value::Int(100)),
        });
        tm.commit(&mut t).unwrap();
        wal.append(LogRecord::Commit { txn: t.id() });

        let mut t2 = tm.begin();
        t2.write(2, Value::Int(200)).unwrap();
        wal.append(LogRecord::Write {
            txn: t2.id(),
            key: 2,
            value: Some(Value::Int(200)),
        });
        // Crash before commit record.
        let bytes = wal.encode();
        let (recovered, report) = recover_from_bytes(bytes);
        assert_eq!(recovered.read_latest(1), Some(Value::Int(100)));
        assert_eq!(recovered.read_latest(2), None);
        assert_eq!(report.transactions_discarded, 1);
    }

    #[test]
    fn compaction_drops_sealed_keeps_unsealed() {
        let mut wal = sample();
        wal.append(LogRecord::Checkpoint);
        wal.append(LogRecord::Commit { txn: 9 });
        let dropped = wal.compact();
        // txn 1 (committed) and txn 3 (aborted) are sealed before the
        // checkpoint: their three records plus the commit/abort seals and
        // the checkpoint marker go. txn 2 is still open: its write stays.
        assert_eq!(dropped, 5);
        assert_eq!(wal.len(), 2);
        assert!(matches!(wal.records()[0], LogRecord::Write { txn: 2, .. }));
        assert!(matches!(wal.records()[1], LogRecord::Commit { txn: 9 }));
        assert_eq!(wal.compact(), 0, "no checkpoint left");
    }

    #[test]
    fn compaction_never_loses_txn_that_commits_after_checkpoint() {
        // The regression the old drain-everything compaction had: a write
        // lands, a checkpoint runs while the txn is open, the txn commits,
        // then we compact again — the write must still replay.
        let mut wal = Wal::new();
        wal.append(LogRecord::Write {
            txn: 5,
            key: 50,
            value: Some(Value::Int(500)),
        });
        wal.append(LogRecord::Checkpoint);
        wal.append(LogRecord::Commit { txn: 5 });
        wal.compact();
        let (tm, report) = recover(&wal);
        assert_eq!(report.transactions_replayed, 1);
        assert_eq!(tm.read_latest(50), Some(Value::Int(500)));
    }

    #[test]
    fn garbage_bytes_yield_empty_log_with_reported_truncation() {
        let (decoded, truncated) = Wal::decode_reporting(Bytes::from_static(&[0xFF, 0x00, 0x01]));
        assert!(decoded.is_empty());
        assert_eq!(truncated, 3, "corrupt suffix byte count is threaded out");
        let (_, report) = recover_from_bytes(Bytes::from_static(&[0xFF, 0x00, 0x01]));
        assert_eq!(report.bytes_truncated, 3);
    }
}
