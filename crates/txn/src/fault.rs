//! Fault injection for the durable WAL: an in-memory [`WalStore`] that
//! models the volatile/durable split of a real disk.
//!
//! Appended bytes land in a *volatile* buffer (the OS page cache);
//! `sync` moves them to the *durable* image (the platter). [`crash`]
//! discards everything volatile — exactly what power loss does — after
//! which a reopen sees only what was synced. On top of that byte model
//! the store injects the classic failure modes:
//!
//! * **torn write** — an append stops mid-record at a chosen byte and
//!   errors out;
//! * **partial fsync** — a `sync` durably retains only a prefix of the
//!   pending bytes yet reports success (the "lying fsync");
//! * **bit flip** — a durable byte is mutilated in place (media rot);
//! * **transient `Interrupted`** — the next *n* operations fail with
//!   `ErrorKind::Interrupted`, exercising the bounded retry path.
//!
//! [`fork`] deep-copies the whole medium so a crash-matrix harness can
//! re-crash the same history at every byte offset without re-running the
//! workload.
//!
//! [`crash`]: FailpointLog::crash
//! [`fork`]: FailpointLog::fork

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::durable::WalStore;

#[derive(Debug, Default, Clone)]
struct FileBuf {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

impl FileBuf {
    fn combined(&self) -> Vec<u8> {
        let mut out = self.durable.clone();
        out.extend_from_slice(&self.volatile);
        out
    }

    fn len(&self) -> u64 {
        (self.durable.len() + self.volatile.len()) as u64
    }
}

#[derive(Debug, Default)]
struct FailInner {
    files: BTreeMap<String, FileBuf>,
    /// Total bytes ever appended (across files) — torn-write marks are
    /// expressed against this counter.
    appended_total: u64,
    torn_at: Option<u64>,
    interrupts: u32,
    sync_keep: Option<u64>,
}

/// An in-memory, crash-able [`WalStore`] with injectable failpoints.
/// Clones share the same medium (hand one to [`crate::durable::DurableWal`],
/// keep another to crash and inspect it); [`FailpointLog::fork`] makes an
/// independent deep copy.
#[derive(Debug, Clone, Default)]
pub struct FailpointLog {
    inner: Arc<Mutex<FailInner>>,
}

impl FailpointLog {
    /// Fresh, empty medium with no failpoints armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Independent deep copy of the current medium state (failpoints are
    /// not copied — forks start clean).
    pub fn fork(&self) -> FailpointLog {
        let inner = self.inner.lock();
        FailpointLog {
            inner: Arc::new(Mutex::new(FailInner {
                files: inner.files.clone(),
                appended_total: inner.appended_total,
                torn_at: None,
                interrupts: 0,
                sync_keep: None,
            })),
        }
    }

    /// Power loss: every unsynced byte vanishes.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        for f in inner.files.values_mut() {
            f.volatile.clear();
        }
        // Files created but never synced into existence survive as empty
        // entries — harmless: recovery treats an empty segment as clean.
    }

    /// Arm a torn write: the append that would carry the global appended
    /// byte counter past `mark` stops exactly there and fails.
    pub fn arm_torn_write(&self, mark: u64) {
        self.inner.lock().torn_at = Some(mark);
    }

    /// Arm `n` transient `ErrorKind::Interrupted` failures on subsequent
    /// append/sync calls.
    pub fn arm_interrupts(&self, n: u32) {
        self.inner.lock().interrupts = n;
    }

    /// Arm a lying fsync: the next `sync` durably retains only the first
    /// `keep` pending volatile bytes (the rest stays volatile — lost only
    /// if a crash follows) yet reports success.
    pub fn arm_partial_sync(&self, keep: u64) {
        self.inner.lock().sync_keep = Some(keep);
    }

    /// Flip bit `bit` (0–7) of durable byte `at` in `name` — media rot.
    pub fn flip_durable_bit(&self, name: &str, at: usize, bit: u8) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(name) {
            if at < f.durable.len() {
                f.durable[at] ^= 1 << (bit & 7);
            }
        }
    }

    /// Cut the durable image of `name` to `len` bytes (and drop anything
    /// volatile) — simulates a crash that persisted only a prefix.
    pub fn cut_durable(&self, name: &str, len: u64) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(name) {
            f.durable.truncate(len as usize);
            f.volatile.clear();
        }
    }

    /// Durable bytes of `name` (what a crash would preserve).
    pub fn durable_len(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .files
            .get(name)
            .map(|f| f.durable.len() as u64)
            .unwrap_or(0)
    }

    /// Total bytes of `name` including unsynced volatile tail.
    pub fn total_len(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .files
            .get(name)
            .map(FileBuf::len)
            .unwrap_or(0)
    }

    /// File names present, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.inner.lock().files.keys().cloned().collect()
    }

    /// Global appended-byte counter (for positioning torn-write marks).
    pub fn appended_total(&self) -> u64 {
        self.inner.lock().appended_total
    }
}

impl WalStore for FailpointLog {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.file_names())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner
            .lock()
            .files
            .get(name)
            .map(FileBuf::combined)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn create(&mut self, name: &str) -> io::Result<()> {
        self.inner.lock().files.entry(name.to_owned()).or_default();
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.interrupts > 0 {
            inner.interrupts -= 1;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let start = inner.appended_total;
        if let Some(mark) = inner.torn_at {
            if start < mark && start + data.len() as u64 > mark {
                let keep = (mark - start) as usize;
                inner.appended_total = mark;
                inner.torn_at = None;
                inner
                    .files
                    .entry(name.to_owned())
                    .or_default()
                    .volatile
                    .extend_from_slice(&data[..keep]);
                return Err(io::Error::other("injected torn write"));
            }
        }
        inner.appended_total += data.len() as u64;
        inner
            .files
            .entry(name.to_owned())
            .or_default()
            .volatile
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.interrupts > 0 {
            inner.interrupts -= 1;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let keep = inner.sync_keep.take();
        let f = inner.files.entry(name.to_owned()).or_default();
        match keep {
            Some(k) => {
                // Lying fsync: only a prefix becomes durable; the
                // remainder stays in the volatile (cache) image, so a
                // later crash is what actually loses it.
                let k = (k as usize).min(f.volatile.len());
                let moved: Vec<u8> = f.volatile.drain(..k).collect();
                f.durable.extend_from_slice(&moved);
            }
            None => {
                let moved = std::mem::take(&mut f.volatile);
                f.durable.extend_from_slice(&moved);
            }
        }
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let f = inner
            .files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))?;
        let len = len as usize;
        if len <= f.durable.len() {
            f.durable.truncate(len);
            f.volatile.clear();
        } else {
            f.volatile.truncate(len - f.durable.len());
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.inner
            .lock()
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let f = inner
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_owned()))?;
        inner.files.insert(to.to_owned(), f);
        Ok(())
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.inner
            .lock()
            .files
            .get(name)
            .map(FileBuf::len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{DurableWal, FsyncPolicy};
    use crate::wal::LogRecord;
    use scdb_types::Value;

    fn w(txn: u64, key: u64, v: i64) -> LogRecord {
        LogRecord::Write {
            txn,
            key,
            value: Some(Value::Int(v)),
        }
    }

    fn open(log: &FailpointLog, policy: FsyncPolicy) -> (DurableWal, crate::durable::WalRecovery) {
        DurableWal::open(Box::new(log.clone()), policy, 1 << 20).unwrap()
    }

    #[test]
    fn crash_discards_unsynced_bytes() {
        let log = FailpointLog::new();
        {
            let (mut wal, _) = open(&log, FsyncPolicy::OnCheckpoint);
            wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
                .unwrap();
            wal.sync().unwrap();
            wal.append_sealed(&[w(2, 2, 2), LogRecord::Commit { txn: 2 }])
                .unwrap();
            // No sync for txn 2 — and no Drop sync either: crash first.
            log.crash();
            std::mem::forget(wal);
        }
        let (_wal, rec) = open(&log, FsyncPolicy::OnCheckpoint);
        assert_eq!(rec.records.len(), 2, "only the synced txn survives");
    }

    #[test]
    fn torn_write_leaves_recoverable_prefix() {
        let log = FailpointLog::new();
        let (mut wal, _) = open(&log, FsyncPolicy::Always);
        wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
            .unwrap();
        let mark = log.appended_total() + 5; // mid-frame of the next batch
        log.arm_torn_write(mark);
        let err = wal
            .append_sealed(&[w(2, 2, 2), LogRecord::Commit { txn: 2 }])
            .unwrap_err();
        assert!(matches!(err, crate::TxnError::Io { .. }));
        // Process restart without power loss: the torn partial frame is
        // still on the medium and must be cut by recovery.
        drop(wal);
        let (_wal, rec) = open(&log, FsyncPolicy::Always);
        assert_eq!(rec.records.len(), 2, "txn 1 intact, torn txn 2 cut");
        assert!(rec.report.bytes_truncated > 0);
    }

    #[test]
    fn partial_fsync_then_crash_loses_suffix_only() {
        let log = FailpointLog::new();
        let (mut wal, _) = open(&log, FsyncPolicy::OnCheckpoint);
        wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
            .unwrap();
        let keep = log.total_len("wal-00000001.seg"); // first batch only
        wal.append_sealed(&[w(2, 2, 2), LogRecord::Commit { txn: 2 }])
            .unwrap();
        log.arm_partial_sync(keep);
        wal.sync().unwrap(); // lies: txn 2's bytes stay volatile
        log.crash();
        std::mem::forget(wal);
        let (_wal, rec) = open(&log, FsyncPolicy::OnCheckpoint);
        assert_eq!(rec.records.len(), 2, "partial fsync kept a clean prefix");
    }

    #[test]
    fn bit_flip_detected_and_cut() {
        let log = FailpointLog::new();
        {
            let (mut wal, _) = open(&log, FsyncPolicy::Always);
            wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
                .unwrap();
            wal.append_sealed(&[w(2, 2, 2), LogRecord::Commit { txn: 2 }])
                .unwrap();
        }
        let seg = "wal-00000001.seg";
        let len = log.durable_len(seg);
        log.flip_durable_bit(seg, (len - 4) as usize, 3);
        let (_wal, rec) = open(&log, FsyncPolicy::Always);
        assert_eq!(rec.records.len(), 3, "flip in txn 2's commit frame");
        assert!(rec.report.corrupt_tail, "CRC mismatch flagged as corrupt");
        assert!(rec.report.bytes_truncated > 0);
    }

    #[test]
    fn transient_interrupts_are_retried() {
        scdb_obs::metrics().set_enabled(true);
        let log = FailpointLog::new();
        let (mut wal, _) = open(&log, FsyncPolicy::Always);
        let before = scdb_obs::metrics().counter("txn.wal.retries").get();
        log.arm_interrupts(3);
        wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
            .unwrap();
        let after = scdb_obs::metrics().counter("txn.wal.retries").get();
        assert!(after >= before + 3, "retries recorded: {before} -> {after}");
        let (_wal, rec) = open(&log, FsyncPolicy::Always);
        assert_eq!(rec.records.len(), 2);
    }

    #[test]
    fn group_flush_is_atomic_across_crash() {
        let log = FailpointLog::new();
        {
            let (mut wal, _) = open(&log, FsyncPolicy::Always);
            let txns: Vec<u64> = (0..4).map(|_| wal.next_txn_id()).collect();
            let mut batch: Vec<LogRecord> = txns.iter().map(|&t| w(t, t, t as i64)).collect();
            batch.push(LogRecord::CommitGroup {
                txns,
                shards: Vec::new(),
            });
            wal.append_group(&batch, 4).unwrap();
            // The single policy fsync covered the whole batch: power loss
            // immediately after the flush loses nothing.
            log.crash();
            std::mem::forget(wal);
        }
        let (_wal, rec) = open(&log, FsyncPolicy::Always);
        assert_eq!(rec.records.len(), 5, "rows + group seal all survived");
        // A cut inside the group seal frame voids the seal: the rows
        // remain on the medium but no longer commit — the commit-gated
        // replayer above discards all of them, never a partial batch.
        let fork = log.fork();
        let seg = "wal-00000001.seg";
        fork.cut_durable(seg, fork.durable_len(seg) - 2);
        let (_wal, rec) = open(&fork, FsyncPolicy::Always);
        assert_eq!(rec.records.len(), 4, "group seal was cut");
        let mut replay = crate::wal::Wal::new();
        for r in rec.records {
            replay.append(r);
        }
        let (tm, report) = crate::wal::recover(&replay);
        assert_eq!(report.transactions_replayed, 0, "unsealed batch discarded");
        assert_eq!(tm.read_latest(1), None);
    }

    #[test]
    fn fork_is_independent() {
        let log = FailpointLog::new();
        let (mut wal, _) = open(&log, FsyncPolicy::Always);
        wal.append_sealed(&[w(1, 1, 1), LogRecord::Commit { txn: 1 }])
            .unwrap();
        let fork = log.fork();
        wal.append_sealed(&[w(2, 2, 2), LogRecord::Commit { txn: 2 }])
            .unwrap();
        let (_w1, rec_fork) = open(&fork, FsyncPolicy::Always);
        let (_w2, rec_live) = open(&log, FsyncPolicy::Always);
        assert_eq!(rec_fork.records.len(), 2);
        assert_eq!(rec_live.records.len(), 4);
    }
}
