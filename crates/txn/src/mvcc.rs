//! Multi-version concurrency control with snapshot isolation.
//!
//! Keys are opaque `u64`s (the core crate maps `(entity, attribute)` pairs
//! onto them); values are instance-layer [`Value`]s. Writers buffer
//! locally; commit validates first-committer-wins against versions
//! installed after the transaction's snapshot, then installs all writes
//! atomically at a fresh commit timestamp.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use scdb_types::Value;

use crate::error::TxnError;

/// Visibility origin of a version (consumed by the enrichment layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionOrigin {
    /// Installed by an explicit transaction commit.
    Explicit,
    /// Installed by the curation pipeline (relation/semantic layer churn).
    Enrichment,
}

#[derive(Debug, Clone)]
pub(crate) struct Version {
    pub commit_ts: u64,
    pub value: Option<Value>,
    pub origin: VersionOrigin,
}

#[derive(Debug, Default)]
pub(crate) struct Store {
    /// key → versions sorted ascending by `commit_ts`.
    pub chains: HashMap<u64, Vec<Version>>,
}

impl Store {
    /// Latest version visible at `ts`, optionally filtered by origin
    /// predicate.
    pub fn visible<F: Fn(&Version) -> bool>(
        &self,
        key: u64,
        ts: u64,
        admit: F,
    ) -> Option<&Version> {
        self.chains
            .get(&key)?
            .iter()
            .rev()
            .find(|v| v.commit_ts <= ts && admit(v))
    }

    /// Latest committed version regardless of snapshot.
    pub fn latest(&self, key: u64) -> Option<&Version> {
        self.chains.get(&key)?.last()
    }

    pub fn install(&mut self, key: u64, version: Version) {
        self.chains.entry(key).or_default().push(version);
    }
}

/// Transaction lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back (explicitly or by conflict).
    Aborted,
}

/// A snapshot-isolation transaction handle.
#[derive(Debug)]
pub struct Transaction {
    id: u64,
    snapshot_ts: u64,
    writes: HashMap<u64, Option<Value>>,
    /// Keys read, retained for diagnostics/validation extensions.
    reads: Vec<u64>,
    status: TxnStatus,
}

impl Transaction {
    /// Transaction id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot timestamp reads are served at.
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot_ts
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        self.status
    }

    /// Buffer a write.
    pub fn write(&mut self, key: u64, value: Value) -> Result<(), TxnError> {
        if self.status != TxnStatus::Active {
            return Err(TxnError::NotActive);
        }
        self.writes.insert(key, Some(value));
        Ok(())
    }

    /// Buffer a delete.
    pub fn delete(&mut self, key: u64) -> Result<(), TxnError> {
        if self.status != TxnStatus::Active {
            return Err(TxnError::NotActive);
        }
        self.writes.insert(key, None);
        Ok(())
    }

    /// Keys written by this transaction.
    pub fn write_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.writes.keys().copied()
    }

    /// Buffered writes as `(key, value)` pairs (`None` = delete). The
    /// durable facade serializes these into WAL records before commit.
    pub fn writes(&self) -> impl Iterator<Item = (u64, Option<&Value>)> + '_ {
        self.writes.iter().map(|(k, v)| (*k, v.as_ref()))
    }
}

/// The transaction manager: timestamp oracle plus the shared store.
#[derive(Debug, Clone)]
pub struct TxnManager {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    next_ts: AtomicU64,
    next_txn: AtomicU64,
    store: Mutex<Store>,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Fresh manager with an empty store.
    pub fn new() -> Self {
        TxnManager {
            inner: Arc::new(Inner {
                next_ts: AtomicU64::new(1),
                next_txn: AtomicU64::new(1),
                store: Mutex::new(Store::default()),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
            }),
        }
    }

    /// Begin a transaction with a snapshot at the current timestamp.
    pub fn begin(&self) -> Transaction {
        scdb_obs::metrics().inc("txn.begin");
        Transaction {
            id: self.inner.next_txn.fetch_add(1, Ordering::Relaxed),
            snapshot_ts: self.inner.next_ts.load(Ordering::SeqCst),
            writes: HashMap::new(),
            reads: Vec::new(),
            status: TxnStatus::Active,
        }
    }

    /// Read `key` inside `txn`: own writes first, then the snapshot.
    pub fn read(&self, txn: &mut Transaction, key: u64) -> Option<Value> {
        txn.reads.push(key);
        if let Some(buffered) = txn.writes.get(&key) {
            return buffered.clone();
        }
        let store = self.inner.store.lock();
        store
            .visible(key, txn.snapshot_ts, |_| true)
            .and_then(|v| v.value.clone())
    }

    /// Commit: validate first-committer-wins, then install all writes at a
    /// fresh commit timestamp. Returns the commit timestamp.
    pub fn commit(&self, txn: &mut Transaction) -> Result<u64, TxnError> {
        if txn.status != TxnStatus::Active {
            return Err(TxnError::NotActive);
        }
        let mut store = self.inner.store.lock();
        // Validation: any key we wrote that has a version newer than our
        // snapshot was committed by a concurrent transaction.
        for key in txn.writes.keys() {
            if let Some(latest) = store.latest(*key) {
                if latest.commit_ts > txn.snapshot_ts {
                    txn.status = TxnStatus::Aborted;
                    self.inner.aborts.fetch_add(1, Ordering::Relaxed);
                    scdb_obs::metrics().inc("txn.abort");
                    return Err(TxnError::WriteConflict { key: *key });
                }
            }
        }
        let commit_ts = self.inner.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        for (key, value) in txn.writes.drain() {
            store.install(
                key,
                Version {
                    commit_ts,
                    value,
                    origin: VersionOrigin::Explicit,
                },
            );
        }
        txn.status = TxnStatus::Committed;
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
        scdb_obs::metrics().inc("txn.commit");
        Ok(commit_ts)
    }

    /// First-committer-wins validation without installing anything:
    /// returns the first conflicting key, if any. The durable facade
    /// calls this *before* writing the transaction's WAL records — a
    /// doomed transaction must not reach the log — then commits for
    /// real; both steps happen under the facade's log mutex so no
    /// conflicting install can slip between them.
    pub fn would_conflict(&self, txn: &Transaction) -> Option<u64> {
        if txn.status != TxnStatus::Active {
            return None;
        }
        let store = self.inner.store.lock();
        for key in txn.writes.keys() {
            if let Some(latest) = store.latest(*key) {
                if latest.commit_ts > txn.snapshot_ts {
                    return Some(*key);
                }
            }
        }
        None
    }

    /// Abort explicitly.
    pub fn abort(&self, txn: &mut Transaction) {
        if txn.status == TxnStatus::Active {
            txn.status = TxnStatus::Aborted;
            txn.writes.clear();
            self.inner.aborts.fetch_add(1, Ordering::Relaxed);
            scdb_obs::metrics().inc("txn.abort");
        }
    }

    /// Install a version outside any transaction (used by WAL recovery
    /// and the enrichment layer). Returns the timestamp used.
    pub(crate) fn install_raw(&self, key: u64, value: Option<Value>, origin: VersionOrigin) -> u64 {
        let ts = self.inner.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.store.lock().install(
            key,
            Version {
                commit_ts: ts,
                value,
                origin,
            },
        );
        ts
    }

    /// Install a version outside any transaction during replay/recovery.
    /// Public variant of the internal raw install used by `Db::open`.
    pub fn install_recovered(&self, key: u64, value: Option<Value>, origin: VersionOrigin) -> u64 {
        self.install_raw(key, value, origin)
    }

    /// Read the latest committed value ignoring snapshots (autocommit
    /// read).
    pub fn read_latest(&self, key: u64) -> Option<Value> {
        let store = self.inner.store.lock();
        store.latest(key).and_then(|v| v.value.clone())
    }

    /// Latest version of every key: `(key, value, origin)`, sorted by
    /// key. Snapshot/checkpoint code and state digests use this to walk
    /// the whole store.
    pub fn latest_entries(&self) -> Vec<(u64, Option<Value>, VersionOrigin)> {
        let store = self.inner.store.lock();
        let mut out: Vec<_> = store
            .chains
            .iter()
            .filter_map(|(k, chain)| chain.last().map(|v| (*k, v.value.clone(), v.origin)))
            .collect();
        out.sort_by_key(|(k, _, _)| *k);
        out
    }

    /// Snapshot-free visibility query used by the enrichment layer.
    pub(crate) fn read_with<F: Fn(&Version) -> bool>(
        &self,
        key: u64,
        ts: u64,
        admit: F,
    ) -> Option<Value> {
        let store = self.inner.store.lock();
        store.visible(key, ts, admit).and_then(|v| v.value.clone())
    }

    /// Latest version newer than `ts` matching `admit` (for relaxed
    /// enrichment visibility).
    pub(crate) fn read_latest_with<F: Fn(&Version) -> bool>(
        &self,
        key: u64,
        admit: F,
    ) -> Option<(u64, Option<Value>)> {
        let store = self.inner.store.lock();
        store
            .chains
            .get(&key)?
            .iter()
            .rev()
            .find(|v| admit(v))
            .map(|v| (v.commit_ts, v.value.clone()))
    }

    /// `(commits, aborts)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.commits.load(Ordering::Relaxed),
            self.inner.aborts.load(Ordering::Relaxed),
        )
    }

    /// Number of keys with at least one version.
    pub fn key_count(&self) -> usize {
        self.inner.store.lock().chains.len()
    }

    /// Drop versions older than `ts` that are shadowed by newer ones —
    /// basic vacuuming so long-running curation does not grow unbounded.
    pub fn vacuum(&self, ts: u64) -> usize {
        let mut store = self.inner.store.lock();
        let mut dropped = 0;
        for chain in store.chains.values_mut() {
            // Keep the newest version ≤ ts plus everything > ts.
            let keep_from = chain.iter().rposition(|v| v.commit_ts <= ts).unwrap_or(0);
            if keep_from > 0 {
                dropped += keep_from;
                chain.drain(..keep_from);
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes() {
        let tm = TxnManager::new();
        let mut t = tm.begin();
        assert_eq!(tm.read(&mut t, 1), None);
        t.write(1, Value::Int(42)).unwrap();
        assert_eq!(tm.read(&mut t, 1), Some(Value::Int(42)));
        t.delete(1).unwrap();
        assert_eq!(tm.read(&mut t, 1), None);
    }

    #[test]
    fn committed_writes_visible_to_later_snapshots_only() {
        let tm = TxnManager::new();
        let mut writer = tm.begin();
        let mut concurrent = tm.begin();
        writer.write(7, Value::str("x")).unwrap();
        tm.commit(&mut writer).unwrap();
        // Concurrent snapshot predates the commit.
        assert_eq!(tm.read(&mut concurrent, 7), None);
        let mut later = tm.begin();
        assert_eq!(tm.read(&mut later, 7), Some(Value::str("x")));
    }

    #[test]
    fn snapshot_reads_are_repeatable() {
        let tm = TxnManager::new();
        let mut setup = tm.begin();
        setup.write(3, Value::Int(1)).unwrap();
        tm.commit(&mut setup).unwrap();

        let mut reader = tm.begin();
        let first = tm.read(&mut reader, 3);
        let mut writer = tm.begin();
        writer.write(3, Value::Int(2)).unwrap();
        tm.commit(&mut writer).unwrap();
        let second = tm.read(&mut reader, 3);
        assert_eq!(first, second, "snapshot isolation: repeatable read");
        assert_eq!(first, Some(Value::Int(1)));
    }

    #[test]
    fn first_committer_wins() {
        let tm = TxnManager::new();
        let mut a = tm.begin();
        let mut b = tm.begin();
        a.write(5, Value::Int(1)).unwrap();
        b.write(5, Value::Int(2)).unwrap();
        tm.commit(&mut a).unwrap();
        let err = tm.commit(&mut b).unwrap_err();
        assert_eq!(err, TxnError::WriteConflict { key: 5 });
        assert_eq!(b.status(), TxnStatus::Aborted);
        let (commits, aborts) = tm.stats();
        assert_eq!((commits, aborts), (1, 1));
    }

    #[test]
    fn disjoint_writes_both_commit() {
        let tm = TxnManager::new();
        let mut a = tm.begin();
        let mut b = tm.begin();
        a.write(1, Value::Int(1)).unwrap();
        b.write(2, Value::Int(2)).unwrap();
        tm.commit(&mut a).unwrap();
        tm.commit(&mut b).unwrap();
        let mut r = tm.begin();
        assert_eq!(tm.read(&mut r, 1), Some(Value::Int(1)));
        assert_eq!(tm.read(&mut r, 2), Some(Value::Int(2)));
    }

    #[test]
    fn operations_on_finished_txn_rejected() {
        let tm = TxnManager::new();
        let mut t = tm.begin();
        t.write(1, Value::Int(1)).unwrap();
        tm.commit(&mut t).unwrap();
        assert_eq!(t.write(2, Value::Int(2)), Err(TxnError::NotActive));
        assert!(matches!(tm.commit(&mut t), Err(TxnError::NotActive)));
    }

    #[test]
    fn abort_discards_writes() {
        let tm = TxnManager::new();
        let mut t = tm.begin();
        t.write(9, Value::Int(1)).unwrap();
        tm.abort(&mut t);
        assert_eq!(t.status(), TxnStatus::Aborted);
        let mut r = tm.begin();
        assert_eq!(tm.read(&mut r, 9), None);
    }

    #[test]
    fn delete_produces_tombstone() {
        let tm = TxnManager::new();
        let mut t = tm.begin();
        t.write(4, Value::Int(9)).unwrap();
        tm.commit(&mut t).unwrap();
        let mut d = tm.begin();
        d.delete(4).unwrap();
        tm.commit(&mut d).unwrap();
        let mut r = tm.begin();
        assert_eq!(tm.read(&mut r, 4), None);
    }

    #[test]
    fn vacuum_drops_shadowed_versions() {
        let tm = TxnManager::new();
        for i in 0..5 {
            let mut t = tm.begin();
            t.write(1, Value::Int(i)).unwrap();
            tm.commit(&mut t).unwrap();
        }
        let mut r = tm.begin();
        let visible_before = tm.read(&mut r, 1);
        let dropped = tm.vacuum(r.snapshot_ts());
        assert!(dropped >= 3, "dropped {dropped}");
        assert_eq!(tm.read(&mut r, 1), visible_before);
    }

    #[test]
    fn concurrent_threads_conflict_safely() {
        let tm = TxnManager::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..50 {
                        let mut t = tm.begin();
                        t.write(i % 2, Value::Int(i as i64)).unwrap();
                        if tm.commit(&mut t).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (commits, aborts) = tm.stats();
        assert_eq!(commits, total);
        assert_eq!(commits + aborts, 400);
        assert!(commits > 0);
    }
}
