//! Concurrency control for the enriched data model — FS.11.
//!
//! The paper asks: "If the relation and semantic layers can be changed
//! continuously, even when the instance layer does not change, and these
//! layers are further enhanced with non-deterministic predictive inference
//! power, could the classical isolation semantics … ever be satisfied? In
//! what ways must concurrency control be extended to account for the
//! non-determinism that is not the result of explicit update queries?"
//!
//! This crate provides the machinery to *pose and measure* that question:
//!
//! * [`mvcc`] — a classical multi-version store with snapshot-isolation
//!   transactions (first-committer-wins write conflicts);
//! * [`wal`] — write-ahead logging and crash recovery (redo of committed
//!   transactions, checkpointing), because "these fundamental changes to
//!   the concurrency model will inevitably have implication\[s\] for …
//!   logging and recovery protocols";
//! * [`enrich`] — the extension: *enrichment writes* originate from the
//!   curation pipeline, not from user transactions. Under
//!   [`enrich::IsolationMode::Snapshot`] they stay invisible to running
//!   transactions (repeatable reads, stale enrichment); under
//!   [`enrich::IsolationMode::RelaxedEnrichment`] — the paper's "pulled
//!   and eventually received with uncertainty" — they become visible
//!   immediately, trading repeatability for freshness. The anomaly
//!   counters quantify the trade in experiment E-T1-FS11.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod enrich;
pub mod error;
pub mod fault;
pub mod frame;
pub mod inject;
pub mod mvcc;
pub mod wal;

pub use durable::{
    discover_shard_count, CheckpointStats, DurableWal, FsStore, FsyncPolicy, SharedStore, WalLag,
    WalRecovery, WalRecoveryReport, WalStore,
};
pub use enrich::{EnrichedDb, IsolationMode, ReadStats};
pub use error::{IoClass, TxnError};
pub use fault::FailpointLog;
pub use inject::{FaultHandle, FaultInjector, FaultPlan};
pub use mvcc::{Transaction, TxnManager, TxnStatus, VersionOrigin};
pub use wal::{recover_from_bytes, LogRecord, RecoveryReport, Wal};
