//! Errors for the transaction layer.

use std::fmt;
use std::io;

/// Coarse classification of a durable-log I/O failure — what the caller
/// can reasonably *do* about it, not which syscall produced it.
///
/// The class is derived from the underlying [`std::io::ErrorKind`] when
/// the error is wrapped by [`TxnError::io`]:
///
/// * [`IoClass::Transient`] — interruption-style failures
///   (`Interrupted`, `WouldBlock`, `TimedOut`) that a bounded retry is
///   expected to clear. The WAL retries these internally; one escaping
///   to the caller means the retry budget was exhausted, so the fault
///   is behaving persistently.
/// * [`IoClass::StorageFull`] — the medium is out of space (`ENOSPC` /
///   quota). Writes cannot succeed until an operator (or a checkpoint
///   pruning segments) frees space, but nothing already durable is at
///   risk.
/// * [`IoClass::Fatal`] — everything else: permission loss, a vanished
///   device, unexplained write failures. Retrying blind is as likely to
///   corrupt expectations as to help; the engine's response is to stop
///   writing (degraded read-only mode) and probe for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Expected to clear on retry (EINTR-style).
    Transient,
    /// The medium is out of space (`ENOSPC`-style).
    StorageFull,
    /// Persistent and unexplained — stop writing, keep reading.
    Fatal,
}

impl IoClass {
    /// Classify a raw I/O error by its kind.
    pub fn of(err: &io::Error) -> IoClass {
        match err.kind() {
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                IoClass::Transient
            }
            io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded => IoClass::StorageFull,
            _ => IoClass::Fatal,
        }
    }

    /// Short lowercase tag (`transient` / `storage-full` / `fatal`) for
    /// rendering and flight-recorder messages.
    pub fn tag(&self) -> &'static str {
        match self {
            IoClass::Transient => "transient",
            IoClass::StorageFull => "storage-full",
            IoClass::Fatal => "fatal",
        }
    }
}

/// Errors produced by transactional operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// First-committer-wins validation failed: another transaction
    /// committed a conflicting write after this transaction's snapshot.
    WriteConflict {
        /// The contended key.
        key: u64,
    },
    /// The transaction is not active (already committed or aborted).
    NotActive,
    /// The write-ahead log contained a malformed record.
    CorruptLog {
        /// Byte offset of the malformed record.
        offset: usize,
    },
    /// An I/O failure in the durable log layer. The original
    /// `std::io::Error` is flattened to its class + message so the error
    /// stays `Clone`/`PartialEq` (test assertions compare errors).
    Io {
        /// What the log layer was doing (e.g. `append wal-00000001.seg`).
        context: String,
        /// Rendered I/O error.
        message: String,
        /// What kind of failure this is (see [`IoClass`]).
        class: IoClass,
    },
}

impl TxnError {
    /// Wrap an I/O error with the operation it interrupted, classifying
    /// it by [`IoClass::of`].
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        TxnError::Io {
            context: context.into(),
            message: err.to_string(),
            class: IoClass::of(err),
        }
    }

    /// The I/O class, for [`TxnError::Io`]; `None` for the logical
    /// (non-I/O) variants.
    pub fn io_class(&self) -> Option<IoClass> {
        match self {
            TxnError::Io { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// True for an I/O failure the medium is expected to clear on
    /// retry.
    pub fn is_transient(&self) -> bool {
        self.io_class() == Some(IoClass::Transient)
    }

    /// True for an out-of-space I/O failure.
    pub fn is_storage_full(&self) -> bool {
        self.io_class() == Some(IoClass::StorageFull)
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WriteConflict { key } => {
                write!(f, "write-write conflict on key {key}")
            }
            TxnError::NotActive => write!(f, "transaction is not active"),
            TxnError::CorruptLog { offset } => {
                write!(f, "corrupt log record at byte offset {offset}")
            }
            TxnError::Io {
                context,
                message,
                class,
            } => {
                write!(
                    f,
                    "wal io failure ({}) during {context}: {message}",
                    class.tag()
                )
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            TxnError::WriteConflict { key: 9 }.to_string(),
            "write-write conflict on key 9"
        );
        assert!(TxnError::CorruptLog { offset: 4 }.to_string().contains("4"));
    }

    #[test]
    fn io_classification() {
        let eintr = io::Error::new(io::ErrorKind::Interrupted, "EINTR");
        let enospc = io::Error::new(io::ErrorKind::StorageFull, "ENOSPC");
        let eperm = io::Error::new(io::ErrorKind::PermissionDenied, "EPERM");
        assert_eq!(IoClass::of(&eintr), IoClass::Transient);
        assert_eq!(IoClass::of(&enospc), IoClass::StorageFull);
        assert_eq!(IoClass::of(&eperm), IoClass::Fatal);

        let e = TxnError::io("append wal-00000001.seg", &enospc);
        assert!(e.is_storage_full());
        assert!(!e.is_transient());
        assert_eq!(e.io_class(), Some(IoClass::StorageFull));
        assert!(
            e.to_string().contains("storage-full"),
            "class rendered: {e}"
        );
        assert_eq!(TxnError::NotActive.io_class(), None);
    }
}
