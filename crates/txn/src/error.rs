//! Errors for the transaction layer.

use std::fmt;

/// Errors produced by transactional operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// First-committer-wins validation failed: another transaction
    /// committed a conflicting write after this transaction's snapshot.
    WriteConflict {
        /// The contended key.
        key: u64,
    },
    /// The transaction is not active (already committed or aborted).
    NotActive,
    /// The write-ahead log contained a malformed record.
    CorruptLog {
        /// Byte offset of the malformed record.
        offset: usize,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WriteConflict { key } => {
                write!(f, "write-write conflict on key {key}")
            }
            TxnError::NotActive => write!(f, "transaction is not active"),
            TxnError::CorruptLog { offset } => {
                write!(f, "corrupt log record at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            TxnError::WriteConflict { key: 9 }.to_string(),
            "write-write conflict on key 9"
        );
        assert!(TxnError::CorruptLog { offset: 4 }.to_string().contains("4"));
    }
}
