//! Errors for the transaction layer.

use std::fmt;

/// Errors produced by transactional operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// First-committer-wins validation failed: another transaction
    /// committed a conflicting write after this transaction's snapshot.
    WriteConflict {
        /// The contended key.
        key: u64,
    },
    /// The transaction is not active (already committed or aborted).
    NotActive,
    /// The write-ahead log contained a malformed record.
    CorruptLog {
        /// Byte offset of the malformed record.
        offset: usize,
    },
    /// An I/O failure in the durable log layer. The original
    /// `std::io::Error` is flattened to its kind + message so the error
    /// stays `Clone`/`PartialEq` (test assertions compare errors).
    Io {
        /// What the log layer was doing (e.g. `append wal-00000001.seg`).
        context: String,
        /// Rendered I/O error.
        message: String,
    },
}

impl TxnError {
    /// Wrap an I/O error with the operation it interrupted.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        TxnError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WriteConflict { key } => {
                write!(f, "write-write conflict on key {key}")
            }
            TxnError::NotActive => write!(f, "transaction is not active"),
            TxnError::CorruptLog { offset } => {
                write!(f, "corrupt log record at byte offset {offset}")
            }
            TxnError::Io { context, message } => {
                write!(f, "wal io failure during {context}: {message}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            TxnError::WriteConflict { key: 9 }.to_string(),
            "write-write conflict on key 9"
        );
        assert!(TxnError::CorruptLog { offset: 4 }.to_string().contains("4"));
    }
}
