//! Enrichment-aware isolation — the heart of FS.11.
//!
//! Curation is a writer that no transaction controls: entity resolution
//! merges nodes, the reasoner derives new facts, models re-predict links.
//! The paper asks whether classical isolation "could ever be satisfied"
//! when such non-deterministic writes flow continuously, and proposes
//! "relaxed isolation semantics (e.g., eventual consistencies) … to
//! account for situations where changes … once received may be
//! non-deterministic (i.e., pulled and eventually received with
//! uncertainty)".
//!
//! [`EnrichedDb`] exposes both regimes over one MVCC store:
//!
//! * [`IsolationMode::Snapshot`] — enrichment versions obey snapshot
//!   visibility: transactions are repeatable but read *stale* enrichment;
//! * [`IsolationMode::RelaxedEnrichment`] — enrichment versions are
//!   visible the moment they land, even mid-transaction: fresh but
//!   non-repeatable. Every read records whether it observed a version
//!   newer than the snapshot (a *non-deterministic phantom*), so the
//!   E-T1-FS11 experiment can report the anomaly rate it costs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scdb_types::Value;

use crate::mvcc::{Transaction, TxnManager, VersionOrigin};

/// The isolation regime for enrichment visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// Enrichment writes obey snapshot visibility (repeatable, stale).
    Snapshot,
    /// Enrichment writes are immediately visible (fresh, non-repeatable).
    RelaxedEnrichment,
}

/// Counters describing what reads observed.
#[derive(Debug, Default)]
pub struct ReadStats {
    /// Total reads served.
    pub reads: AtomicU64,
    /// Reads that observed an enrichment version newer than the reader's
    /// snapshot — the non-deterministic phantoms of FS.11.
    pub phantoms: AtomicU64,
    /// Reads that returned enrichment-origin data (any age).
    pub enriched_reads: AtomicU64,
}

impl ReadStats {
    /// Snapshot of `(reads, phantoms, enriched_reads)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.phantoms.load(Ordering::Relaxed),
            self.enriched_reads.load(Ordering::Relaxed),
        )
    }

    /// Phantom rate in `[0, 1]`.
    pub fn phantom_rate(&self) -> f64 {
        let (reads, phantoms, _) = self.snapshot();
        if reads == 0 {
            0.0
        } else {
            phantoms as f64 / reads as f64
        }
    }
}

/// An MVCC store shared between user transactions and the curation
/// pipeline.
#[derive(Debug, Clone)]
pub struct EnrichedDb {
    tm: TxnManager,
    mode: IsolationMode,
    stats: Arc<ReadStats>,
}

impl EnrichedDb {
    /// New store under `mode`.
    pub fn new(mode: IsolationMode) -> Self {
        Self::with_manager(TxnManager::new(), mode)
    }

    /// Wrap an existing manager (the `Db` facade shares one store between
    /// recovery replay and live enrichment).
    pub fn with_manager(tm: TxnManager, mode: IsolationMode) -> Self {
        EnrichedDb {
            tm,
            mode,
            stats: Arc::new(ReadStats::default()),
        }
    }

    /// The isolation mode in effect.
    pub fn mode(&self) -> IsolationMode {
        self.mode
    }

    /// The underlying transaction manager (for explicit writes).
    pub fn txn_manager(&self) -> &TxnManager {
        &self.tm
    }

    /// Begin a user transaction.
    pub fn begin(&self) -> Transaction {
        self.tm.begin()
    }

    /// A curation write: lands immediately at a fresh timestamp with
    /// enrichment origin — "not the result of explicit update queries".
    pub fn enrich(&self, key: u64, value: Value) -> u64 {
        self.tm
            .install_raw(key, Some(value), VersionOrigin::Enrichment)
    }

    /// A curation retraction (e.g. an ER merge superseded an entity).
    pub fn retract(&self, key: u64) -> u64 {
        self.tm.install_raw(key, None, VersionOrigin::Enrichment)
    }

    /// Read under the configured isolation mode, recording anomaly
    /// statistics.
    pub fn read(&self, txn: &mut Transaction, key: u64) -> Option<Value> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            IsolationMode::Snapshot => self.tm.read(txn, key),
            IsolationMode::RelaxedEnrichment => {
                // Latest enrichment version (any timestamp) vs snapshot-
                // visible explicit state: prefer the fresher of the two.
                let snapshot_view = self.tm.read(txn, key);
                let latest_enrich = self
                    .tm
                    .read_latest_with(key, |v| v.origin == VersionOrigin::Enrichment);
                match latest_enrich {
                    Some((ts, value)) => {
                        // Is the enrichment version the freshest overall?
                        let explicit_ts = self
                            .tm
                            .read_with(key, u64::MAX, |v| v.origin == VersionOrigin::Explicit)
                            .map(|_| ());
                        let _ = explicit_ts;
                        self.stats.enriched_reads.fetch_add(1, Ordering::Relaxed);
                        if ts > txn.snapshot_ts() {
                            self.stats.phantoms.fetch_add(1, Ordering::Relaxed);
                        }
                        // Freshest enrichment wins over the snapshot view
                        // when newer; otherwise the snapshot view already
                        // includes it.
                        if ts > txn.snapshot_ts() {
                            value
                        } else {
                            snapshot_view
                        }
                    }
                    None => snapshot_view,
                }
            }
        }
    }

    /// Anomaly statistics.
    pub fn stats(&self) -> &ReadStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mode_hides_mid_txn_enrichment() {
        let db = EnrichedDb::new(IsolationMode::Snapshot);
        db.enrich(1, Value::Int(1));
        let mut t = db.begin();
        assert_eq!(db.read(&mut t, 1), Some(Value::Int(1)));
        db.enrich(1, Value::Int(2)); // curation lands mid-transaction
        assert_eq!(db.read(&mut t, 1), Some(Value::Int(1)), "repeatable");
        assert_eq!(db.stats().snapshot().1, 0, "no phantoms in snapshot mode");
    }

    #[test]
    fn relaxed_mode_sees_fresh_enrichment_and_counts_phantom() {
        let db = EnrichedDb::new(IsolationMode::RelaxedEnrichment);
        db.enrich(1, Value::Int(1));
        let mut t = db.begin();
        assert_eq!(db.read(&mut t, 1), Some(Value::Int(1)));
        db.enrich(1, Value::Int(2));
        assert_eq!(db.read(&mut t, 1), Some(Value::Int(2)), "fresh");
        let (reads, phantoms, enriched) = db.stats().snapshot();
        assert_eq!(reads, 2);
        assert_eq!(phantoms, 1);
        assert_eq!(enriched, 2);
        assert!(db.stats().phantom_rate() > 0.4);
    }

    #[test]
    fn relaxed_mode_retraction_visible() {
        let db = EnrichedDb::new(IsolationMode::RelaxedEnrichment);
        db.enrich(5, Value::str("fact"));
        let mut t = db.begin();
        assert_eq!(db.read(&mut t, 5), Some(Value::str("fact")));
        db.retract(5);
        assert_eq!(db.read(&mut t, 5), None, "retraction observed");
    }

    #[test]
    fn explicit_writes_still_snapshot_isolated_in_relaxed_mode() {
        let db = EnrichedDb::new(IsolationMode::RelaxedEnrichment);
        let mut setup = db.begin();
        setup.write(9, Value::Int(1)).unwrap();
        db.txn_manager().commit(&mut setup).unwrap();

        let mut reader = db.begin();
        assert_eq!(db.read(&mut reader, 9), Some(Value::Int(1)));
        // A concurrent *explicit* commit stays invisible.
        let mut writer = db.begin();
        writer.write(9, Value::Int(2)).unwrap();
        db.txn_manager().commit(&mut writer).unwrap();
        assert_eq!(
            db.read(&mut reader, 9),
            Some(Value::Int(1)),
            "explicit writes keep snapshot semantics"
        );
    }

    #[test]
    fn old_enrichment_does_not_count_as_phantom() {
        let db = EnrichedDb::new(IsolationMode::RelaxedEnrichment);
        db.enrich(2, Value::Int(7));
        let mut t = db.begin();
        assert_eq!(db.read(&mut t, 2), Some(Value::Int(7)));
        let (_, phantoms, _) = db.stats().snapshot();
        assert_eq!(phantoms, 0, "enrichment before snapshot is not a phantom");
    }

    #[test]
    fn missing_key_reads_none_everywhere() {
        for mode in [IsolationMode::Snapshot, IsolationMode::RelaxedEnrichment] {
            let db = EnrichedDb::new(mode);
            let mut t = db.begin();
            assert_eq!(db.read(&mut t, 404), None);
        }
    }
}
