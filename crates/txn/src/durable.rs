//! The disk-backed, segmented WAL: durability layered under [`crate::Wal`].
//!
//! Layout inside a log directory:
//!
//! ```text
//! wal-00000001.seg     sealed segment (synced, immutable)
//! wal-00000002.seg     active segment (appends go here)
//! snap-00000002.scdb   checkpoint snapshot covering segments < 2
//! ```
//!
//! Every [`LogRecord`] is wrapped in a `[len][crc32][payload]` frame
//! ([`crate::frame`]) before it is appended, so recovery can cut a torn
//! or bit-rotted tail at the last clean frame. The medium itself hides
//! behind the [`WalStore`] trait: [`FsStore`] talks to real files, while
//! the fault-injection store ([`crate::fault::FailpointLog`]) models a
//! volatile/durable byte split so tests can crash the "machine" at any
//! byte and reopen.
//!
//! ## Checkpoint protocol
//!
//! 1. rotate: seal + fsync the active segment `N`, open segment `N+1`;
//! 2. write the snapshot to `snap-(N+1).tmp`, fsync, rename to
//!    `snap-(N+1).scdb` (atomic install);
//! 3. delete segments `< N+1` and older snapshots.
//!
//! A crash between any two steps is safe: recovery picks the newest
//! *valid* snapshot `snap-K.scdb` and replays only segments `≥ K`;
//! leftover `.tmp` files and stale segments are removed.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] syncs after every sealed transaction — no
//! committed row is ever lost. `EveryN(n)` amortizes the sync over `n`
//! commit seals, and `OnCheckpoint` syncs only at segment seal and
//! checkpoint: both keep the *prefix* property (recovery yields a clean
//! prefix of the commit order) but may lose a recent suffix on power
//! failure. Transient `ErrorKind::Interrupted` failures are retried with
//! bounded backoff before surfacing as [`TxnError::Io`].

use std::io;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use scdb_obs::FieldValue as F;

use crate::error::TxnError;
use crate::frame::{read_frames, write_frame};
use crate::wal::{decode_record, encode_record, LogRecord};

/// When to fsync the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every sealed transaction (no committed row lost).
    #[default]
    Always,
    /// Sync every `n` sealed transactions (bounded loss window).
    EveryN(u32),
    /// Sync only at segment rotation and checkpoint (largest window).
    OnCheckpoint,
}

/// Abstract append-only storage medium for WAL segments and snapshots.
///
/// Implementations: [`FsStore`] (real files) and
/// [`crate::fault::FailpointLog`] (in-memory crash simulation).
pub trait WalStore: Send {
    /// File names present, in arbitrary order.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Entire current contents of `name` (what a reopening process sees).
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Create `name` empty if it does not exist.
    fn create(&mut self, name: &str) -> io::Result<()>;
    /// Append bytes to `name` (created if absent).
    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Force appended bytes of `name` to stable storage.
    fn sync(&mut self, name: &str) -> io::Result<()>;
    /// Cut `name` to `len` bytes (used to trim a torn tail).
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()>;
    /// Delete `name`.
    fn remove(&mut self, name: &str) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
    /// Current size of `name` in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
}

/// [`WalStore`] over a real directory.
#[derive(Debug)]
pub struct FsStore {
    dir: std::path::PathBuf,
}

impl FsStore {
    /// Open (creating if needed) the log directory.
    pub fn open(dir: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FsStore { dir })
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.dir.join(name)
    }

    /// Best-effort directory fsync so renames/creates survive power loss.
    fn sync_dir(&self) {
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl WalStore for FsStore {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_owned());
                }
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn create(&mut self, name: &str) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        self.sync_dir();
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?
            .sync_data()
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))?;
        self.sync_dir();
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))?;
        self.sync_dir();
        Ok(())
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }
}

fn segment_name(shard: Option<u32>, seq: u64) -> String {
    match shard {
        Some(k) => format!("wal-s{k}-{seq:08}.seg"),
        None => format!("wal-{seq:08}.seg"),
    }
}

fn snapshot_name(shard: Option<u32>, seq: u64) -> String {
    match shard {
        Some(k) => format!("snap-s{k}-{seq:08}.scdb"),
        None => format!("snap-{seq:08}.scdb"),
    }
}

fn tmp_name(shard: Option<u32>, seq: u64) -> String {
    match shard {
        Some(k) => format!("snap-s{k}-{seq:08}.tmp"),
        None => format!("snap-{seq:08}.tmp"),
    }
}

/// Parse a WAL file name into `(is_segment, shard, seq)`. Legacy
/// single-shard files (`wal-00000001.seg`) carry `shard = None`;
/// range-sharded files (`wal-s2-00000001.seg`) carry their shard index.
fn parse_name(name: &str) -> Option<(bool, Option<u32>, u64)> {
    let (is_segment, rest) = if let Some(rest) = name
        .strip_prefix("wal-")
        .and_then(|r| r.strip_suffix(".seg"))
    {
        (true, rest)
    } else if let Some(rest) = name
        .strip_prefix("snap-")
        .and_then(|r| r.strip_suffix(".scdb"))
    {
        (false, rest)
    } else {
        return None;
    };
    if let Some(sharded) = rest.strip_prefix('s') {
        let (shard, seq) = sharded.split_once('-')?;
        return Some((is_segment, Some(shard.parse().ok()?), seq.parse().ok()?));
    }
    rest.parse().ok().map(|seq| (is_segment, None, seq))
}

/// Parse a checkpoint staging file name into `(shard, seq)`.
fn parse_tmp_name(name: &str) -> Option<(Option<u32>, u64)> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".tmp")?;
    if let Some(sharded) = rest.strip_prefix('s') {
        let (shard, seq) = sharded.split_once('-')?;
        return Some((Some(shard.parse().ok()?), seq.parse().ok()?));
    }
    rest.parse().ok().map(|seq| (None, seq))
}

/// How many write shards the files on `store` describe: `Some(k + 1)`
/// when shard-suffixed files up to `wal-sk-*` exist, `Some(1)` when only
/// legacy unsharded files exist, `None` on an empty (fresh) medium.
pub fn discover_shard_count(store: &dyn WalStore) -> io::Result<Option<u32>> {
    let mut max_shard: Option<u32> = None;
    let mut legacy = false;
    for name in store.list()? {
        match parse_name(&name).map(|(_, shard, _)| shard) {
            Some(Some(k)) => max_shard = Some(max_shard.map_or(k, |m| m.max(k))),
            Some(None) => legacy = true,
            None => {}
        }
    }
    Ok(match (max_shard, legacy) {
        (Some(k), _) => Some(k + 1),
        (None, true) => Some(1),
        (None, false) => None,
    })
}

/// A cloneable [`WalStore`] handle: the same underlying medium shared by
/// several [`DurableWal`] instances (one per write shard), serialized by
/// a mutex. Each shard's WAL touches only its own `wal-s<k>-*` /
/// `snap-s<k>-*` files, so the mutex only arbitrates medium access, not
/// file ownership.
pub struct SharedStore {
    inner: std::sync::Arc<std::sync::Mutex<Box<dyn WalStore>>>,
}

impl Clone for SharedStore {
    fn clone(&self) -> Self {
        SharedStore {
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore").finish_non_exhaustive()
    }
}

impl SharedStore {
    /// Wrap `store` for sharing across shard WALs.
    pub fn new(store: Box<dyn WalStore>) -> Self {
        SharedStore {
            inner: std::sync::Arc::new(std::sync::Mutex::new(store)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn WalStore>> {
        // A panic while holding the store lock poisons it; the store
        // itself holds no invariant across calls, so recover the guard.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl WalStore for SharedStore {
    fn list(&self) -> io::Result<Vec<String>> {
        self.lock().list()
    }
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.lock().read(name)
    }
    fn create(&mut self, name: &str) -> io::Result<()> {
        self.lock().create(name)
    }
    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.lock().append(name, data)
    }
    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.lock().sync(name)
    }
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.lock().truncate(name, len)
    }
    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.lock().remove(name)
    }
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.lock().rename(from, to)
    }
    fn size(&self, name: &str) -> io::Result<u64> {
        self.lock().size(name)
    }
}

/// What a fresh open found on the medium.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecoveryReport {
    /// Segments scanned for replay (stale pre-snapshot segments excluded).
    pub segments_scanned: usize,
    /// Clean log records decoded across those segments.
    pub records_decoded: usize,
    /// Bytes physically cut off a torn or corrupt segment tail.
    pub bytes_truncated: u64,
    /// True when the cut was a CRC mismatch (bit rot) rather than a short
    /// frame (torn write).
    pub corrupt_tail: bool,
    /// Snapshot files discarded because their framing failed validation.
    pub snapshots_discarded: usize,
    /// Sequence number of the snapshot loaded, if any.
    pub snapshot_seq: Option<u64>,
}

/// Recovery output: the chosen snapshot's frame payloads (interpreted by
/// the caller), the raw log suffix, and the scan report.
#[derive(Debug)]
pub struct WalRecovery {
    /// Frame payloads of the newest valid snapshot, if one was found.
    pub snapshot: Option<Vec<Bytes>>,
    /// Log records newer than the snapshot, in append order. Includes
    /// unsealed tails — the caller applies commit-gated replay.
    pub records: Vec<LogRecord>,
    /// Scan statistics.
    pub report: WalRecoveryReport,
}

/// Statistics from a completed checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Bytes in the snapshot file (including framing).
    pub snapshot_bytes: u64,
    /// Sealed segments deleted.
    pub segments_removed: usize,
    /// Sequence number of the new snapshot / active segment.
    pub seq: u64,
}

/// How far the log has drifted from its last durable anchors — the WAL
/// half of `Db::health_report()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalLag {
    /// Records appended since the last checkpoint (recovery replay cost
    /// grows with this; seeded with the replayed-suffix length on open).
    pub records_since_checkpoint: u64,
    /// Bytes appended since the last fsync (the at-risk window under
    /// `EveryN` / `OnCheckpoint` policies; 0 under `Always`).
    pub unsynced_bytes: u64,
    /// Bytes in the active segment so far.
    pub active_segment_bytes: u64,
    /// Sequence number of the active segment.
    pub active_seq: u64,
}

const MAX_IO_RETRIES: u32 = 5;

/// The disk-backed segmented write-ahead log.
pub struct DurableWal {
    store: Box<dyn WalStore>,
    policy: FsyncPolicy,
    segment_bytes: u64,
    active_seq: u64,
    active_len: u64,
    seals_since_sync: u32,
    next_txn: u64,
    records_since_checkpoint: u64,
    unsynced_bytes: u64,
    /// Stage stamps of the most recent [`DurableWal::append_sealed`]:
    /// pure append I/O vs fsync time, reset at append entry so the
    /// caller can decompose its commit latency (see
    /// [`DurableWal::last_stage_ns`]).
    last_append_ns: u64,
    last_fsync_ns: u64,
    /// Batch correlation id for the in-flight group-commit flush (0 =
    /// none). While set, `append_sealed` and `sync` stamp their flight-
    /// recorder events with `batch_id`, so one query over `sys.events`
    /// reconstructs a batch's append→fsync journey. Checkpoint syncs,
    /// source/index registrations, and recovery probes run with it
    /// cleared and emit no per-batch events.
    batch_ctx: u64,
    /// Write-shard index this log belongs to. `None` keeps the legacy
    /// unsharded file names (`wal-00000001.seg`); `Some(k)` prefixes
    /// every file with the shard (`wal-s<k>-00000001.seg`) and scopes
    /// recovery, truncation, and checkpoint pruning to that prefix.
    shard: Option<u32>,
}

impl std::fmt::Debug for DurableWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableWal")
            .field("policy", &self.policy)
            .field("segment_bytes", &self.segment_bytes)
            .field("active_seq", &self.active_seq)
            .field("active_len", &self.active_len)
            .finish()
    }
}

impl DurableWal {
    /// Open a log on `store`, recovering whatever is already there.
    /// Returns the ready-to-append log plus the [`WalRecovery`] the
    /// caller replays into its state. Uses the legacy unsharded file
    /// names; a range-sharded write path opens one
    /// [`DurableWal::open_shard`] per shard instead.
    pub fn open(
        store: Box<dyn WalStore>,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<(DurableWal, WalRecovery), TxnError> {
        Self::open_shard(store, policy, segment_bytes, None)
    }

    /// [`DurableWal::open`] scoped to one write shard: only files with
    /// the shard's name prefix are recovered, truncated, or swept, so
    /// several shard WALs can share one medium (see [`SharedStore`])
    /// and even open in parallel.
    pub fn open_shard(
        mut store: Box<dyn WalStore>,
        policy: FsyncPolicy,
        segment_bytes: u64,
        shard: Option<u32>,
    ) -> Result<(DurableWal, WalRecovery), TxnError> {
        let names = store.list().map_err(|e| TxnError::io("list log dir", &e))?;
        let mut segments: Vec<u64> = Vec::new();
        let mut snapshots: Vec<u64> = Vec::new();
        for name in &names {
            match parse_name(name) {
                Some((true, s, seq)) if s == shard => segments.push(seq),
                Some((false, s, seq)) if s == shard => snapshots.push(seq),
                Some(_) => {} // another shard's file — not ours to touch
                None => {
                    // Leftover temp file from a crashed checkpoint (or
                    // foreign debris): a snapshot only counts once its
                    // final name is installed by the rename. Only our
                    // own shard's staging files are swept.
                    if parse_tmp_name(name).map(|(s, _)| s) == Some(shard) {
                        let _ = store.remove(name);
                    }
                }
            }
        }
        segments.sort_unstable();
        snapshots.sort_unstable();

        let mut report = WalRecoveryReport::default();

        // Newest snapshot whose framing validates wins; invalid ones are
        // dropped (they never finished or rotted on the medium).
        let mut snapshot: Option<Vec<Bytes>> = None;
        while let Some(seq) = snapshots.pop() {
            let name = snapshot_name(shard, seq);
            let data = store
                .read(&name)
                .map_err(|e| TxnError::io(format!("read {name}"), &e))?;
            let (frames, tail) = read_frames(&data);
            if tail.truncated_bytes == 0 && !frames.is_empty() {
                report.snapshot_seq = Some(seq);
                scdb_obs::event(
                    "txn",
                    "recovery.snapshot",
                    &[
                        ("seq", F::U64(seq)),
                        ("frames", F::U64(frames.len() as u64)),
                    ],
                );
                snapshot = Some(frames);
                // Older snapshots are shadowed; clean them up.
                for old in snapshots.drain(..) {
                    let _ = store.remove(&snapshot_name(shard, old));
                }
                break;
            }
            report.snapshots_discarded += 1;
            scdb_obs::event("txn", "recovery.snapshot_drop", &[("seq", F::U64(seq))]);
            scdb_obs::warn(format!(
                "wal: snapshot {name} failed validation ({} clean frame(s), \
                 {} byte(s) unreadable) — falling back",
                tail.frames, tail.truncated_bytes
            ));
            let _ = store.remove(&name);
        }
        let snap_seq = report.snapshot_seq.unwrap_or(0);

        // Segments older than the snapshot are already reflected in it
        // (the checkpoint crashed before deleting them).
        segments.retain(|&seq| {
            if seq < snap_seq {
                let _ = store.remove(&segment_name(shard, seq));
                false
            } else {
                true
            }
        });

        // Replay the survivors front to back, stopping at the first torn
        // or corrupt tail; everything after a cut is void.
        let mut records: Vec<LogRecord> = Vec::new();
        let mut cut_at: Option<usize> = None;
        for (idx, &seq) in segments.iter().enumerate() {
            let name = segment_name(shard, seq);
            let data = store
                .read(&name)
                .map_err(|e| TxnError::io(format!("read {name}"), &e))?;
            let (frames, tail) = read_frames(&data);
            report.segments_scanned += 1;
            // Keep only frames whose payloads also decode as records: a
            // framed-but-undecodable payload counts as corruption too.
            let mut clean = 0u64;
            let mut bad_payload = false;
            for payload in frames {
                let mut cursor = payload.clone();
                match decode_record(&mut cursor, records.len()) {
                    Ok(r) => {
                        records.push(r);
                        clean += (crate::frame::FRAME_HEADER + payload.len()) as u64;
                    }
                    Err(_) => {
                        bad_payload = true;
                        break;
                    }
                }
            }
            report.records_decoded = records.len();
            scdb_obs::event(
                "txn",
                "recovery.segment",
                &[
                    ("seq", F::U64(seq)),
                    ("records", F::U64(records.len() as u64)),
                ],
            );
            if tail.truncated_bytes > 0 || bad_payload {
                let keep = clean;
                let cut = data.len() as u64 - keep;
                report.bytes_truncated += cut;
                report.corrupt_tail |= tail.corrupt || bad_payload;
                store
                    .truncate(&name, keep)
                    .map_err(|e| TxnError::io(format!("truncate {name}"), &e))?;
                let corrupt = tail.corrupt || bad_payload;
                scdb_obs::event(
                    "txn",
                    "recovery.truncated",
                    &[
                        ("seq", F::U64(seq)),
                        ("bytes", F::U64(cut)),
                        ("corrupt", F::U64(corrupt as u64)),
                    ],
                );
                scdb_obs::warn(format!(
                    "wal: cut {cut} byte(s) of {} tail from {name} during recovery",
                    if corrupt { "corrupt" } else { "torn" },
                ));
                cut_at = Some(idx);
                break;
            }
        }
        if let Some(idx) = cut_at {
            // Segments after a cut postdate lost bytes; drop them.
            for &seq in &segments[idx + 1..] {
                let name = segment_name(shard, seq);
                if let Ok(extra) = store.size(&name) {
                    report.bytes_truncated += extra;
                }
                let _ = store.remove(&name);
            }
            segments.truncate(idx + 1);
        }
        if report.bytes_truncated > 0 {
            scdb_obs::metrics().add("txn.wal.truncated_bytes", report.bytes_truncated);
        }

        let active_seq = segments.last().copied().unwrap_or(snap_seq.max(1));
        let active_name = segment_name(shard, active_seq);
        store
            .create(&active_name)
            .map_err(|e| TxnError::io(format!("create {active_name}"), &e))?;
        let active_len = store
            .size(&active_name)
            .map_err(|e| TxnError::io(format!("stat {active_name}"), &e))?;

        let max_txn = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Write { txn, .. }
                | LogRecord::Commit { txn }
                | LogRecord::Abort { txn }
                | LogRecord::IngestRow { txn, .. }
                | LogRecord::DiscoverLinks { txn } => Some(*txn),
                LogRecord::CommitGroup { txns, .. } => txns.iter().copied().max(),
                _ => None,
            })
            .max()
            .unwrap_or(0);

        // One summary event carrying the whole report, so a
        // `WalRecoveryReport` can be rebuilt from the event stream alone.
        scdb_obs::event(
            "txn",
            "recovery.scan",
            &[
                ("shard", F::U64(u64::from(shard.unwrap_or(0)))),
                ("segments", F::U64(report.segments_scanned as u64)),
                ("records", F::U64(report.records_decoded as u64)),
                ("bytes_cut", F::U64(report.bytes_truncated)),
                ("corrupt", F::U64(report.corrupt_tail as u64)),
                ("snap_drops", F::U64(report.snapshots_discarded as u64)),
                ("snapshot_seq", F::U64(report.snapshot_seq.unwrap_or(0))),
                ("has_snapshot", F::U64(report.snapshot_seq.is_some() as u64)),
            ],
        );

        let wal = DurableWal {
            store,
            policy,
            segment_bytes: segment_bytes.max(1),
            active_seq,
            active_len,
            seals_since_sync: 0,
            next_txn: max_txn + 1,
            // The replayed suffix is exactly what the next checkpoint
            // will fold in — seed the lag with it.
            records_since_checkpoint: records.len() as u64,
            unsynced_bytes: 0,
            last_append_ns: 0,
            last_fsync_ns: 0,
            batch_ctx: 0,
            shard,
        };
        let recovery = WalRecovery {
            snapshot,
            records,
            report,
        };
        Ok((wal, recovery))
    }

    /// Current drift from the last checkpoint / fsync (see [`WalLag`]).
    pub fn lag(&self) -> WalLag {
        WalLag {
            records_since_checkpoint: self.records_since_checkpoint,
            unsynced_bytes: self.unsynced_bytes,
            active_segment_bytes: self.active_len,
            active_seq: self.active_seq,
        }
    }

    /// Stage stamps of the most recent append: `(append_ns, fsync_ns)`
    /// — pure append I/O time vs fsync time (0 when the policy issued
    /// no fsync). Both reset at [`DurableWal::append_sealed`] entry, so
    /// read them right after the append whose latency you are
    /// decomposing (the group-commit committer does).
    pub fn last_stage_ns(&self) -> (u64, u64) {
        (self.last_append_ns, self.last_fsync_ns)
    }

    /// The fsync policy in effect.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Bytes appended to the active segment so far.
    pub fn active_len(&self) -> u64 {
        self.active_len
    }

    /// Set (non-zero) or clear (0) the batch correlation id stamped on
    /// the `("txn", "wal.append")` / `("txn", "wal.fsync")` events of
    /// subsequent appends. The group-commit committer brackets each
    /// flush with set/clear so only batch I/O carries a `batch_id`.
    pub fn set_batch_context(&mut self, batch_id: u64) {
        self.batch_ctx = batch_id;
    }

    /// Mint a fresh transaction id for a curation-pipeline transaction.
    /// Seeded past the highest id seen during recovery so replayable ids
    /// never collide within one log lifetime.
    pub fn next_txn_id(&mut self) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        id
    }

    fn retry<T>(
        &mut self,
        context: &str,
        mut op: impl FnMut(&mut Box<dyn WalStore>) -> io::Result<T>,
    ) -> Result<T, TxnError> {
        let mut attempt = 0;
        loop {
            match op(&mut self.store) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < MAX_IO_RETRIES => {
                    attempt += 1;
                    scdb_obs::metrics().inc("txn.wal.retries");
                    // Bounded linear backoff: transient EINTR-style
                    // failures clear in microseconds; anything persistent
                    // escalates after MAX_IO_RETRIES.
                    std::thread::sleep(std::time::Duration::from_micros(50 * attempt as u64));
                }
                Err(e) => return Err(TxnError::io(context, &e)),
            }
        }
    }

    /// Append a sealed group of records (a transaction's writes plus its
    /// commit seal, or a single auto-committed record) as one framed
    /// batch, then apply the fsync policy. On error the in-memory length
    /// is resynced from the medium, so a partial (torn) append leaves the
    /// log consistent with what recovery will see.
    pub fn append_sealed(&mut self, records: &[LogRecord]) -> Result<(), TxnError> {
        self.last_append_ns = 0;
        self.last_fsync_ns = 0;
        let mut buf = BytesMut::new();
        for r in records {
            let mut payload = BytesMut::new();
            encode_record(&mut payload, r);
            write_frame(&mut buf, payload.freeze().as_slice());
        }
        let data = buf.freeze();
        let name = segment_name(self.shard, self.active_seq);
        let start = Instant::now();
        let appended = self.retry(&format!("append {name}"), |s| {
            s.append(&name, data.as_slice())
        });
        if let Err(e) = appended {
            // A torn append may have written a prefix; resync so future
            // appends land where the medium actually is.
            if let Ok(len) = self.store.size(&name) {
                self.active_len = len;
            }
            return Err(e);
        }
        let append_ns = start.elapsed().as_nanos() as u64;
        scdb_obs::metrics().observe("txn.append_ns", append_ns);
        self.last_append_ns = append_ns;
        self.active_len += data.len() as u64;
        self.records_since_checkpoint += records.len() as u64;
        self.unsynced_bytes += data.len() as u64;
        scdb_obs::metrics().add("txn.wal.records", records.len() as u64);
        scdb_obs::metrics().add("txn.wal.bytes", data.len() as u64);
        if self.batch_ctx != 0 {
            scdb_obs::event(
                "txn",
                "wal.append",
                &[
                    ("batch_id", F::U64(self.batch_ctx)),
                    ("records", F::U64(records.len() as u64)),
                    ("bytes", F::U64(data.len() as u64)),
                    ("ns", F::U64(append_ns)),
                ],
            );
        }

        let synced = match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EveryN(n) => {
                self.seals_since_sync += 1;
                if self.seals_since_sync >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::OnCheckpoint => Ok(()),
        };
        if let Err(e) = synced {
            // The batch landed on the medium but its durability ack
            // failed, so the caller will report an error: scrub the
            // appended suffix, or a *later* successful sync (e.g. after
            // degraded-mode recovery) would silently resurrect a batch
            // every producer was told had failed. Earlier bytes in the
            // policy's unsynced window belong to acked-under-EveryN
            // records and stay pending.
            let pre_append = self.active_len - data.len() as u64;
            let _ = self.store.truncate(&name, pre_append);
            if let Ok(len) = self.store.size(&name) {
                self.active_len = len;
            }
            self.records_since_checkpoint = self
                .records_since_checkpoint
                .saturating_sub(records.len() as u64);
            self.unsynced_bytes = self.unsynced_bytes.saturating_sub(data.len() as u64);
            return Err(e);
        }
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Group-commit flush: append a whole batch of sealed transactions
    /// — `batch_rows` row records plus their [`LogRecord::CommitGroup`]
    /// seal — as **one** [`DurableWal::append_sealed`] call, so the
    /// fsync policy fires once for the batch instead of once per row.
    /// Feeds the `txn.group_commit.*` metrics and emits one
    /// `("txn", "group_commit.flush")` flight-recorder event.
    ///
    /// Like `append_sealed`, the batch lands in the active segment as a
    /// single contiguous append (rotation happens only *after*), so a
    /// batch never spans WAL segments.
    pub fn append_group(
        &mut self,
        records: &[LogRecord],
        batch_rows: usize,
    ) -> Result<(), TxnError> {
        let start = Instant::now();
        let fsyncs_before = scdb_obs::metrics().counter("txn.wal.fsyncs").get();
        self.append_sealed(records)?;
        let flush_ns = start.elapsed().as_nanos() as u64;
        let fsyncs = scdb_obs::metrics().counter("txn.wal.fsyncs").get() - fsyncs_before;
        // Fsyncs a per-record committer would have issued for the same
        // rows under the current policy, minus what this flush actually
        // cost — the amortization the group buys.
        let would_have = match self.policy {
            FsyncPolicy::Always => batch_rows as u64,
            FsyncPolicy::EveryN(n) => batch_rows as u64 / u64::from(n.max(1)),
            FsyncPolicy::OnCheckpoint => 0,
        };
        let saved = would_have.saturating_sub(fsyncs);
        let m = scdb_obs::metrics();
        m.observe("txn.group_commit.batch_records", batch_rows as u64);
        m.observe("txn.group_commit.flush_ns", flush_ns);
        m.add("txn.group_commit.fsyncs_saved", saved);
        m.inc("txn.group_commit.flushes");
        scdb_obs::event(
            "txn",
            "group_commit.flush",
            &[
                ("batch_id", F::U64(self.batch_ctx)),
                ("rows", F::U64(batch_rows as u64)),
                ("fsyncs", F::U64(fsyncs)),
                ("saved", F::U64(saved)),
                ("ns", F::U64(flush_ns)),
            ],
        );
        Ok(())
    }

    /// Force the active segment to stable storage.
    pub fn sync(&mut self) -> Result<(), TxnError> {
        let name = segment_name(self.shard, self.active_seq);
        let start = Instant::now();
        self.retry(&format!("sync {name}"), |s| s.sync(&name))?;
        let fsync_ns = start.elapsed().as_nanos() as u64;
        scdb_obs::metrics().observe("txn.fsync_ns", fsync_ns);
        // Accumulate (not overwrite): a rotation inside one append can
        // fsync twice, and both belong to that append's fsync stage.
        self.last_fsync_ns += fsync_ns;
        self.seals_since_sync = 0;
        self.unsynced_bytes = 0;
        scdb_obs::metrics().inc("txn.wal.fsyncs");
        if self.batch_ctx != 0 {
            scdb_obs::event(
                "txn",
                "wal.fsync",
                &[
                    ("batch_id", F::U64(self.batch_ctx)),
                    ("ns", F::U64(fsync_ns)),
                ],
            );
        }
        Ok(())
    }

    /// Seal the active segment (fsync) and open the next one.
    fn rotate(&mut self) -> Result<(), TxnError> {
        self.sync()?;
        scdb_obs::event(
            "txn",
            "segment.seal",
            &[
                ("seq", F::U64(self.active_seq)),
                ("bytes", F::U64(self.active_len)),
            ],
        );
        self.active_seq += 1;
        self.active_len = 0;
        let name = segment_name(self.shard, self.active_seq);
        self.retry(&format!("create {name}"), |s| s.create(&name))?;
        scdb_obs::metrics().inc("txn.wal.segments");
        scdb_obs::event("txn", "segment.rotate", &[("seq", F::U64(self.active_seq))]);
        Ok(())
    }

    /// Run a checkpoint: rotate, install the snapshot (built from the
    /// caller-supplied frame payloads) atomically, then delete the sealed
    /// segments and older snapshots it supersedes.
    pub fn checkpoint(
        &mut self,
        snapshot_payloads: &[Vec<u8>],
    ) -> Result<CheckpointStats, TxnError> {
        self.rotate()?;
        let seq = self.active_seq;
        let tmp = tmp_name(self.shard, seq);
        let final_name = snapshot_name(self.shard, seq);
        let mut buf = BytesMut::new();
        for p in snapshot_payloads {
            write_frame(&mut buf, p);
        }
        let data = buf.freeze();
        // Clean slate in case a previous checkpoint died mid-write.
        let _ = self.store.remove(&tmp);
        // Phase-timed checkpoint: write → sync → rename → prune, each
        // feeding its own histogram and emitting a phase event.
        let phase = |kind: &str, ns: u64, extra: u64| {
            scdb_obs::metrics().observe(&format!("txn.checkpoint.{kind}_ns"), ns);
            scdb_obs::event(
                "txn",
                &format!("checkpoint.{kind}"),
                &[
                    ("seq", F::U64(seq)),
                    ("ns", F::U64(ns)),
                    ("n", F::U64(extra)),
                ],
            );
        };
        let staged = (|| -> Result<(), TxnError> {
            let start = Instant::now();
            self.retry(&format!("append {tmp}"), |s| {
                s.append(&tmp, data.as_slice())
            })?;
            phase(
                "write",
                start.elapsed().as_nanos() as u64,
                data.len() as u64,
            );
            let start = Instant::now();
            self.retry(&format!("sync {tmp}"), |s| s.sync(&tmp))?;
            phase("sync", start.elapsed().as_nanos() as u64, 0);
            let start = Instant::now();
            self.retry(&format!("rename {tmp}"), |s| s.rename(&tmp, &final_name))?;
            phase("rename", start.elapsed().as_nanos() as u64, 0);
            Ok(())
        })();
        if let Err(e) = staged {
            // A failed checkpoint must not leave its staging file around:
            // deleting it keeps the previous snapshot the recovery root
            // (open() also sweeps stale `*.tmp` after a crash).
            let _ = self.store.remove(&tmp);
            return Err(e);
        }

        // Everything before the new active segment is now covered.
        let start = Instant::now();
        let names = self
            .store
            .list()
            .map_err(|e| TxnError::io("list log dir", &e))?;
        let mut removed = 0usize;
        for name in names {
            match parse_name(&name) {
                Some((true, shard, s)) if shard == self.shard && s < seq => {
                    let _ = self.store.remove(&name);
                    scdb_obs::event("txn", "segment.prune", &[("seq", F::U64(s))]);
                    removed += 1;
                }
                Some((false, shard, s)) if shard == self.shard && s < seq => {
                    let _ = self.store.remove(&name);
                }
                _ => {}
            }
        }
        phase("prune", start.elapsed().as_nanos() as u64, removed as u64);
        self.records_since_checkpoint = 0;
        scdb_obs::metrics().inc("txn.checkpoints");
        scdb_obs::metrics().add("txn.checkpoint.snapshot_bytes", data.len() as u64);
        Ok(CheckpointStats {
            snapshot_bytes: data.len() as u64,
            segments_removed: removed,
            seq,
        })
    }
}

impl Drop for DurableWal {
    fn drop(&mut self) {
        // Under EveryN/OnCheckpoint an unsynced tail may be pending; a
        // clean shutdown should not lose it.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::Value;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scdb-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_rec(txn: u64, key: u64, v: i64) -> LogRecord {
        LogRecord::Write {
            txn,
            key,
            value: Some(Value::Int(v)),
        }
    }

    #[test]
    fn fs_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let store = Box::new(FsStore::open(&dir).unwrap());
            let (mut wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
            assert!(rec.records.is_empty());
            wal.append_sealed(&[write_rec(1, 10, 100), LogRecord::Commit { txn: 1 }])
                .unwrap();
            wal.append_sealed(&[write_rec(2, 20, 200)]).unwrap(); // unsealed
        }
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (_wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.report.bytes_truncated, 0);
        assert!(rec.snapshot.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fs_torn_tail_is_cut_and_reported() {
        let dir = tmpdir("torn");
        {
            let store = Box::new(FsStore::open(&dir).unwrap());
            let (mut wal, _) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
            wal.append_sealed(&[write_rec(1, 1, 1), LogRecord::Commit { txn: 1 }])
                .unwrap();
            wal.append_sealed(&[write_rec(2, 2, 2), LogRecord::Commit { txn: 2 }])
                .unwrap();
        }
        // Tear three bytes off the segment by hand.
        let seg = dir.join(segment_name(None, 1));
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (_wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(rec.records.len(), 3, "txn 2's commit frame was torn");
        assert!(rec.report.bytes_truncated > 0);
        assert!(!rec.report.corrupt_tail, "short tail is torn, not corrupt");
        // The cut is physical: a third open sees a clean log.
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (_wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(rec.report.bytes_truncated, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spans_segments() {
        let dir = tmpdir("rotate");
        {
            let store = Box::new(FsStore::open(&dir).unwrap());
            // Tiny segments: every append rotates.
            let (mut wal, _) = DurableWal::open(store, FsyncPolicy::Always, 64).unwrap();
            for i in 0..10u64 {
                wal.append_sealed(&[write_rec(i, i, i as i64), LogRecord::Commit { txn: i }])
                    .unwrap();
            }
        }
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (_wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 64).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert!(rec.report.segments_scanned > 1, "log actually rotated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovers_snapshot_plus_suffix() {
        let dir = tmpdir("ckpt");
        {
            let store = Box::new(FsStore::open(&dir).unwrap());
            let (mut wal, _) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
            wal.append_sealed(&[write_rec(1, 1, 1), LogRecord::Commit { txn: 1 }])
                .unwrap();
            let stats = wal
                .checkpoint(&[
                    b"snapshot-payload-1".to_vec(),
                    b"snapshot-payload-2".to_vec(),
                ])
                .unwrap();
            assert_eq!(stats.segments_removed, 1);
            wal.append_sealed(&[write_rec(2, 2, 2), LogRecord::Commit { txn: 2 }])
                .unwrap();
        }
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (_wal, rec) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
        let snap = rec.snapshot.expect("snapshot found");
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].as_slice(), b"snapshot-payload-1");
        assert_eq!(
            rec.records.len(),
            2,
            "only the post-checkpoint suffix replays"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn next_txn_id_resumes_past_recovered_ids() {
        let dir = tmpdir("txnid");
        {
            let store = Box::new(FsStore::open(&dir).unwrap());
            let (mut wal, _) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
            let id = wal.next_txn_id();
            assert_eq!(id, 1);
            wal.append_sealed(&[write_rec(id, 1, 1), LogRecord::Commit { txn: id }])
                .unwrap();
        }
        let store = Box::new(FsStore::open(&dir).unwrap());
        let (mut wal, _) = DurableWal::open(store, FsyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(wal.next_txn_id(), 2, "id counter resumes after recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
