//! Runtime fault injection for the durable log.
//!
//! The crash matrix replays faults *offline*: it forks a
//! [`FailpointLog`](crate::FailpointLog), mangles the bytes, and checks
//! that a fresh `open()` recovers. This module is the *online*
//! complement — a [`FaultInjector`] wraps any [`WalStore`] and fires a
//! deterministic [`FaultPlan`] against a **live** database: the nth
//! fsync fails, the medium fills up after a byte budget, writes fail
//! with a seeded probability, or an append panics on the committer
//! thread. That lets tests (and the `e_faults` bench) observe how the
//! engine *behaves while the fault is happening* — degraded mode, fast
//! failing writes, supervised thread restarts — not just whether a
//! reopened process recovers afterwards.
//!
//! A [`FaultHandle`] cloned from the plan shares the armed schedule, so
//! a test can [`clear`](FaultHandle::clear) the fault on a running `Db`
//! and watch the recovery probe bring the node back to normal mode.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use scdb_obs::FieldValue as F;

use crate::durable::WalStore;

/// The armed fault schedule plus firing counters. Shared between the
/// [`FaultInjector`] (inside the WAL) and every [`FaultHandle`].
#[derive(Debug, Default)]
struct InjectState {
    armed: Mutex<Schedule>,
    /// Total faults fired since the plan was created (never reset).
    injected: AtomicU64,
}

#[derive(Debug, Default)]
struct Schedule {
    /// One-shot: fail the nth `sync` call (1-based), then disarm.
    fail_nth_fsync: Option<u64>,
    /// Persistent: fail every `sync` call from the nth (1-based) on,
    /// until [`FaultHandle::clear`].
    fail_fsyncs_from: Option<u64>,
    /// Byte budget: appends beyond this total write a partial prefix
    /// and then fail with `StorageFull`, until cleared.
    enospc_after_bytes: Option<u64>,
    /// Probability in `[0, 1]` that any append fails, with the current
    /// xorshift state of the seeded generator.
    write_error: Option<(f64, u64)>,
    /// One-shot: panic on the nth `append` call (1-based). Fires on
    /// whichever thread performs the append — for group-commit ingest
    /// that is the committer thread.
    panic_on_nth_append: Option<u64>,
    /// `sync` calls observed.
    fsyncs: u64,
    /// `append` calls observed.
    appends: u64,
    /// Bytes successfully appended (counts injected partial prefixes).
    appended_bytes: u64,
}

/// What the injector decided to do for one store call, computed under
/// the schedule lock and executed after it is released (so a panic
/// never poisons the schedule).
enum Action {
    Pass,
    /// Fail with an unexplained (`Fatal`-class) error named `what`.
    Fail {
        what: &'static str,
    },
    /// Write only `keep` bytes of the append, then fail with ENOSPC.
    PartialThenFull {
        keep: usize,
    },
    Panic,
}

/// A deterministic schedule of storage faults to fire against a live
/// database, built with chained setters and handed to
/// `DbBuilder::fault_injection`:
///
/// ```
/// use scdb_txn::FaultPlan;
///
/// let plan = FaultPlan::new().fail_fsyncs_from(3);
/// let handle = plan.handle(); // keep to clear the fault later
/// # let _ = handle;
/// ```
///
/// All schedules compose: each store call is checked against every
/// armed fault (panic first, then probabilistic write errors, then the
/// byte budget, then fsync schedules).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Arc<InjectState>,
}

impl FaultPlan {
    /// An empty plan: injects nothing until a fault is armed.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fail the `n`th fsync (1-based) once, then disarm.
    pub fn fail_nth_fsync(self, n: u64) -> Self {
        self.state.armed.lock().unwrap().fail_nth_fsync = Some(n.max(1));
        self
    }

    /// Fail every fsync from the `n`th (1-based) onward, persistently,
    /// until [`FaultHandle::clear`] is called. This is the
    /// "persistent fsync failure" schedule: the WAL's bounded retry
    /// cannot clear it, so the node must trip to degraded mode.
    pub fn fail_fsyncs_from(self, n: u64) -> Self {
        self.state.armed.lock().unwrap().fail_fsyncs_from = Some(n.max(1));
        self
    }

    /// Simulate a full medium: once `budget` total bytes have been
    /// appended, further appends write only the remaining prefix and
    /// fail with [`io::ErrorKind::StorageFull`].
    pub fn enospc_after_bytes(self, budget: u64) -> Self {
        self.state.armed.lock().unwrap().enospc_after_bytes = Some(budget);
        self
    }

    /// Fail each append with probability `p` (clamped to `[0, 1]`),
    /// drawn from a deterministic generator seeded with `seed`.
    pub fn write_error_prob(self, p: f64, seed: u64) -> Self {
        let state = if seed == 0 { 0x9e3779b97f4a7c15 } else { seed };
        self.state.armed.lock().unwrap().write_error = Some((p.clamp(0.0, 1.0), state));
        self
    }

    /// Panic on the `n`th append (1-based), once. Under group-commit
    /// ingest the append happens on the committer thread, so this
    /// simulates a committer crash mid-batch.
    pub fn panic_on_nth_append(self, n: u64) -> Self {
        self.state.armed.lock().unwrap().panic_on_nth_append = Some(n.max(1));
        self
    }

    /// A handle onto this plan's shared state, for clearing faults and
    /// reading counters after the plan has been consumed by the
    /// builder.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            state: Arc::clone(&self.state),
        }
    }
}

/// A clone-able view onto a [`FaultPlan`]'s armed schedule — lets a
/// test clear the fault on a *running* database and watch it recover.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<InjectState>,
}

impl FaultHandle {
    /// Disarm every fault. Firing counters are preserved.
    pub fn clear(&self) {
        let mut armed = self.state.armed.lock().unwrap();
        armed.fail_nth_fsync = None;
        armed.fail_fsyncs_from = None;
        armed.enospc_after_bytes = None;
        armed.write_error = None;
        armed.panic_on_nth_append = None;
    }

    /// Total faults fired since the plan was created.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Bytes successfully appended through the injector so far —
    /// the position an [`FaultPlan::enospc_after_bytes`] budget is
    /// measured against, so a test can arm "the medium fills `n` bytes
    /// into the *next* write" on a live database.
    pub fn appended_bytes(&self) -> u64 {
        self.state.armed.lock().unwrap().appended_bytes
    }

    /// `sync` calls observed so far (failed ones included).
    pub fn fsyncs(&self) -> u64 {
        self.state.armed.lock().unwrap().fsyncs
    }
}

/// A [`WalStore`] decorator that fires a [`FaultPlan`] on the append
/// and fsync paths while delegating everything else untouched.
pub struct FaultInjector {
    store: Box<dyn WalStore>,
    state: Arc<InjectState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector").finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Wrap `store`, firing faults according to `plan`.
    pub fn new(store: Box<dyn WalStore>, plan: &FaultPlan) -> Self {
        FaultInjector {
            store,
            state: Arc::clone(&plan.state),
        }
    }

    /// Record one fired fault: counter, flight-recorder event, total.
    fn record(&self, op: &'static str, what: &'static str, name: &str) {
        self.state.injected.fetch_add(1, Ordering::Relaxed);
        scdb_obs::metrics().inc("core.fault.injected");
        scdb_obs::event(
            "txn",
            "fault.injected",
            &[
                ("op", F::Str(op.into())),
                ("fault", F::Str(what.into())),
                ("file", F::Str(name.into())),
            ],
        );
    }

    fn decide_append(&self, len: usize) -> Action {
        let mut armed = self.state.armed.lock().unwrap();
        armed.appends += 1;
        if let Some(n) = armed.panic_on_nth_append {
            if armed.appends >= n {
                armed.panic_on_nth_append = None;
                return Action::Panic;
            }
        }
        if let Some((p, ref mut rng)) = armed.write_error {
            // xorshift64* — deterministic per seed, independent of wall clock.
            let mut x = *rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *rng = x;
            let roll = (x >> 11) as f64 / (1u64 << 53) as f64;
            if roll < p {
                return Action::Fail {
                    what: "write-error",
                };
            }
        }
        if let Some(budget) = armed.enospc_after_bytes {
            let used = armed.appended_bytes;
            if used.saturating_add(len as u64) > budget {
                let keep = budget.saturating_sub(used).min(len as u64) as usize;
                armed.appended_bytes += keep as u64;
                return Action::PartialThenFull { keep };
            }
        }
        armed.appended_bytes += len as u64;
        Action::Pass
    }

    fn decide_sync(&self) -> Action {
        let mut armed = self.state.armed.lock().unwrap();
        armed.fsyncs += 1;
        if armed.fail_nth_fsync == Some(armed.fsyncs) {
            armed.fail_nth_fsync = None;
            return Action::Fail {
                what: "fsync-fail-once",
            };
        }
        if let Some(n) = armed.fail_fsyncs_from {
            if armed.fsyncs >= n {
                return Action::Fail { what: "fsync-fail" };
            }
        }
        Action::Pass
    }
}

impl WalStore for FaultInjector {
    fn list(&self) -> io::Result<Vec<String>> {
        self.store.list()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.store.read(name)
    }

    fn create(&mut self, name: &str) -> io::Result<()> {
        self.store.create(name)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        match self.decide_append(data.len()) {
            Action::Pass => self.store.append(name, data),
            Action::Fail { what } => {
                self.record("append", what, name);
                Err(io::Error::other(format!("injected {what}")))
            }
            Action::PartialThenFull { keep } => {
                if keep > 0 {
                    self.store.append(name, &data[..keep])?;
                }
                self.record("append", "enospc", name);
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected storage-full (byte budget exhausted)",
                ))
            }
            Action::Panic => {
                self.record("append", "panic", name);
                panic!("fault injection: panic on append of {name}");
            }
        }
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        match self.decide_sync() {
            Action::Pass => self.store.sync(name),
            Action::Fail { what } => {
                self.record("fsync", what, name);
                Err(io::Error::other(format!("injected {what}")))
            }
            // decide_sync never returns the append-only actions.
            Action::PartialThenFull { .. } | Action::Panic => unreachable!(),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.store.truncate(name, len)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.store.remove(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.store.rename(from, to)
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.store.size(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FailpointLog;

    fn injected(plan: &FaultPlan) -> FaultInjector {
        FaultInjector::new(Box::new(FailpointLog::new()), plan)
    }

    #[test]
    fn nth_fsync_fails_once() {
        let plan = FaultPlan::new().fail_nth_fsync(2);
        let handle = plan.handle();
        let mut store = injected(&plan);
        store.append("wal", b"abc").unwrap();
        store.sync("wal").unwrap();
        assert!(store.sync("wal").is_err());
        store.sync("wal").unwrap(); // one-shot: disarmed after firing
        assert_eq!(handle.injected(), 1);
    }

    #[test]
    fn persistent_fsync_failure_until_cleared() {
        let plan = FaultPlan::new().fail_fsyncs_from(1);
        let handle = plan.handle();
        let mut store = injected(&plan);
        for _ in 0..3 {
            assert!(store.sync("wal").is_err());
        }
        handle.clear();
        store.sync("wal").unwrap();
        assert_eq!(handle.injected(), 3);
    }

    #[test]
    fn enospc_writes_partial_prefix() {
        let plan = FaultPlan::new().enospc_after_bytes(4);
        let mut store = injected(&plan);
        store.append("wal", b"ab").unwrap();
        let err = store.append("wal", b"cdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Two bytes of budget remained: the prefix landed on the medium.
        assert_eq!(store.read("wal").unwrap(), b"abcd");
        // Budget stays exhausted for later writes.
        assert!(store.append("wal", b"x").is_err());
    }

    #[test]
    fn write_error_prob_is_deterministic() {
        let run = |seed| {
            let plan = FaultPlan::new().write_error_prob(0.5, seed);
            let mut store = injected(&plan);
            (0..32)
                .map(|_| store.append("wal", b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).iter().any(|&e| e), "p=0.5 over 32 draws fired");
        assert!(run(7).iter().any(|&e| !e), "p=0.5 over 32 draws passed");
    }

    #[test]
    fn panic_on_nth_append_fires_once() {
        let plan = FaultPlan::new().panic_on_nth_append(2);
        let handle = plan.handle();
        let mut store = injected(&plan);
        store.append("wal", b"a").unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.append("wal", b"b");
        }));
        assert!(boom.is_err());
        // Disarmed after firing; schedule lock was not poisoned.
        store.append("wal", b"c").unwrap();
        assert_eq!(handle.injected(), 1);
    }
}
