//! The per-source row store.
//!
//! Records append in arrival order (the natural order of a continuously
//! ingesting source, §4.2 "individual data sources may change over time"),
//! support in-place update and tombstone deletion, and feed schema
//! inference on every write so the "schema becomes part of the data" (§1).

use scdb_types::{Record, RecordId, SourceId, SourceSchema};

use crate::error::StorageError;
use crate::page::{PageConfig, TouchCounter};

/// Default cap on exact distinct-value tracking during schema inference.
pub const DEFAULT_DISTINCT_CAP: u64 = 4096;

/// An append-friendly, schema-flexible record store for one source.
#[derive(Debug)]
pub struct RowStore {
    source: SourceId,
    slots: Vec<Option<Record>>,
    live: usize,
    bytes: usize,
    schema: SourceSchema,
    pages: PageConfig,
    touches: TouchCounter,
}

impl RowStore {
    /// New store for `source` with the default page geometry.
    pub fn new(source: SourceId) -> Self {
        Self::with_pages(source, PageConfig::default())
    }

    /// New store with explicit page geometry (used by the OS.1 experiments
    /// to vary locality granularity).
    pub fn with_pages(source: SourceId, pages: PageConfig) -> Self {
        RowStore {
            source,
            slots: Vec::new(),
            live: 0,
            bytes: 0,
            schema: SourceSchema::new(DEFAULT_DISTINCT_CAP),
            pages,
            touches: TouchCounter::new(),
        }
    }

    /// The source this store manages.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Append a record, returning its id.
    pub fn append(&mut self, record: Record) -> RecordId {
        let offset = self.slots.len() as u64;
        self.schema.observe(&record);
        let size = record.approx_size();
        self.bytes += size;
        self.slots.push(Some(record));
        self.live += 1;
        let m = scdb_obs::metrics();
        m.inc("storage.rows_appended");
        m.add("storage.bytes_written", size as u64);
        RecordId::new(self.source, offset)
    }

    fn check(&self, id: RecordId) -> Result<usize, StorageError> {
        if id.source != self.source {
            return Err(StorageError::WrongSource {
                expected: self.source,
                got: id.source,
            });
        }
        let idx = id.offset as usize;
        match self.slots.get(idx) {
            Some(Some(_)) => Ok(idx),
            _ => Err(StorageError::NoSuchRecord(id)),
        }
    }

    /// Fetch a record, counting a page touch (physical order).
    pub fn get(&self, id: RecordId) -> Result<&Record, StorageError> {
        let idx = self.check(id)?;
        self.touches.touch(self.pages.page_of(idx as u64));
        scdb_obs::metrics().inc("storage.page_reads");
        Ok(self.slots[idx].as_ref().expect("checked live"))
    }

    /// Fetch without touching the locality counters (internal paths).
    pub fn peek(&self, id: RecordId) -> Option<&Record> {
        if id.source != self.source {
            return None;
        }
        self.slots.get(id.offset as usize)?.as_ref()
    }

    /// Replace a record in place.
    pub fn update(&mut self, id: RecordId, record: Record) -> Result<Record, StorageError> {
        let idx = self.check(id)?;
        self.schema.observe(&record);
        self.bytes += record.approx_size();
        let old = self.slots[idx].replace(record).expect("checked live");
        self.bytes = self.bytes.saturating_sub(old.approx_size());
        Ok(old)
    }

    /// Tombstone a record.
    pub fn delete(&mut self, id: RecordId) -> Result<Record, StorageError> {
        let idx = self.check(id)?;
        let old = self.slots[idx].take().expect("checked live");
        self.bytes = self.bytes.saturating_sub(old.approx_size());
        self.live -= 1;
        Ok(old)
    }

    /// Iterate live records in physical (arrival) order.
    pub fn scan(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        let source = self.source;
        self.slots.iter().enumerate().filter_map(move |(i, slot)| {
            slot.as_ref().map(|r| (RecordId::new(source, i as u64), r))
        })
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live records remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever appended (live + tombstoned).
    pub fn high_water(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Approximate live payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The inferred schema of this source.
    pub fn schema(&self) -> &SourceSchema {
        &self.schema
    }

    /// Page geometry in effect.
    pub fn pages(&self) -> PageConfig {
        self.pages
    }

    /// Locality counters accumulated by `get` calls.
    pub fn touches(&self) -> &TouchCounter {
        &self.touches
    }

    /// Reset locality counters (between experiment phases).
    pub fn reset_touches(&self) {
        self.touches.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::{SymbolTable, Value};

    fn store_with(n: u64) -> (RowStore, SymbolTable) {
        let mut syms = SymbolTable::new();
        let name = syms.intern("name");
        let mut s = RowStore::new(SourceId(0));
        for i in 0..n {
            s.append(Record::from_pairs([(name, Value::str(format!("r{i}")))]));
        }
        (s, syms)
    }

    #[test]
    fn append_get_roundtrip() {
        let (s, syms) = store_with(3);
        let id = RecordId::new(SourceId(0), 1);
        let r = s.get(id).unwrap();
        assert_eq!(r.get(syms.get("name").unwrap()), Some(&Value::str("r1")));
    }

    #[test]
    fn wrong_source_rejected() {
        let (s, _) = store_with(1);
        let err = s.get(RecordId::new(SourceId(9), 0)).unwrap_err();
        assert!(matches!(err, StorageError::WrongSource { .. }));
    }

    #[test]
    fn missing_record_rejected() {
        let (s, _) = store_with(1);
        assert!(matches!(
            s.get(RecordId::new(SourceId(0), 5)),
            Err(StorageError::NoSuchRecord(_))
        ));
    }

    #[test]
    fn delete_then_get_fails_and_scan_skips() {
        let (mut s, _) = store_with(3);
        let id = RecordId::new(SourceId(0), 1);
        s.delete(id).unwrap();
        assert!(s.get(id).is_err());
        assert!(s.delete(id).is_err());
        assert_eq!(s.len(), 2);
        assert_eq!(s.high_water(), 3);
        let offsets: Vec<u64> = s.scan().map(|(id, _)| id.offset).collect();
        assert_eq!(offsets, vec![0, 2]);
    }

    #[test]
    fn update_replaces_and_tracks_bytes() {
        let (mut s, mut syms) = store_with(1);
        let name = syms.intern("name");
        let id = RecordId::new(SourceId(0), 0);
        let before = s.bytes();
        let old = s
            .update(
                id,
                Record::from_pairs([(name, Value::str("a much longer replacement value"))]),
            )
            .unwrap();
        assert_eq!(old.get(name), Some(&Value::str("r0")));
        assert!(s.bytes() > before);
    }

    #[test]
    fn schema_tracks_appends_and_updates() {
        let (mut s, mut syms) = store_with(2);
        let dose = syms.intern("dose");
        s.append(Record::from_pairs([(dose, Value::Float(5.1))]));
        assert_eq!(s.schema().records_seen(), 3);
        assert!(s.schema().attr(dose).is_some());
    }

    #[test]
    fn touches_accumulate_per_page() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("a");
        let mut s = RowStore::with_pages(SourceId(0), PageConfig::new(4));
        for i in 0..8 {
            s.append(Record::from_pairs([(a, Value::Int(i))]));
        }
        // Two records on page 0, one on page 1.
        s.get(RecordId::new(SourceId(0), 0)).unwrap();
        s.get(RecordId::new(SourceId(0), 3)).unwrap();
        s.get(RecordId::new(SourceId(0), 4)).unwrap();
        assert_eq!(s.touches().total(), 3);
        assert_eq!(s.touches().distinct(), 2);
        s.reset_touches();
        assert_eq!(s.touches().total(), 0);
    }
}
