//! Columnar segments with lightweight compression.
//!
//! §3.1 asks whether "the relational model \[could\] be further decomposed in
//! non-linear and non-tabular form"; the first step is a columnar
//! decomposition whose encodings exploit the value distribution:
//! dictionary for low-cardinality strings, run-length for sorted/clustered
//! data, delta for monotone integers. The OS.1 experiment reports
//! compression ratios under clustered vs unclustered layouts — clustering
//! makes runs longer, which these encodings turn into bytes saved.

use std::collections::HashMap;
use std::sync::Arc;

use scdb_types::Value;

use crate::error::StorageError;

/// The encoding chosen for a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Values stored verbatim.
    Plain,
    /// Distinct values in a dictionary; data stored as u32 codes.
    Dictionary,
    /// `(value, run_length)` pairs.
    RunLength,
    /// Integers stored as deltas from the previous value (zig-zag sized).
    Delta,
}

/// A compressed, immutable column segment over heterogeneous values.
#[derive(Debug, Clone)]
pub enum ColumnSegment {
    /// Verbatim values.
    Plain(Vec<Value>),
    /// Dictionary-coded values.
    Dictionary {
        /// Distinct values, code = index.
        dict: Vec<Value>,
        /// One code per row.
        codes: Vec<u32>,
    },
    /// Run-length encoded values.
    RunLength(Vec<(Value, u32)>),
    /// Delta-encoded integers (first value absolute). Nulls are not
    /// representable here; the builder falls back when nulls are present.
    Delta {
        /// First absolute value.
        base: i64,
        /// Successive deltas.
        deltas: Vec<i64>,
    },
}

impl ColumnSegment {
    /// Build a segment, choosing the cheapest applicable encoding.
    pub fn build(values: &[Value]) -> Result<(Self, Encoding), StorageError> {
        if values.is_empty() {
            return Err(StorageError::EmptyColumn);
        }
        let mut candidates: Vec<(Encoding, usize)> = vec![(Encoding::Plain, plain_size(values))];

        if let Some(size) = dict_size(values) {
            candidates.push((Encoding::Dictionary, size));
        }
        candidates.push((Encoding::RunLength, rle_size(values)));
        if let Some(size) = delta_size(values) {
            candidates.push((Encoding::Delta, size));
        }
        let (enc, _) = candidates
            .into_iter()
            .min_by_key(|(_, s)| *s)
            .expect("non-empty candidates");
        Ok((Self::encode_as(values, enc), enc))
    }

    /// Encode with a specific encoding (panics if inapplicable; used by
    /// ablation benches which pre-check applicability).
    pub fn encode_as(values: &[Value], enc: Encoding) -> Self {
        match enc {
            Encoding::Plain => ColumnSegment::Plain(values.to_vec()),
            Encoding::Dictionary => {
                let mut dict: Vec<Value> = Vec::new();
                let mut index: HashMap<Value, u32> = HashMap::new();
                let codes = values
                    .iter()
                    .map(|v| {
                        *index.entry(v.clone()).or_insert_with(|| {
                            dict.push(v.clone());
                            (dict.len() - 1) as u32
                        })
                    })
                    .collect();
                ColumnSegment::Dictionary { dict, codes }
            }
            Encoding::RunLength => {
                let mut runs: Vec<(Value, u32)> = Vec::new();
                for v in values {
                    match runs.last_mut() {
                        Some((rv, n)) if rv == v && *n < u32::MAX => *n += 1,
                        _ => runs.push((v.clone(), 1)),
                    }
                }
                ColumnSegment::RunLength(runs)
            }
            Encoding::Delta => {
                let ints: Vec<i64> = values
                    .iter()
                    .map(|v| v.as_int().expect("delta requires ints"))
                    .collect();
                let base = ints[0];
                let deltas = ints.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect();
                ColumnSegment::Delta { base, deltas }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnSegment::Plain(v) => v.len(),
            ColumnSegment::Dictionary { codes, .. } => codes.len(),
            ColumnSegment::RunLength(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
            ColumnSegment::Delta { deltas, .. } => deltas.len() + 1,
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Random access by row index.
    pub fn get(&self, idx: usize) -> Option<Value> {
        match self {
            ColumnSegment::Plain(v) => v.get(idx).cloned(),
            ColumnSegment::Dictionary { dict, codes } => {
                codes.get(idx).map(|&c| dict[c as usize].clone())
            }
            ColumnSegment::RunLength(runs) => {
                let mut remaining = idx;
                for (v, n) in runs {
                    if remaining < *n as usize {
                        return Some(v.clone());
                    }
                    remaining -= *n as usize;
                }
                None
            }
            ColumnSegment::Delta { base, deltas } => {
                if idx > deltas.len() {
                    return None;
                }
                let mut acc = *base;
                for d in &deltas[..idx] {
                    acc = acc.wrapping_add(*d);
                }
                Some(Value::Int(acc))
            }
        }
    }

    /// Decode all rows.
    pub fn decode(&self) -> Vec<Value> {
        match self {
            ColumnSegment::Plain(v) => v.clone(),
            ColumnSegment::Dictionary { dict, codes } => {
                codes.iter().map(|&c| dict[c as usize].clone()).collect()
            }
            ColumnSegment::RunLength(runs) => {
                let mut out = Vec::with_capacity(self.len());
                for (v, n) in runs {
                    for _ in 0..*n {
                        out.push(v.clone());
                    }
                }
                out
            }
            ColumnSegment::Delta { base, deltas } => {
                let mut out = Vec::with_capacity(deltas.len() + 1);
                let mut acc = *base;
                out.push(Value::Int(acc));
                for d in deltas {
                    acc = acc.wrapping_add(*d);
                    out.push(Value::Int(acc));
                }
                out
            }
        }
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            ColumnSegment::Plain(v) => plain_size(v),
            ColumnSegment::Dictionary { dict, codes } => {
                dict.iter().map(Value::approx_size).sum::<usize>() + codes.len() * 4
            }
            ColumnSegment::RunLength(runs) => {
                runs.iter().map(|(v, _)| v.approx_size() + 4).sum::<usize>()
            }
            ColumnSegment::Delta { deltas, .. } => {
                8 + deltas.iter().map(|d| varint_size(*d)).sum::<usize>()
            }
        }
    }

    /// Rows matching an equality predicate, exploiting the encoding
    /// (dictionary: compare codes; RLE: skip whole runs).
    pub fn filter_eq(&self, needle: &Value) -> Vec<usize> {
        match self {
            ColumnSegment::Plain(v) => v
                .iter()
                .enumerate()
                .filter(|(_, x)| *x == needle)
                .map(|(i, _)| i)
                .collect(),
            ColumnSegment::Dictionary { dict, codes } => {
                match dict.iter().position(|d| d == needle) {
                    None => Vec::new(),
                    Some(code) => codes
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c as usize == code)
                        .map(|(i, _)| i)
                        .collect(),
                }
            }
            ColumnSegment::RunLength(runs) => {
                let mut out = Vec::new();
                let mut start = 0usize;
                for (v, n) in runs {
                    if v == needle {
                        out.extend(start..start + *n as usize);
                    }
                    start += *n as usize;
                }
                out
            }
            ColumnSegment::Delta { .. } => self
                .decode()
                .iter()
                .enumerate()
                .filter(|(_, x)| *x == needle)
                .map(|(i, _)| i)
                .collect(),
        }
    }
}

fn plain_size(values: &[Value]) -> usize {
    values.iter().map(Value::approx_size).sum()
}

fn dict_size(values: &[Value]) -> Option<usize> {
    let mut distinct: HashMap<&Value, u32> = HashMap::new();
    for v in values {
        let next = distinct.len() as u32;
        distinct.entry(v).or_insert(next);
        if distinct.len() > u32::MAX as usize / 2 {
            return None;
        }
    }
    let dict_bytes: usize = distinct.keys().map(|v| v.approx_size()).sum();
    Some(dict_bytes + values.len() * 4)
}

fn rle_size(values: &[Value]) -> usize {
    let mut size = 0usize;
    let mut prev: Option<&Value> = None;
    for v in values {
        if prev != Some(v) {
            size += v.approx_size() + 4;
            prev = Some(v);
        }
    }
    size
}

fn delta_size(values: &[Value]) -> Option<usize> {
    let mut prev: Option<i64> = None;
    let mut size = 8usize;
    for v in values {
        let i = match v {
            Value::Int(i) => *i,
            _ => return None, // only pure integer columns qualify
        };
        if let Some(p) = prev {
            size += varint_size(i.wrapping_sub(p));
        }
        prev = Some(i);
    }
    Some(size)
}

fn varint_size(d: i64) -> usize {
    // zig-zag then LEB128-style size
    let z = ((d << 1) ^ (d >> 63)) as u64;
    ((64 - z.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Convenience: a named set of column segments built from row data.
#[derive(Debug, Clone, Default)]
pub struct ColumnSet {
    columns: Vec<(Arc<str>, ColumnSegment, Encoding)>,
}

impl ColumnSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column built from `values`.
    pub fn add(
        &mut self,
        name: impl AsRef<str>,
        values: &[Value],
    ) -> Result<Encoding, StorageError> {
        let (seg, enc) = ColumnSegment::build(values)?;
        self.columns.push((Arc::from(name.as_ref()), seg, enc));
        Ok(enc)
    }

    /// Look up a column by name.
    pub fn get(&self, name: &str) -> Option<(&ColumnSegment, Encoding)> {
        self.columns
            .iter()
            .find(|(n, _, _)| n.as_ref() == name)
            .map(|(_, s, e)| (s, *e))
    }

    /// Total encoded bytes across columns.
    pub fn encoded_size(&self) -> usize {
        self.columns.iter().map(|(_, s, _)| s.encoded_size()).sum()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().copied().map(Value::Int).collect()
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            ColumnSegment::build(&[]),
            Err(StorageError::EmptyColumn)
        ));
    }

    #[test]
    fn monotone_ints_pick_delta() {
        let vals = ints(&(0..1000).collect::<Vec<_>>());
        let (seg, enc) = ColumnSegment::build(&vals).unwrap();
        assert_eq!(enc, Encoding::Delta);
        assert_eq!(seg.decode(), vals);
        assert_eq!(seg.get(500), Some(Value::Int(500)));
        assert!(seg.encoded_size() < plain_size(&vals) / 4);
    }

    #[test]
    fn repeated_values_pick_rle() {
        let mut vals = vec![Value::str("aaaaaaaaaa"); 500];
        vals.extend(vec![Value::str("bbbbbbbbbb"); 500]);
        let (seg, enc) = ColumnSegment::build(&vals).unwrap();
        assert_eq!(enc, Encoding::RunLength);
        assert_eq!(seg.len(), 1000);
        assert_eq!(seg.get(0), Some(Value::str("aaaaaaaaaa")));
        assert_eq!(seg.get(999), Some(Value::str("bbbbbbbbbb")));
        assert_eq!(seg.get(1000), None);
    }

    #[test]
    fn low_cardinality_alternating_picks_dictionary() {
        // Alternating long strings defeat RLE but suit a dictionary.
        let vals: Vec<Value> = (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    Value::str("alpha-alpha-alpha")
                } else {
                    Value::str("beta-beta-beta-beta")
                }
            })
            .collect();
        let (seg, enc) = ColumnSegment::build(&vals).unwrap();
        assert_eq!(enc, Encoding::Dictionary);
        assert_eq!(seg.decode(), vals);
    }

    #[test]
    fn high_entropy_strings_stay_plain() {
        let vals: Vec<Value> = (0..100).map(|i| Value::str(format!("u{i}"))).collect();
        let (_, enc) = ColumnSegment::build(&vals).unwrap();
        // Short unique strings: dictionary adds 4 bytes/row overhead.
        assert_eq!(enc, Encoding::Plain);
    }

    #[test]
    fn all_encodings_roundtrip() {
        let vals = ints(&[5, 5, 5, 9, 9, 1]);
        for enc in [
            Encoding::Plain,
            Encoding::Dictionary,
            Encoding::RunLength,
            Encoding::Delta,
        ] {
            let seg = ColumnSegment::encode_as(&vals, enc);
            assert_eq!(seg.decode(), vals, "{enc:?}");
            assert_eq!(seg.len(), 6, "{enc:?}");
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(seg.get(i).as_ref(), Some(v), "{enc:?}@{i}");
            }
        }
    }

    #[test]
    fn filter_eq_consistent_across_encodings() {
        let vals = ints(&[1, 2, 2, 3, 2, 1]);
        let expect = vec![1usize, 2, 4];
        for enc in [
            Encoding::Plain,
            Encoding::Dictionary,
            Encoding::RunLength,
            Encoding::Delta,
        ] {
            let seg = ColumnSegment::encode_as(&vals, enc);
            assert_eq!(seg.filter_eq(&Value::Int(2)), expect, "{enc:?}");
            assert!(seg.filter_eq(&Value::Int(42)).is_empty());
        }
    }

    #[test]
    fn negative_deltas_roundtrip() {
        let vals = ints(&[100, 50, -25, i64::MIN, i64::MAX]);
        let seg = ColumnSegment::encode_as(&vals, Encoding::Delta);
        assert_eq!(seg.decode(), vals);
    }

    #[test]
    fn column_set() {
        let mut set = ColumnSet::new();
        set.add("dose", &ints(&[1, 1, 1, 2])).unwrap();
        assert!(set.get("dose").is_some());
        assert!(set.get("missing").is_none());
        assert_eq!(set.len(), 1);
        assert!(set.encoded_size() > 0);
    }

    #[test]
    fn varint_sizes() {
        assert_eq!(varint_size(0), 1);
        assert_eq!(varint_size(1), 1);
        assert_eq!(varint_size(-1), 1);
        assert_eq!(varint_size(1000), 2);
        assert!(varint_size(i64::MAX) >= 9);
    }
}
