//! Per-attribute statistics feeding the cost-based optimizer.
//!
//! OS.3 observes that "today's optimizers fail completely in the absence of
//! statistics". The instance layer therefore maintains cheap, incremental
//! statistics per attribute: an equi-width histogram over numeric values, a
//! bounded most-common-values sketch, and null/row counts. The semantic
//! optimizer (in `scdb-query`) combines these with TBox knowledge to infer
//! selectivities that the raw statistics alone cannot provide.

use std::collections::HashMap;

use scdb_types::Value;

/// An equi-width histogram over numeric values, built in two passes or
/// incrementally with a fixed range learned from the first `warmup` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi]` with `buckets` equal-width buckets.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets.max(1)],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Build from observed values.
    pub fn from_values(values: impl IntoIterator<Item = f64>, buckets: usize) -> Option<Self> {
        let vals: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut h = Histogram::new(lo, hi, buckets);
        for v in vals {
            h.add(v);
        }
        Some(h)
    }

    /// Add one observation.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.total += 1;
        if v < self.lo {
            self.below += 1;
            return;
        }
        if v > self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let idx = (((v - self.lo) / width) * self.buckets.len() as f64) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated selectivity of `value <= x` (fraction of rows).
    pub fn selectivity_le(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x < self.lo {
            return self.below as f64 / self.total as f64 * 0.5;
        }
        if x >= self.hi {
            return (self.total - self.above) as f64 / self.total as f64
                + self.above as f64 / self.total as f64 * 0.5;
        }
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let pos = (x - self.lo) / width * self.buckets.len() as f64;
        let full = pos.floor() as usize;
        let frac = pos - pos.floor();
        let mut count = self.below as f64;
        for b in &self.buckets[..full.min(self.buckets.len())] {
            count += *b as f64;
        }
        if full < self.buckets.len() {
            count += self.buckets[full] as f64 * frac;
        }
        (count / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `a <= value <= b`.
    pub fn selectivity_range(&self, a: f64, b: f64) -> f64 {
        if a > b {
            return 0.0;
        }
        (self.selectivity_le(b) - self.selectivity_le(a)).max(0.0)
    }
}

/// Bounded most-common-values sketch (space-saving style: when full, the
/// minimum-count entry is evicted and its count inherited).
#[derive(Debug, Clone)]
pub struct CommonValues {
    counts: HashMap<Value, u64>,
    capacity: usize,
    total: u64,
}

impl CommonValues {
    /// Sketch tracking at most `capacity` candidates.
    pub fn new(capacity: usize) -> Self {
        CommonValues {
            counts: HashMap::new(),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Observe a value.
    pub fn add(&mut self, v: &Value) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(v) {
            *c += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(v.clone(), 1);
            return;
        }
        // Space-saving eviction.
        let (min_v, min_c) = self
            .counts
            .iter()
            .min_by_key(|(_, c)| **c)
            .map(|(v, c)| (v.clone(), *c))
            .expect("non-empty at capacity");
        self.counts.remove(&min_v);
        self.counts.insert(v.clone(), min_c + 1);
    }

    /// Estimated frequency (fraction) of `v`.
    pub fn frequency(&self, v: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .get(v)
            .map(|c| *c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// The top `k` values by estimated count.
    pub fn top(&self, k: usize) -> Vec<(Value, u64)> {
        let mut v: Vec<(Value, u64)> = self.counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Full statistics for one attribute.
#[derive(Debug, Clone)]
pub struct AttrStatistics {
    /// Rows observed (including nulls).
    pub rows: u64,
    /// Null/absent observations.
    pub nulls: u64,
    /// Numeric histogram, present when the attribute is numeric-bearing.
    pub histogram: Option<Histogram>,
    /// Most-common-values sketch.
    pub common: CommonValues,
    /// Exact-then-frozen distinct estimate.
    pub distinct: u64,
    distinct_set: Option<std::collections::HashSet<Value>>,
}

impl AttrStatistics {
    /// New statistics tracker. `mcv_capacity` bounds the common-values
    /// sketch, `distinct_cap` the exact distinct tracking.
    pub fn new(mcv_capacity: usize, distinct_cap: usize) -> Self {
        AttrStatistics {
            rows: 0,
            nulls: 0,
            histogram: None,
            common: CommonValues::new(mcv_capacity),
            distinct: 0,
            distinct_set: Some(std::collections::HashSet::with_capacity(
                distinct_cap.min(1024),
            )),
        }
    }

    /// Observe one value (pass `Value::Null` for absent).
    pub fn observe(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.common.add(v);
        if let Some(f) = v.as_float() {
            match &mut self.histogram {
                Some(h) => h.add(f),
                None => {
                    // Start a generously wide histogram on first numeric.
                    let mut h = Histogram::new(f - 1.0, f + 1.0, 32);
                    h.add(f);
                    self.histogram = Some(h);
                }
            }
        }
        if let Some(set) = &mut self.distinct_set {
            set.insert(v.clone());
            self.distinct = set.len() as u64;
            if set.len() >= 4096 {
                self.distinct_set = None; // freeze
            }
        }
    }

    /// Estimated selectivity of equality with `v`.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        let mcv = self.common.frequency(v);
        if mcv > 0.0 {
            return mcv;
        }
        if self.distinct > 0 {
            1.0 / self.distinct as f64
        } else {
            0.0
        }
    }

    /// Fraction of non-null rows.
    pub fn non_null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_uniform_selectivity() {
        let h = Histogram::from_values((0..1000).map(|i| i as f64), 50).unwrap();
        let s = h.selectivity_le(499.0);
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        let r = h.selectivity_range(250.0, 750.0);
        assert!((r - 0.5).abs() < 0.05, "got {r}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        for i in 0..10 {
            h.add(i as f64);
        }
        h.add(-5.0);
        h.add(100.0);
        assert_eq!(h.total(), 12);
        assert!(h.selectivity_le(-10.0) < 0.1);
        assert!(h.selectivity_le(1000.0) > 0.9);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_reversed_bounds_normalized() {
        let h = Histogram::new(10.0, 0.0, 4);
        assert!(h.selectivity_le(5.0) >= 0.0);
    }

    #[test]
    fn empty_histogram_from_values() {
        assert!(Histogram::from_values(std::iter::empty(), 4).is_none());
    }

    #[test]
    fn common_values_tracks_heavy_hitters() {
        let mut c = CommonValues::new(2);
        for _ in 0..100 {
            c.add(&Value::str("hot"));
        }
        for i in 0..10 {
            c.add(&Value::Int(i));
        }
        let top = c.top(1);
        assert_eq!(top[0].0, Value::str("hot"));
        assert!(c.frequency(&Value::str("hot")) > 0.5);
    }

    #[test]
    fn attr_stats_selectivity() {
        let mut s = AttrStatistics::new(8, 4096);
        for _ in 0..90 {
            s.observe(&Value::str("common"));
        }
        for i in 0..10 {
            s.observe(&Value::str(format!("rare{i}")));
        }
        assert!((s.selectivity_eq(&Value::str("common")) - 0.9).abs() < 0.01);
        let rare = s.selectivity_eq(&Value::str("unseen"));
        assert!(rare > 0.0 && rare < 0.2);
    }

    #[test]
    fn attr_stats_nulls_and_histogram() {
        let mut s = AttrStatistics::new(8, 4096);
        s.observe(&Value::Null);
        s.observe(&Value::Float(5.1));
        s.observe(&Value::Float(3.4));
        assert_eq!(s.nulls, 1);
        assert!((s.non_null_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!(s.histogram.is_some());
    }
}
