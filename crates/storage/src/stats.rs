//! Per-attribute statistics feeding the cost-based optimizer.
//!
//! OS.3 observes that "today's optimizers fail completely in the absence of
//! statistics". The instance layer therefore maintains cheap, incremental
//! statistics per attribute: a self-adjusting histogram over numeric
//! values, a bounded most-common-values sketch, and null/row counts. The
//! semantic optimizer (in `scdb-query`) combines these with TBox knowledge
//! to infer selectivities that the raw statistics alone cannot provide.

use std::collections::HashMap;

use scdb_types::Value;

/// Upper bound on the reservoir used to rebuild bucket boundaries. At the
/// cap the sample is thinned (every other element dropped) and the
/// admission stride doubled, so memory stays bounded while the sample
/// stays spread over the whole observation stream.
const SAMPLE_CAP: usize = 1024;

/// Minimum sample size before an equi-depth rebuild is considered; below
/// this the quantile estimates are too noisy to beat the seeded range.
const REBUILD_MIN_SAMPLE: usize = 64;

/// A histogram over numeric values. Buckets start equi-width over the
/// seeded `[lo, hi]` range, but the histogram also keeps a bounded,
/// deterministic sample of every observation. When too much of the
/// observed mass falls outside the bucketed range — the tell-tale of a
/// range seeded from early, unrepresentative values — the boundaries are
/// rebuilt equi-depth from the sample's quantiles, so each bucket holds
/// roughly the same share of observed values no matter how skewed the
/// distribution. Without this, a histogram seeded on the first value
/// estimates every wide range at ~0.5 and the optimizer never picks an
/// ordered index for range predicates.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Ascending bucket boundaries; `boundaries.len() == counts.len() + 1`.
    boundaries: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
    sample: Vec<f64>,
    /// Every `stride`-th finite observation enters the sample.
    stride: u64,
    seen: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi]` with `buckets` equal-width buckets.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let n = buckets.max(1);
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        let boundaries = (0..=n).map(|i| lo + width * i as f64 / n as f64).collect();
        Histogram {
            boundaries,
            counts: vec![0; n],
            total: 0,
            below: 0,
            above: 0,
            sample: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }

    /// Build from observed values.
    pub fn from_values(values: impl IntoIterator<Item = f64>, buckets: usize) -> Option<Self> {
        let vals: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut h = Histogram::new(lo, hi, buckets);
        for v in vals {
            h.add(v);
        }
        Some(h)
    }

    /// Add one observation.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.total += 1;
        if self.seen.is_multiple_of(self.stride) {
            self.sample.push(v);
            if self.sample.len() >= SAMPLE_CAP {
                let mut keep = false;
                self.sample.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen += 1;
        let lo = self.boundaries[0];
        let hi = *self.boundaries.last().expect("non-empty boundaries");
        if v < lo {
            self.below += 1;
        } else if v > hi {
            self.above += 1;
        } else {
            // Last boundary index with `b <= v`, clamped into the bucket
            // range (v == hi lands in the final bucket).
            let idx = self.boundaries.partition_point(|b| *b <= v);
            let idx = idx.saturating_sub(1).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
        let mass: u64 = self.counts.iter().sum();
        if (self.below + self.above) * 4 > mass && self.sample.len() >= REBUILD_MIN_SAMPLE {
            self.rebuild_equi_depth();
        }
    }

    /// Replace the boundaries with equi-depth quantiles of the sample and
    /// redistribute the observed mass accordingly. After a rebuild the
    /// bucketed range spans the sampled min..max, so `below`/`above`
    /// restart from zero.
    fn rebuild_equi_depth(&mut self) {
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = self.counts.len();
        let last = sorted.len() - 1;
        let boundaries: Vec<f64> = (0..=n).map(|i| sorted[i * last / n]).collect();
        // Re-bucket by scaling the sample's distribution to the observed
        // total; boundary duplicates (heavy repeated values) simply leave
        // zero-width buckets that the interpolation clamps over.
        let mut counts = vec![0u64; n];
        for &v in &sorted {
            let idx = boundaries.partition_point(|b| *b <= v);
            let idx = idx.saturating_sub(1).min(n - 1);
            counts[idx] += 1;
        }
        let scale = self.total as f64 / sorted.len() as f64;
        for c in &mut counts {
            *c = ((*c as f64) * scale).round() as u64;
        }
        self.boundaries = boundaries;
        self.counts = counts;
        self.below = 0;
        self.above = 0;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observed mass accounted inside the bucketed range plus the
    /// out-of-range tails — the denominator for selectivity estimates.
    fn mass(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Estimated selectivity of `value <= x` (fraction of rows).
    pub fn selectivity_le(&self, x: f64) -> f64 {
        let denom = self.mass();
        if denom == 0 {
            return 0.0;
        }
        let denom = denom as f64;
        let lo = self.boundaries[0];
        let hi = *self.boundaries.last().expect("non-empty boundaries");
        if x < lo {
            return self.below as f64 / denom * 0.5;
        }
        if x >= hi {
            return (denom - self.above as f64) / denom + self.above as f64 / denom * 0.5;
        }
        let idx = self.boundaries.partition_point(|b| *b <= x);
        let idx = idx.saturating_sub(1).min(self.counts.len() - 1);
        let mut count = self.below as f64;
        for c in &self.counts[..idx] {
            count += *c as f64;
        }
        let width = (self.boundaries[idx + 1] - self.boundaries[idx]).max(f64::MIN_POSITIVE);
        let frac = ((x - self.boundaries[idx]) / width).clamp(0.0, 1.0);
        count += self.counts[idx] as f64 * frac;
        (count / denom).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `a <= value <= b`.
    pub fn selectivity_range(&self, a: f64, b: f64) -> f64 {
        if a > b {
            return 0.0;
        }
        (self.selectivity_le(b) - self.selectivity_le(a)).max(0.0)
    }
}

/// Bounded most-common-values sketch (space-saving style: when full, the
/// minimum-count entry is evicted and its count inherited).
#[derive(Debug, Clone)]
pub struct CommonValues {
    counts: HashMap<Value, u64>,
    capacity: usize,
    total: u64,
}

impl CommonValues {
    /// Sketch tracking at most `capacity` candidates.
    pub fn new(capacity: usize) -> Self {
        CommonValues {
            counts: HashMap::new(),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Observe a value.
    pub fn add(&mut self, v: &Value) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(v) {
            *c += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(v.clone(), 1);
            return;
        }
        // Space-saving eviction.
        let (min_v, min_c) = self
            .counts
            .iter()
            .min_by_key(|(_, c)| **c)
            .map(|(v, c)| (v.clone(), *c))
            .expect("non-empty at capacity");
        self.counts.remove(&min_v);
        self.counts.insert(v.clone(), min_c + 1);
    }

    /// Estimated frequency (fraction) of `v`.
    pub fn frequency(&self, v: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .get(v)
            .map(|c| *c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// The top `k` values by estimated count.
    pub fn top(&self, k: usize) -> Vec<(Value, u64)> {
        let mut v: Vec<(Value, u64)> = self.counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Full statistics for one attribute.
#[derive(Debug, Clone)]
pub struct AttrStatistics {
    /// Rows observed (including nulls).
    pub rows: u64,
    /// Null/absent observations.
    pub nulls: u64,
    /// Numeric histogram, present when the attribute is numeric-bearing.
    pub histogram: Option<Histogram>,
    /// Most-common-values sketch.
    pub common: CommonValues,
    /// Exact-then-frozen distinct estimate.
    pub distinct: u64,
    distinct_set: Option<std::collections::HashSet<Value>>,
}

impl AttrStatistics {
    /// New statistics tracker. `mcv_capacity` bounds the common-values
    /// sketch, `distinct_cap` the exact distinct tracking.
    pub fn new(mcv_capacity: usize, distinct_cap: usize) -> Self {
        AttrStatistics {
            rows: 0,
            nulls: 0,
            histogram: None,
            common: CommonValues::new(mcv_capacity),
            distinct: 0,
            distinct_set: Some(std::collections::HashSet::with_capacity(
                distinct_cap.min(1024),
            )),
        }
    }

    /// Observe one value (pass `Value::Null` for absent).
    pub fn observe(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.common.add(v);
        if let Some(f) = v.as_float() {
            match &mut self.histogram {
                Some(h) => h.add(f),
                None => {
                    // Start a generously wide histogram on first numeric.
                    let mut h = Histogram::new(f - 1.0, f + 1.0, 32);
                    h.add(f);
                    self.histogram = Some(h);
                }
            }
        }
        if let Some(set) = &mut self.distinct_set {
            set.insert(v.clone());
            self.distinct = set.len() as u64;
            if set.len() >= 4096 {
                self.distinct_set = None; // freeze
            }
        }
    }

    /// Estimated selectivity of equality with `v`.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        let mcv = self.common.frequency(v);
        if mcv > 0.0 {
            return mcv;
        }
        if self.distinct > 0 {
            1.0 / self.distinct as f64
        } else {
            0.0
        }
    }

    /// Fraction of non-null rows.
    pub fn non_null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_uniform_selectivity() {
        let h = Histogram::from_values((0..1000).map(|i| i as f64), 50).unwrap();
        let s = h.selectivity_le(499.0);
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        let r = h.selectivity_range(250.0, 750.0);
        assert!((r - 0.5).abs() < 0.05, "got {r}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        for i in 0..10 {
            h.add(i as f64);
        }
        h.add(-5.0);
        h.add(100.0);
        assert_eq!(h.total(), 12);
        assert!(h.selectivity_le(-10.0) < 0.1);
        assert!(h.selectivity_le(1000.0) > 0.9);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_reversed_bounds_normalized() {
        let h = Histogram::new(10.0, 0.0, 4);
        assert!(h.selectivity_le(5.0) >= 0.0);
    }

    #[test]
    fn empty_histogram_from_values() {
        assert!(Histogram::from_values(std::iter::empty(), 4).is_none());
    }

    #[test]
    fn histogram_rebuilds_equi_depth_when_seeded_range_is_wrong() {
        // Seeded the way AttrStatistics does on first numeric: a tiny
        // window around the first value. Everything that follows lands
        // outside it.
        let mut h = Histogram::new(0.0, 2.0, 32);
        h.add(1.0);
        for i in 0..1000 {
            h.add(1000.0 + i as f64);
        }
        // Before the fix every estimate outside [0,2] collapsed to the
        // ~0.5 out-of-range guess; after the rebuild the boundaries span
        // the observed values and ranges resolve proportionally.
        let narrow = h.selectivity_range(1000.0, 1100.0);
        assert!(
            narrow < 0.25,
            "narrow range over rebuilt histogram estimated {narrow}"
        );
        let wide = h.selectivity_range(1000.0, 2000.0);
        assert!(wide > 0.8, "wide range estimated {wide}");
    }

    #[test]
    fn histogram_sample_stays_bounded() {
        let mut h = Histogram::new(0.0, 1.0, 8);
        for i in 0..100_000 {
            h.add(i as f64);
        }
        assert!(h.sample.len() < SAMPLE_CAP);
        assert_eq!(h.total(), 100_000);
        let s = h.selectivity_le(50_000.0);
        assert!((s - 0.5).abs() < 0.1, "got {s}");
    }

    #[test]
    fn attr_stats_histogram_recovers_from_first_value_seed() {
        // The live-ingest shape: first numeric seeds [f-1, f+1]; all
        // later values fall far outside. A narrow range predicate must
        // still come out selective.
        let mut s = AttrStatistics::new(8, 4096);
        for i in 0..500 {
            s.observe(&Value::Int(i * 10));
        }
        let h = s.histogram.as_ref().expect("numeric histogram");
        let narrow = h.selectivity_range(0.0, 200.0);
        assert!(
            narrow < 0.25,
            "narrow range after equi-depth rebuild estimated {narrow}"
        );
    }

    #[test]
    fn common_values_tracks_heavy_hitters() {
        let mut c = CommonValues::new(2);
        for _ in 0..100 {
            c.add(&Value::str("hot"));
        }
        for i in 0..10 {
            c.add(&Value::Int(i));
        }
        let top = c.top(1);
        assert_eq!(top[0].0, Value::str("hot"));
        assert!(c.frequency(&Value::str("hot")) > 0.5);
    }

    #[test]
    fn attr_stats_selectivity() {
        let mut s = AttrStatistics::new(8, 4096);
        for _ in 0..90 {
            s.observe(&Value::str("common"));
        }
        for i in 0..10 {
            s.observe(&Value::str(format!("rare{i}")));
        }
        assert!((s.selectivity_eq(&Value::str("common")) - 0.9).abs() < 0.01);
        let rare = s.selectivity_eq(&Value::str("unseen"));
        assert!(rare > 0.0 && rare < 0.2);
    }

    #[test]
    fn attr_stats_nulls_and_histogram() {
        let mut s = AttrStatistics::new(8, 4096);
        s.observe(&Value::Null);
        s.observe(&Value::Float(5.1));
        s.observe(&Value::Float(3.4));
        assert_eq!(s.nulls, 1);
        assert!((s.non_null_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!(s.histogram.is_some());
    }
}
