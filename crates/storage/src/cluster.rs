//! OS.1 — dynamic, instance-level fine-grained clustering.
//!
//! "Given the abundance of instance relations and semantic relationships,
//! what are the data clustering opportunities to improve retrieval, access
//! locality, and compression?" (Optimization Statement 1). This module
//! answers with a concrete mechanism:
//!
//! 1. a [`CoAccessTracker`] observes which records are touched *together*
//!    (by a query, a traversal, or an entity-resolution probe);
//! 2. [`ClusteredLayout`] turns the accumulated co-access graph into a
//!    physical order ([`PageMap`]) that packs affine records onto the same
//!    page;
//! 3. the page/line-touch counters in [`crate::page`] measure the locality
//!    gain, and the column encodings in [`crate::column`] measure the
//!    compression gain (clustering lengthens runs).
//!
//! Three strategies are exposed for the ablation called out in DESIGN.md:
//! co-access greedy packing, frequency-only ordering, and the identity
//! (arrival-order) baseline.

use std::collections::HashMap;

use crate::page::{PageConfig, PageMap};

/// Accumulates co-access evidence between record offsets.
///
/// Edge weights are capped only by `u64`; memory is bounded by
/// `max_edges` — once full, new edges are dropped (existing edges keep
/// counting), a deliberate "good enough" policy for a continuously running
/// curator.
#[derive(Debug)]
pub struct CoAccessTracker {
    edges: HashMap<(u64, u64), u64>,
    freq: HashMap<u64, u64>,
    max_edges: usize,
    groups_seen: u64,
}

impl Default for CoAccessTracker {
    fn default() -> Self {
        Self::new(1 << 20)
    }
}

impl CoAccessTracker {
    /// New tracker retaining at most `max_edges` distinct co-access pairs.
    pub fn new(max_edges: usize) -> Self {
        CoAccessTracker {
            edges: HashMap::new(),
            freq: HashMap::new(),
            max_edges,
            groups_seen: 0,
        }
    }

    /// Observe that `group` of record offsets was accessed together.
    ///
    /// Groups larger than 64 are subsampled pairwise (first 64) to keep the
    /// quadratic pair expansion bounded; the frequency counts still cover
    /// every member.
    pub fn observe(&mut self, group: &[u64]) {
        self.groups_seen += 1;
        for &o in group {
            *self.freq.entry(o).or_insert(0) += 1;
        }
        let window = &group[..group.len().min(64)];
        for (i, &a) in window.iter().enumerate() {
            for &b in &window[i + 1..] {
                if a == b {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                if self.edges.len() >= self.max_edges && !self.edges.contains_key(&key) {
                    continue;
                }
                *self.edges.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Number of distinct co-access pairs retained.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of groups observed.
    pub fn groups_seen(&self) -> u64 {
        self.groups_seen
    }

    /// Access frequency of one offset.
    pub fn frequency(&self, offset: u64) -> u64 {
        self.freq.get(&offset).copied().unwrap_or(0)
    }
}

/// Clustering strategies under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStrategy {
    /// Arrival order — the no-clustering baseline.
    Identity,
    /// Hot records first, ignoring co-access structure.
    FrequencyOrder,
    /// Greedy co-access packing (the paper-motivated policy).
    CoAccessGreedy,
}

/// A computed physical layout plus the statistics of its construction.
#[derive(Debug)]
pub struct ClusteredLayout {
    /// Logical offset → physical position.
    pub map: PageMap,
    /// Strategy that produced it.
    pub strategy: ClusterStrategy,
    /// Number of multi-record clusters formed (greedy only).
    pub clusters_formed: usize,
}

impl ClusteredLayout {
    /// Build a layout over offsets `0..n` using `strategy`.
    pub fn build(
        tracker: &CoAccessTracker,
        n: u64,
        pages: PageConfig,
        strategy: ClusterStrategy,
    ) -> Self {
        let layout = match strategy {
            ClusterStrategy::Identity => ClusteredLayout {
                map: PageMap::identity(n),
                strategy,
                clusters_formed: 0,
            },
            ClusterStrategy::FrequencyOrder => {
                let mut order: Vec<u64> = (0..n).collect();
                order.sort_by_key(|o| (std::cmp::Reverse(tracker.frequency(*o)), *o));
                ClusteredLayout {
                    map: PageMap::from_order(&order),
                    strategy,
                    clusters_formed: 0,
                }
            }
            ClusterStrategy::CoAccessGreedy => Self::greedy(tracker, n, pages),
        };
        let m = scdb_obs::metrics();
        m.inc("storage.cluster_builds");
        m.gauge_set("storage.clusters_formed", layout.clusters_formed as i64);
        scdb_obs::event(
            "storage",
            "cluster.build",
            &[
                ("records", scdb_obs::FieldValue::U64(n)),
                (
                    "clusters",
                    scdb_obs::FieldValue::U64(layout.clusters_formed as u64),
                ),
            ],
        );
        layout
    }

    /// Greedy agglomerative packing: process co-access edges heaviest
    /// first, merging clusters as long as the merged cluster still fits a
    /// small number of pages. Clusters are then laid out hottest-first.
    fn greedy(tracker: &CoAccessTracker, n: u64, pages: PageConfig) -> Self {
        // Cap cluster size at one page: beyond that, packing together buys
        // nothing under the page-touch metric.
        let max_cluster = pages.records_per_page() as usize;

        let mut edges: Vec<(&(u64, u64), &u64)> = tracker.edges.iter().collect();
        edges.sort_by_key(|(&(a, b), &w)| (std::cmp::Reverse(w), a, b));

        // Union-find with per-root member lists (kept in merge order so the
        // final layout preserves intra-cluster affinity chains).
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut members: Vec<Vec<u64>> = (0..n).map(|o| vec![o]).collect();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }

        let mut merges = 0usize;
        for (&(a, b), _) in edges {
            if a >= n || b >= n {
                continue;
            }
            let (ra, rb) = (find(&mut parent, a as u32), find(&mut parent, b as u32));
            if ra == rb {
                continue;
            }
            if members[ra as usize].len() + members[rb as usize].len() > max_cluster {
                continue;
            }
            // Merge the smaller into the larger.
            let (big, small) = if members[ra as usize].len() >= members[rb as usize].len() {
                (ra, rb)
            } else {
                (rb, ra)
            };
            let moved = std::mem::take(&mut members[small as usize]);
            members[big as usize].extend(moved);
            parent[small as usize] = big;
            merges += 1;
        }

        // Order clusters by total access frequency, hottest first, breaking
        // ties by smallest member offset for determinism.
        let mut clusters: Vec<Vec<u64>> = members.into_iter().filter(|m| !m.is_empty()).collect();
        clusters.sort_by_key(|c| {
            let heat: u64 = c.iter().map(|&o| tracker.frequency(o)).sum();
            (
                std::cmp::Reverse(heat),
                c.iter().copied().min().unwrap_or(u64::MAX),
            )
        });
        let clusters_formed = clusters.iter().filter(|c| c.len() > 1).count();

        let order: Vec<u64> = clusters.into_iter().flatten().collect();
        debug_assert_eq!(order.len(), n as usize);
        ClusteredLayout {
            map: PageMap::from_order(&order),
            strategy: ClusterStrategy::CoAccessGreedy,
            clusters_formed: clusters_formed.max(merges.min(1)),
        }
    }

    /// Replay a workload of co-access groups against this layout, returning
    /// `(total page touches, distinct pages touched)`.
    pub fn replay(&self, workload: &[Vec<u64>], pages: PageConfig) -> (u64, u64) {
        let mut total = 0u64;
        let mut distinct = std::collections::HashSet::new();
        for group in workload {
            let mut per_group = std::collections::HashSet::new();
            for &o in group {
                if let Some(p) = self.map.position_of(o) {
                    per_group.insert(pages.page_of(p));
                }
            }
            total += per_group.len() as u64;
            distinct.extend(per_group);
        }
        (total, distinct.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload where records {0,50} and {10,60} are always co-accessed.
    fn affine_workload() -> Vec<Vec<u64>> {
        let mut w = Vec::new();
        for _ in 0..20 {
            w.push(vec![0, 50]);
            w.push(vec![10, 60]);
        }
        w
    }

    #[test]
    fn greedy_packs_coaccessed_records() {
        let pages = PageConfig::new(4);
        let mut t = CoAccessTracker::default();
        for g in affine_workload() {
            t.observe(&g);
        }
        let layout = ClusteredLayout::build(&t, 100, pages, ClusterStrategy::CoAccessGreedy);
        let p0 = layout.map.position_of(0).unwrap();
        let p50 = layout.map.position_of(50).unwrap();
        assert_eq!(pages.page_of(p0), pages.page_of(p50));
        assert!(layout.clusters_formed >= 1);
    }

    #[test]
    fn greedy_beats_identity_on_affine_workload() {
        let pages = PageConfig::new(4);
        let mut t = CoAccessTracker::default();
        let w = affine_workload();
        for g in &w {
            t.observe(g);
        }
        let greedy = ClusteredLayout::build(&t, 100, pages, ClusterStrategy::CoAccessGreedy);
        let ident = ClusteredLayout::build(&t, 100, pages, ClusterStrategy::Identity);
        let (g_total, _) = greedy.replay(&w, pages);
        let (i_total, _) = ident.replay(&w, pages);
        assert!(
            g_total < i_total,
            "greedy {g_total} should touch fewer pages than identity {i_total}"
        );
    }

    #[test]
    fn layouts_are_permutations() {
        let pages = PageConfig::new(8);
        let mut t = CoAccessTracker::default();
        for g in affine_workload() {
            t.observe(g.as_slice());
        }
        for strat in [
            ClusterStrategy::Identity,
            ClusterStrategy::FrequencyOrder,
            ClusterStrategy::CoAccessGreedy,
        ] {
            let layout = ClusteredLayout::build(&t, 100, pages, strat);
            let mut seen = [false; 100];
            for o in 0..100u64 {
                let p = layout.map.position_of(o).expect("covered") as usize;
                assert!(!seen[p], "{strat:?}: position {p} used twice");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn frequency_order_puts_hot_records_first() {
        let mut t = CoAccessTracker::default();
        for _ in 0..10 {
            t.observe(&[99]);
        }
        t.observe(&[1]);
        let layout =
            ClusteredLayout::build(&t, 100, PageConfig::new(4), ClusterStrategy::FrequencyOrder);
        assert_eq!(layout.map.position_of(99), Some(0));
        assert_eq!(layout.map.position_of(1), Some(1));
    }

    #[test]
    fn cluster_size_capped_at_page() {
        let pages = PageConfig::new(2);
        let mut t = CoAccessTracker::default();
        // All four records always together — cannot all fit one 2-slot page.
        for _ in 0..5 {
            t.observe(&[0, 1, 2, 3]);
        }
        let layout = ClusteredLayout::build(&t, 4, pages, ClusterStrategy::CoAccessGreedy);
        // Still a valid permutation; no page holds more than 2.
        let mut by_page: HashMap<u64, usize> = HashMap::new();
        for o in 0..4u64 {
            let p = pages.page_of(layout.map.position_of(o).unwrap());
            *by_page.entry(p).or_insert(0) += 1;
        }
        assert!(by_page.values().all(|&c| c <= 2));
    }

    #[test]
    fn tracker_edge_cap_drops_new_edges() {
        let mut t = CoAccessTracker::new(1);
        t.observe(&[1, 2]);
        t.observe(&[3, 4]); // dropped: cap reached
        t.observe(&[1, 2]); // existing edge still counts
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.groups_seen(), 3);
        assert_eq!(t.frequency(3), 1); // frequency still tracked
    }

    #[test]
    fn large_groups_subsampled_but_counted() {
        let mut t = CoAccessTracker::default();
        let big: Vec<u64> = (0..200).collect();
        t.observe(&big);
        assert_eq!(t.frequency(199), 1);
        // Pairs only from the first 64 members: C(64,2) edges.
        assert_eq!(t.edge_count(), 64 * 63 / 2);
    }
}
