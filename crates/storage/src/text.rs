//! Token-indexed text store — the unstructured end of the instance layer.
//!
//! §3.1: "future databases must natively also support … unstructured data
//! such as text documents". The relation layer "may additionally capture
//! the results of information extraction"; this store provides the
//! substrate: documents, a tokenizer, an inverted index, and TF-IDF scoring
//! used both for retrieval and by the entity-resolution similarity metrics.

use std::collections::HashMap;

use scdb_types::RecordId;

/// Lowercasing, alphanumeric-run tokenizer. Deterministic and cheap; the
/// entity-resolution crate reuses it so record text and document text
/// tokenize identically.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// A scored retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching document's record id.
    pub record: RecordId,
    /// TF-IDF score (higher is better).
    pub score: f64,
}

/// An in-memory text store with an inverted index.
#[derive(Debug, Default)]
pub struct TextStore {
    docs: HashMap<RecordId, String>,
    /// token → (record, term frequency)
    postings: HashMap<String, Vec<(RecordId, u32)>>,
    /// per-document token counts (for TF normalization)
    doc_len: HashMap<RecordId, u32>,
}

impl TextStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `text` under `record`. Re-indexing the same record replaces
    /// its previous content.
    pub fn index(&mut self, record: RecordId, text: &str) {
        if self.docs.contains_key(&record) {
            self.remove(record);
        }
        let tokens = tokenize(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (token, count) in tf {
            self.postings
                .entry(token)
                .or_default()
                .push((record, count));
        }
        self.doc_len.insert(record, tokens.len() as u32);
        self.docs.insert(record, text.to_string());
    }

    /// Remove a record's document from the index.
    pub fn remove(&mut self, record: RecordId) -> Option<String> {
        let text = self.docs.remove(&record)?;
        self.doc_len.remove(&record);
        for token in tokenize(&text) {
            if let Some(list) = self.postings.get_mut(&token) {
                list.retain(|(r, _)| *r != record);
                if list.is_empty() {
                    self.postings.remove(&token);
                }
            }
        }
        Some(text)
    }

    /// Raw document text.
    pub fn get(&self, record: RecordId) -> Option<&str> {
        self.docs.get(&record).map(String::as_str)
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inverse document frequency of a token.
    fn idf(&self, token: &str) -> f64 {
        let n = self.docs.len() as f64;
        let df = self
            .postings
            .get(token)
            .map(|l| l.len() as f64)
            .unwrap_or(0.0);
        if df == 0.0 {
            0.0
        } else {
            ((n + 1.0) / (df + 0.5)).ln().max(0.0)
        }
    }

    /// TF-IDF ranked search; returns the top `k` hits.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let mut scores: HashMap<RecordId, f64> = HashMap::new();
        for token in tokenize(query) {
            let idf = self.idf(&token);
            if idf == 0.0 {
                continue;
            }
            if let Some(list) = self.postings.get(&token) {
                for (record, tf) in list {
                    let len = self.doc_len.get(record).copied().unwrap_or(1).max(1) as f64;
                    *scores.entry(*record).or_insert(0.0) += (*tf as f64 / len) * idf;
                }
            }
        }
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .map(|(record, score)| Hit { record, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.record.cmp(&b.record))
        });
        hits.truncate(k);
        hits
    }

    /// TF-IDF weight vector for a record's document (token → weight),
    /// used by cosine similarity in entity resolution.
    pub fn tfidf_vector(&self, record: RecordId) -> HashMap<String, f64> {
        let mut out = HashMap::new();
        let Some(text) = self.docs.get(&record) else {
            return out;
        };
        let len = self.doc_len.get(&record).copied().unwrap_or(1).max(1) as f64;
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in tokenize(text) {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (token, count) in tf {
            let idf = self.idf(&token);
            if idf > 0.0 {
                out.insert(token, (count as f64 / len) * idf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SourceId;

    fn rid(o: u64) -> RecordId {
        RecordId::new(SourceId(0), o)
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Warfarin, 5.1mg — blood-clot!"),
            vec!["warfarin", "5", "1mg", "blood", "clot"]
        );
        assert!(tokenize("   ").is_empty());
        assert_eq!(tokenize("ÉCLAIR"), vec!["éclair"]);
    }

    #[test]
    fn search_ranks_relevant_docs_first() {
        let mut s = TextStore::new();
        s.index(rid(0), "warfarin prevents blood clots in patients");
        s.index(rid(1), "ibuprofen reduces fever and pain");
        s.index(rid(2), "warfarin warfarin dosage guidance");
        let hits = s.search("warfarin dosage", 10);
        assert_eq!(hits[0].record, rid(2));
        assert!(hits.iter().any(|h| h.record == rid(0)));
        assert!(!hits.iter().any(|h| h.record == rid(1)));
    }

    #[test]
    fn reindex_replaces() {
        let mut s = TextStore::new();
        s.index(rid(0), "alpha beta");
        s.index(rid(0), "gamma delta");
        assert!(s.search("alpha", 10).is_empty());
        assert_eq!(s.search("gamma", 10).len(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_cleans_postings() {
        let mut s = TextStore::new();
        s.index(rid(0), "unique token here");
        assert_eq!(s.remove(rid(0)), Some("unique token here".to_string()));
        assert!(s.search("unique", 10).is_empty());
        assert!(s.is_empty());
        assert_eq!(s.remove(rid(0)), None);
    }

    #[test]
    fn unknown_query_tokens_score_zero() {
        let mut s = TextStore::new();
        s.index(rid(0), "something");
        assert!(s.search("nonexistenttoken", 10).is_empty());
    }

    #[test]
    fn tfidf_vector_downweights_common_tokens() {
        let mut s = TextStore::new();
        s.index(rid(0), "drug target drug");
        s.index(rid(1), "drug gene");
        s.index(rid(2), "drug disease");
        let v = s.tfidf_vector(rid(0));
        // "drug" appears everywhere → lower idf than "target".
        let drug = v.get("drug").copied().unwrap_or(0.0);
        let target = v.get("target").copied().unwrap_or(0.0);
        assert!(target > drug, "target {target} should outweigh drug {drug}");
    }

    #[test]
    fn top_k_truncates() {
        let mut s = TextStore::new();
        for i in 0..20 {
            s.index(rid(i), "shared token");
        }
        assert_eq!(s.search("shared", 5).len(), 5);
    }
}
