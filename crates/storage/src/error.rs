//! Errors for the instance layer.

use std::fmt;

use scdb_types::RecordId;

/// Errors produced by instance-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The addressed record does not exist (never written or deleted).
    NoSuchRecord(RecordId),
    /// A record id referenced a different source than the store it was
    /// used against.
    WrongSource {
        /// Source the store manages.
        expected: scdb_types::SourceId,
        /// Source in the offending record id.
        got: scdb_types::SourceId,
    },
    /// Column build requested for an attribute with no observed values.
    EmptyColumn,
    /// A clustered layout was asked to place a record it does not cover.
    UnknownOffset(u64),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchRecord(id) => write!(f, "no such record: {id}"),
            StorageError::WrongSource { expected, got } => {
                write!(f, "record belongs to {got}, store manages {expected}")
            }
            StorageError::EmptyColumn => write!(f, "cannot build a column with no values"),
            StorageError::UnknownOffset(o) => write!(f, "offset {o} not covered by layout"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SourceId;

    #[test]
    fn display() {
        let e = StorageError::NoSuchRecord(RecordId::new(SourceId(1), 2));
        assert_eq!(e.to_string(), "no such record: src1:2");
        let e = StorageError::WrongSource {
            expected: SourceId(0),
            got: SourceId(3),
        };
        assert!(e.to_string().contains("src3"));
    }
}
