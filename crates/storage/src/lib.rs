//! Instance layer of the `scdb` self-curating database (paper §3.1).
//!
//! The instance layer stores raw data "spanning both structured and
//! unstructured" forms. This crate provides:
//!
//! * [`RowStore`] — an append-friendly, schema-flexible record store with
//!   per-source [`SourceSchema`](scdb_types::SourceSchema) inference;
//! * [`mod@column`] — columnar segments with lightweight compression
//!   (dictionary, run-length, delta), because "analytical workloads benefit
//!   greatly from a columnar decomposition" (§3.1);
//! * [`cluster`] — **OS.1**: dynamic, instance-level fine-grained
//!   clustering driven by observed co-access, with a page/line-touch model
//!   standing in for hardware cache-locality counters (see DESIGN.md
//!   substitutions);
//! * [`text`] — a token-indexed text/blob store for the unstructured end of
//!   the spectrum;
//! * [`stats`] — per-attribute statistics (histograms, common values) that
//!   feed the cost-based side of the query optimizer (OS.3);
//! * [`mod@index`] — secondary hash / ordered indexes over attribute
//!   values, the optimizer's alternative access path to a full scan.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod column;
pub mod error;
pub mod index;
pub mod page;
pub mod row;
pub mod stats;
pub mod text;

pub use cluster::{ClusteredLayout, CoAccessTracker};
pub use column::{ColumnSegment, Encoding};
pub use error::StorageError;
pub use index::{IndexDef, IndexKind, IndexPredicate, IndexSet, SecondaryIndex};
pub use page::{PageConfig, PageMap, TouchCounter};
pub use row::RowStore;
pub use stats::{AttrStatistics, Histogram};
pub use text::TextStore;
