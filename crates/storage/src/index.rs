//! Secondary indexes over attribute values (OS.3 access paths).
//!
//! Two index shapes cover the ScQL comparison atoms: a **hash** index
//! answering point equality, and an **ordered** (B-tree-style) index
//! answering both equality and range predicates. Both map attribute
//! values to the row offsets holding them, in the owning source's
//! arrival order, so an index scan can reproduce exactly the rows (and
//! row order) a full scan would produce.
//!
//! Indexes are maintained incrementally by the curation pipeline under
//! the existing instance-shard locks; contents are never logged — they
//! rebuild deterministically from the row store during recovery, while
//! the *definitions* persist through the WAL and checkpoint snapshot.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use scdb_types::{Record, SymbolTable, Value};

use crate::row::RowStore;

/// The shape of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Point-equality index (hash map from value to row offsets).
    Hash,
    /// Ordered index (B-tree map) answering equality *and* ranges.
    Ordered,
}

impl IndexKind {
    /// Stable wire tag (WAL / snapshot encoding).
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::Hash => 0,
            IndexKind::Ordered => 1,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Option<IndexKind> {
        match tag {
            0 => Some(IndexKind::Hash),
            1 => Some(IndexKind::Ordered),
            _ => None,
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexKind::Hash => "hash",
            IndexKind::Ordered => "ordered",
        })
    }
}

/// The durable definition of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (unique across the database).
    pub name: String,
    /// Source whose rows are indexed.
    pub source: String,
    /// Indexed attribute.
    pub attr: String,
    /// Index shape.
    pub kind: IndexKind,
}

/// A predicate pushed down into an index lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexPredicate {
    /// `attr = value`.
    Eq(Value),
    /// `attr` within the (half-)open range; each bound is
    /// `(value, inclusive)`.
    Range {
        /// Lower bound, if any.
        lo: Option<(Value, bool)>,
        /// Upper bound, if any.
        hi: Option<(Value, bool)>,
    },
}

#[derive(Debug)]
enum Backing {
    Hash(HashMap<Value, Vec<u64>>),
    Ordered(BTreeMap<Value, Vec<u64>>),
}

/// One secondary index: definition plus contents.
#[derive(Debug)]
pub struct SecondaryIndex {
    def: IndexDef,
    backing: Backing,
    entries: u64,
}

impl SecondaryIndex {
    /// An empty index for `def`.
    pub fn new(def: IndexDef) -> Self {
        let backing = match def.kind {
            IndexKind::Hash => Backing::Hash(HashMap::new()),
            IndexKind::Ordered => Backing::Ordered(BTreeMap::new()),
        };
        SecondaryIndex {
            def,
            backing,
            entries: 0,
        }
    }

    /// The definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of (value, offset) entries currently indexed.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Insert one row's value. Nulls are not indexed — a null never
    /// passes a filter (three-valued logic), so the index stays lean.
    pub fn insert(&mut self, value: &Value, offset: u64) {
        if value.is_null() {
            return;
        }
        let slot = match &mut self.backing {
            Backing::Hash(m) => m.entry(value.clone()).or_default(),
            Backing::Ordered(m) => m.entry(value.clone()).or_default(),
        };
        slot.push(offset);
        self.entries += 1;
    }

    /// Remove one row's value (tombstoned / retracted rows).
    pub fn remove(&mut self, value: &Value, offset: u64) {
        if value.is_null() {
            return;
        }
        let (emptied, removed) = match &mut self.backing {
            Backing::Hash(m) => prune(m.get_mut(value), offset),
            Backing::Ordered(m) => prune(m.get_mut(value), offset),
        };
        if removed {
            self.entries -= 1;
        }
        if emptied {
            match &mut self.backing {
                Backing::Hash(m) => {
                    m.remove(value);
                }
                Backing::Ordered(m) => {
                    m.remove(value);
                }
            }
        }
    }

    /// True when this index can answer `pred`.
    pub fn supports(&self, pred: &IndexPredicate) -> bool {
        match (pred, self.def.kind) {
            (IndexPredicate::Eq(_), _) => true,
            (IndexPredicate::Range { .. }, IndexKind::Ordered) => true,
            (IndexPredicate::Range { .. }, IndexKind::Hash) => false,
        }
    }

    /// Row offsets matching `pred`, sorted ascending (arrival order), or
    /// `None` when the index shape cannot answer the predicate.
    pub fn lookup(&self, pred: &IndexPredicate) -> Option<Vec<u64>> {
        if !self.supports(pred) {
            return None;
        }
        let mut out: Vec<u64> = match (&self.backing, pred) {
            (Backing::Hash(m), IndexPredicate::Eq(v)) => m.get(v).cloned().unwrap_or_default(),
            (Backing::Ordered(m), IndexPredicate::Eq(v)) => m.get(v).cloned().unwrap_or_default(),
            (Backing::Ordered(m), IndexPredicate::Range { lo, hi }) => {
                use std::ops::Bound;
                let lower = match lo {
                    None => Bound::Unbounded,
                    Some((v, true)) => Bound::Included(v.clone()),
                    Some((v, false)) => Bound::Excluded(v.clone()),
                };
                let upper = match hi {
                    None => Bound::Unbounded,
                    Some((v, true)) => Bound::Included(v.clone()),
                    Some((v, false)) => Bound::Excluded(v.clone()),
                };
                m.range((lower, upper))
                    .flat_map(|(_, offs)| offs.iter().copied())
                    .collect()
            }
            (Backing::Hash(_), IndexPredicate::Range { .. }) => return None,
        };
        out.sort_unstable();
        Some(out)
    }

    /// Rebuild contents from `store` (recovery / snapshot install).
    pub fn rebuild(&mut self, symbols: &SymbolTable, store: &RowStore) {
        self.backing = match self.def.kind {
            IndexKind::Hash => Backing::Hash(HashMap::new()),
            IndexKind::Ordered => Backing::Ordered(BTreeMap::new()),
        };
        self.entries = 0;
        let Some(sym) = symbols.get(&self.def.attr) else {
            return;
        };
        for (id, record) in store.scan() {
            if let Some(v) = record.get(sym) {
                self.insert(v, id.offset);
            }
        }
    }
}

fn prune(slot: Option<&mut Vec<u64>>, offset: u64) -> (bool, bool) {
    match slot {
        Some(offs) => {
            let before = offs.len();
            offs.retain(|o| *o != offset);
            (offs.is_empty(), offs.len() < before)
        }
        None => (false, false),
    }
}

/// The secondary indexes of one source.
#[derive(Debug, Default)]
pub struct IndexSet {
    list: Vec<SecondaryIndex>,
}

impl IndexSet {
    /// An empty set.
    pub fn new() -> Self {
        IndexSet::default()
    }

    /// True when no indexes exist.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Definitions, in creation order.
    pub fn defs(&self) -> Vec<IndexDef> {
        self.list.iter().map(|i| i.def.clone()).collect()
    }

    /// Iterate the indexes.
    pub fn iter(&self) -> impl Iterator<Item = &SecondaryIndex> {
        self.list.iter()
    }

    /// Find an index by name.
    pub fn get(&self, name: &str) -> Option<&SecondaryIndex> {
        self.list.iter().find(|i| i.def.name == name)
    }

    /// Create an index and build its contents from `store`. Returns
    /// `false` when an index with the same name already exists.
    pub fn create(&mut self, def: IndexDef, symbols: &SymbolTable, store: &RowStore) -> bool {
        if self.get(&def.name).is_some() {
            return false;
        }
        let mut idx = SecondaryIndex::new(def);
        idx.rebuild(symbols, store);
        self.list.push(idx);
        true
    }

    /// Drop an index by name; returns `true` when one was removed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.list.len();
        self.list.retain(|i| i.def.name != name);
        self.list.len() < before
    }

    /// Maintain all indexes for a newly appended row.
    pub fn note_append(&mut self, symbols: &SymbolTable, record: &Record, offset: u64) {
        for idx in &mut self.list {
            if let Some(sym) = symbols.get(&idx.def.attr) {
                if let Some(v) = record.get(sym) {
                    idx.insert(v, offset);
                }
            }
        }
    }

    /// Maintain all indexes for a deleted (retracted) row.
    pub fn note_delete(&mut self, symbols: &SymbolTable, record: &Record, offset: u64) {
        for idx in &mut self.list {
            if let Some(sym) = symbols.get(&idx.def.attr) {
                if let Some(v) = record.get(sym) {
                    idx.remove(v, offset);
                }
            }
        }
    }

    /// Maintain all indexes for an in-place row update.
    pub fn note_update(&mut self, symbols: &SymbolTable, old: &Record, new: &Record, offset: u64) {
        self.note_delete(symbols, old, offset);
        self.note_append(symbols, new, offset);
    }

    /// Rebuild every index from `store` (snapshot install).
    pub fn rebuild_all(&mut self, symbols: &SymbolTable, store: &RowStore) {
        for idx in &mut self.list {
            idx.rebuild(symbols, store);
        }
    }

    /// Row offsets for `pred` from the first index on `attr` that can
    /// answer it, sorted ascending; `None` when no usable index exists.
    pub fn lookup(&self, attr: &str, pred: &IndexPredicate) -> Option<Vec<u64>> {
        self.list
            .iter()
            .filter(|i| i.def.attr == attr)
            .find_map(|i| i.lookup(pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SourceId;

    fn fixture() -> (SymbolTable, RowStore) {
        let mut syms = SymbolTable::new();
        let name = syms.intern("name");
        let score = syms.intern("score");
        let mut store = RowStore::new(SourceId(0));
        for i in 0..10i64 {
            store.append(Record::from_pairs([
                (name, Value::str(format!("r{i}"))),
                (score, Value::Int(i)),
            ]));
        }
        (syms, store)
    }

    fn def(name: &str, attr: &str, kind: IndexKind) -> IndexDef {
        IndexDef {
            name: name.into(),
            source: "s".into(),
            attr: attr.into(),
            kind,
        }
    }

    #[test]
    fn hash_point_lookup() {
        let (syms, store) = fixture();
        let mut set = IndexSet::new();
        assert!(set.create(def("ix", "name", IndexKind::Hash), &syms, &store));
        let offs = set
            .lookup("name", &IndexPredicate::Eq(Value::str("r3")))
            .unwrap();
        assert_eq!(offs, vec![3]);
        assert!(set
            .lookup("name", &IndexPredicate::Eq(Value::str("nope")))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn hash_rejects_range() {
        let (syms, store) = fixture();
        let mut set = IndexSet::new();
        set.create(def("ix", "score", IndexKind::Hash), &syms, &store);
        let pred = IndexPredicate::Range {
            lo: Some((Value::Int(2), true)),
            hi: None,
        };
        assert!(set.lookup("score", &pred).is_none());
    }

    #[test]
    fn ordered_range_lookup() {
        let (syms, store) = fixture();
        let mut set = IndexSet::new();
        set.create(def("ix", "score", IndexKind::Ordered), &syms, &store);
        let pred = IndexPredicate::Range {
            lo: Some((Value::Int(3), true)),
            hi: Some((Value::Int(6), false)),
        };
        assert_eq!(set.lookup("score", &pred).unwrap(), vec![3, 4, 5]);
        // Ordered also answers equality.
        assert_eq!(
            set.lookup("score", &IndexPredicate::Eq(Value::Int(7)))
                .unwrap(),
            vec![7]
        );
    }

    #[test]
    fn duplicate_name_rejected_and_drop() {
        let (syms, store) = fixture();
        let mut set = IndexSet::new();
        assert!(set.create(def("ix", "name", IndexKind::Hash), &syms, &store));
        assert!(!set.create(def("ix", "score", IndexKind::Ordered), &syms, &store));
        assert!(set.drop_index("ix"));
        assert!(!set.drop_index("ix"));
        assert!(set.is_empty());
    }

    #[test]
    fn incremental_maintenance_tracks_appends_and_deletes() {
        let (mut syms, mut store) = fixture();
        let name = syms.intern("name");
        let mut set = IndexSet::new();
        set.create(def("ix", "name", IndexKind::Hash), &syms, &store);
        // Append a duplicate value at a new offset.
        let rec = Record::from_pairs([(name, Value::str("r3"))]);
        let id = store.append(rec.clone());
        set.note_append(&syms, &rec, id.offset);
        assert_eq!(
            set.lookup("name", &IndexPredicate::Eq(Value::str("r3")))
                .unwrap(),
            vec![3, 10]
        );
        // Delete the original.
        let old = store
            .delete(scdb_types::RecordId::new(store.source(), 3))
            .unwrap();
        set.note_delete(&syms, &old, 3);
        assert_eq!(
            set.lookup("name", &IndexPredicate::Eq(Value::str("r3")))
                .unwrap(),
            vec![10]
        );
    }

    #[test]
    fn nulls_not_indexed() {
        let (mut syms, store) = fixture();
        let name = syms.intern("name");
        let mut set = IndexSet::new();
        set.create(def("ix", "name", IndexKind::Hash), &syms, &store);
        let rec = Record::from_pairs([(name, Value::Null)]);
        set.note_append(&syms, &rec, 99);
        let idx = set.get("ix").unwrap();
        assert_eq!(idx.entries(), 10);
        assert!(set
            .lookup("name", &IndexPredicate::Eq(Value::Null))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rebuild_matches_incremental() {
        let (syms, store) = fixture();
        let mut set = IndexSet::new();
        set.create(def("ix", "score", IndexKind::Ordered), &syms, &store);
        let before = set
            .lookup(
                "score",
                &IndexPredicate::Range {
                    lo: None,
                    hi: Some((Value::Int(4), true)),
                },
            )
            .unwrap();
        set.rebuild_all(&syms, &store);
        let after = set
            .lookup(
                "score",
                &IndexPredicate::Range {
                    lo: None,
                    hi: Some((Value::Int(4), true)),
                },
            )
            .unwrap();
        assert_eq!(before, after);
        assert_eq!(after, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in [IndexKind::Hash, IndexKind::Ordered] {
            assert_eq!(IndexKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(IndexKind::from_tag(9), None);
        assert_eq!(IndexKind::Hash.to_string(), "hash");
        assert_eq!(IndexKind::Ordered.to_string(), "ordered");
    }
}
