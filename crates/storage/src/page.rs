//! Page geometry and locality ("line touch") counters.
//!
//! The OS.1 footnote in the paper imagines packing frequently co-accessed
//! data "to be used efficiently in the limited, but fast-access memory of
//! modern hardware including CPU cache". We cannot portably read hardware
//! counters, so the instance layer counts *page touches*: every record
//! access touches the page holding the record's current physical position.
//! Fewer distinct pages touched by a workload ⇒ better locality. The
//! counter is interior-mutable so read paths stay `&self`.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Page geometry: how many record slots share one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    records_per_page: u64,
}

impl PageConfig {
    /// Geometry with `records_per_page` slots per page (min 1).
    pub fn new(records_per_page: u64) -> Self {
        PageConfig {
            records_per_page: records_per_page.max(1),
        }
    }

    /// Slots per page.
    pub fn records_per_page(&self) -> u64 {
        self.records_per_page
    }

    /// The page holding physical position `pos`.
    pub fn page_of(&self, pos: u64) -> u64 {
        pos / self.records_per_page
    }

    /// Number of pages needed for `n` positions.
    pub fn pages_for(&self, n: u64) -> u64 {
        n.div_ceil(self.records_per_page)
    }
}

impl Default for PageConfig {
    fn default() -> Self {
        // 64 records/page ≈ a few cache lines of fixed-width fields; the
        // exact constant only scales the experiments, it does not change
        // who wins.
        PageConfig::new(64)
    }
}

/// Thread-safe accumulation of page touches.
#[derive(Debug, Default)]
pub struct TouchCounter {
    total: AtomicU64,
    seen: Mutex<std::collections::HashSet<u64>>,
}

impl TouchCounter {
    /// New empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a touch of `page`.
    pub fn touch(&self, page: u64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        self.seen.lock().insert(page);
    }

    /// Total touches (with repetition).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Distinct pages touched.
    pub fn distinct(&self) -> u64 {
        self.seen.lock().len() as u64
    }

    /// Clear all counts.
    pub fn reset(&self) {
        self.total.store(0, Ordering::Relaxed);
        self.seen.lock().clear();
    }
}

/// A mapping from logical record offsets to physical positions — the
/// mechanism by which the OS.1 clusterer changes locality without changing
/// record identity.
#[derive(Debug, Clone)]
pub struct PageMap {
    /// `position[offset] = physical position`.
    position: Vec<u64>,
}

impl PageMap {
    /// Identity map over `n` offsets.
    pub fn identity(n: u64) -> Self {
        PageMap {
            position: (0..n).collect(),
        }
    }

    /// Build from an explicit permutation `order`, where `order[i]` is the
    /// offset placed at physical position `i`.
    pub fn from_order(order: &[u64]) -> Self {
        let mut position = vec![0u64; order.len()];
        for (pos, &offset) in order.iter().enumerate() {
            position[offset as usize] = pos as u64;
        }
        PageMap { position }
    }

    /// Physical position of `offset`, if covered.
    pub fn position_of(&self, offset: u64) -> Option<u64> {
        self.position.get(offset as usize).copied()
    }

    /// Number of mapped offsets.
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// True when the map covers nothing.
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// Distinct pages a set of offsets lands on under `pages`.
    pub fn pages_touched(&self, offsets: &[u64], pages: PageConfig) -> u64 {
        let mut set = std::collections::HashSet::new();
        for &o in offsets {
            if let Some(p) = self.position_of(o) {
                set.insert(pages.page_of(p));
            }
        }
        set.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let p = PageConfig::new(4);
        assert_eq!(p.page_of(0), 0);
        assert_eq!(p.page_of(3), 0);
        assert_eq!(p.page_of(4), 1);
        assert_eq!(p.pages_for(0), 0);
        assert_eq!(p.pages_for(1), 1);
        assert_eq!(p.pages_for(9), 3);
    }

    #[test]
    fn zero_sized_pages_clamped() {
        let p = PageConfig::new(0);
        assert_eq!(p.records_per_page(), 1);
    }

    #[test]
    fn touch_counting() {
        let c = TouchCounter::new();
        c.touch(1);
        c.touch(1);
        c.touch(2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 2);
        c.reset();
        assert_eq!((c.total(), c.distinct()), (0, 0));
    }

    #[test]
    fn identity_map() {
        let m = PageMap::identity(5);
        assert_eq!(m.position_of(3), Some(3));
        assert_eq!(m.position_of(5), None);
    }

    #[test]
    fn from_order_inverts() {
        // Physical order: offsets 2,0,1 — so offset 2 is at position 0.
        let m = PageMap::from_order(&[2, 0, 1]);
        assert_eq!(m.position_of(2), Some(0));
        assert_eq!(m.position_of(0), Some(1));
        assert_eq!(m.position_of(1), Some(2));
    }

    #[test]
    fn pages_touched_reflects_layout() {
        let pages = PageConfig::new(2);
        // Offsets 0 and 3 far apart in identity layout: 2 pages.
        let id = PageMap::identity(4);
        assert_eq!(id.pages_touched(&[0, 3], pages), 2);
        // Layout placing 0 and 3 adjacent: 1 page.
        let packed = PageMap::from_order(&[0, 3, 1, 2]);
        assert_eq!(packed.pages_touched(&[0, 3], pages), 1);
    }
}
