//! Continuous incremental entity resolution — FS.1 of the paper.
//!
//! "A self-curating database must adaptively manage instance relations in
//! light of new information. How does one adapt existing entity resolution
//! techniques so they work across different schemata without requiring
//! prior knowledge about external data sources…?" (FS.1). The paper is
//! explicit that "it is not wise to assume that as each source is added …
//! an all-to-all entity resolution is performed comprehensively across all
//! data sources" (§3.2).
//!
//! This crate answers with:
//!
//! * [`similarity`] — the classic string/record similarity toolbox
//!   (Levenshtein, Jaro–Winkler, token Jaccard, q-grams, TF cosine,
//!   numeric closeness);
//! * [`normalize`] — deterministic normalization shared by all metrics;
//! * [`align`] — *cross-schema attribute alignment without prior
//!   knowledge*: attribute pairs are scored from the data (value overlap,
//!   kind compatibility, name similarity), so `Drug Name` in one source
//!   aligns with `Drug` in another (Figure 2);
//! * [`blocking`] — candidate generation: standard key blocking and
//!   MinHash-LSH, ablated in experiment E-T1-FS1;
//! * [`incremental`] — the incremental resolver (union-find clusters,
//!   per-record candidate probing) and the batch all-pairs baseline it is
//!   measured against;
//! * [`eval`] — pairwise precision/recall/F1 against ground truth.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod blocking;
pub mod eval;
pub mod incremental;
pub mod normalize;
pub mod similarity;

pub use align::{AlignmentMap, SchemaAligner};
pub use blocking::{Blocker, BlockingStrategy};
pub use eval::{score_pairs, PairScore};
pub use incremental::{BatchResolver, IncrementalResolver, MergeEvent, ResolverConfig};
pub use similarity::record_similarity;
