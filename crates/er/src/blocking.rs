//! Candidate generation: blocking.
//!
//! All-pairs comparison is quadratic; the paper rules it out explicitly
//! ("it is not wise to assume … an all-to-all entity resolution is
//! performed comprehensively", §3.2). Blocking maps each record to a small
//! set of keys; only records sharing a key are compared. Two strategies
//! are provided for the E-T1-FS1 ablation:
//!
//! * **Standard keys** — token prefixes of the record's textual content;
//!   cheap, high recall for typo-free data.
//! * **MinHash LSH** — banded MinHash signatures over token sets;
//!   tunable recall for noisy data at higher key cost.

use std::collections::HashMap;

use scdb_types::Record;

use crate::normalize::token_set;

/// Which blocking scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// No blocking: every record lands in one global block (the all-pairs
    /// baseline).
    None,
    /// Token-prefix keys.
    StandardKeys {
        /// Number of leading characters per token key.
        prefix_len: usize,
    },
    /// MinHash LSH with `bands` bands of `rows` hash rows each.
    MinHashLsh {
        /// Number of bands (each band is one key).
        bands: usize,
        /// Rows (hash functions) per band.
        rows: usize,
    },
}

/// A blocking index: key → record handles (opaque `u64`s supplied by the
/// caller, typically record offsets or dense ids).
///
/// Oversized blocks (beyond [`Blocker::MAX_BLOCK`]) are *purged* from
/// candidate generation — a key shared by a large fraction of the corpus
/// (a ubiquitous token) carries no discriminating signal and would crowd
/// real matches out of bounded candidate lists. This is the standard
/// block-purging heuristic from the blocking literature.
#[derive(Debug)]
pub struct Blocker {
    strategy: BlockingStrategy,
    blocks: HashMap<u64, Vec<u64>>,
    keys_of: HashMap<u64, Vec<u64>>,
    /// Seeds for MinHash hash functions (deterministic).
    seeds: Vec<u64>,
}

/// FNV-1a hash of a string with a seed (deterministic across runs, unlike
/// `std` hashing).
fn fnv1a(seed: u64, s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Blocker {
    /// New blocker for `strategy`.
    pub fn new(strategy: BlockingStrategy) -> Self {
        let seeds = match strategy {
            BlockingStrategy::MinHashLsh { bands, rows } => (0..(bands * rows) as u64)
                .map(|i| {
                    i.wrapping_mul(0x2545F4914F6CDD1D)
                        .wrapping_add(0x9E3779B97F4A7C15)
                })
                .collect(),
            _ => Vec::new(),
        };
        Blocker {
            strategy,
            blocks: HashMap::new(),
            keys_of: HashMap::new(),
            seeds,
        }
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> BlockingStrategy {
        self.strategy
    }

    /// Record text used for key derivation: all values rendered.
    fn record_text(record: &Record) -> String {
        record
            .iter()
            .map(|(_, v)| v.render().into_owned())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Keys for a record under the current strategy.
    pub fn keys(&self, record: &Record) -> Vec<u64> {
        let text = Self::record_text(record);
        match self.strategy {
            BlockingStrategy::None => vec![0],
            BlockingStrategy::StandardKeys { prefix_len } => {
                let mut keys: Vec<u64> = token_set(&text)
                    .iter()
                    .map(|t| {
                        let prefix: String = t.chars().take(prefix_len.max(1)).collect();
                        fnv1a(0, &prefix)
                    })
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            }
            BlockingStrategy::MinHashLsh { bands, rows } => {
                let tokens = token_set(&text);
                if tokens.is_empty() {
                    return vec![0];
                }
                // Signature: min hash per function.
                let sig: Vec<u64> = self
                    .seeds
                    .iter()
                    .map(|seed| {
                        tokens
                            .iter()
                            .map(|t| fnv1a(*seed, t))
                            .min()
                            .expect("non-empty tokens")
                    })
                    .collect();
                // One key per band: hash of the band's rows.
                (0..bands)
                    .map(|b| {
                        let band = &sig[b * rows..(b + 1) * rows];
                        let mut h = 0xcbf29ce484222325u64 ^ (b as u64);
                        for v in band {
                            h ^= v;
                            h = h.wrapping_mul(0x100000001b3);
                        }
                        h
                    })
                    .collect()
            }
        }
    }

    /// Blocks larger than this stop contributing candidates (purging).
    pub const MAX_BLOCK: usize = 64;

    fn rank_candidates(shared: HashMap<u64, u32>, exclude: u64) -> Vec<u64> {
        let mut v: Vec<(u64, u32)> = shared.into_iter().filter(|(h, _)| *h != exclude).collect();
        // Most shared keys first (strongest blocking signal), then most
        // recent handle — recent records are likelier duplicates in a
        // streaming setting and ties must break deterministically.
        v.sort_by_key(|(h, c)| (std::cmp::Reverse(*c), std::cmp::Reverse(*h)));
        v.into_iter().map(|(h, _)| h).collect()
    }

    /// Insert a record under `handle`, returning candidate handles ranked
    /// by the number of blocks shared (excluding itself). Oversized
    /// blocks do not contribute candidates.
    pub fn insert(&mut self, handle: u64, record: &Record) -> Vec<u64> {
        let keys = self.keys(record);
        let purge = self.purge_limit();
        let mut shared: HashMap<u64, u32> = HashMap::new();
        for k in &keys {
            let bucket = self.blocks.entry(*k).or_default();
            if bucket.len() <= purge {
                for h in bucket.iter() {
                    *shared.entry(*h).or_insert(0) += 1;
                }
            }
            bucket.push(handle);
        }
        self.keys_of.insert(handle, keys);
        Self::rank_candidates(shared, handle)
    }

    /// The purge threshold: `None` is the deliberate all-pairs baseline
    /// and is never purged; real blocking strategies purge oversized
    /// blocks.
    fn purge_limit(&self) -> usize {
        match self.strategy {
            BlockingStrategy::None => usize::MAX,
            _ => Self::MAX_BLOCK,
        }
    }

    /// Look up ranked candidates without inserting.
    pub fn probe(&self, record: &Record) -> Vec<u64> {
        let purge = self.purge_limit();
        let mut shared: HashMap<u64, u32> = HashMap::new();
        for k in self.keys(record) {
            if let Some(bucket) = self.blocks.get(&k) {
                if bucket.len() <= purge {
                    for h in bucket.iter() {
                        *shared.entry(*h).or_insert(0) += 1;
                    }
                }
            }
        }
        Self::rank_candidates(shared, u64::MAX)
    }

    /// Remove a handle from all its blocks.
    pub fn remove(&mut self, handle: u64) {
        if let Some(keys) = self.keys_of.remove(&handle) {
            for k in keys {
                if let Some(bucket) = self.blocks.get_mut(&k) {
                    bucket.retain(|h| *h != handle);
                    if bucket.is_empty() {
                        self.blocks.remove(&k);
                    }
                }
            }
        }
    }

    /// Number of non-empty blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Mean block size (candidate-list cost proxy).
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let total: usize = self.blocks.values().map(Vec::len).sum();
        total as f64 / self.blocks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::{SymbolTable, Value};

    fn rec(syms: &mut SymbolTable, name: &str) -> Record {
        let a = syms.intern("name");
        Record::from_pairs([(a, Value::str(name))])
    }

    #[test]
    fn none_strategy_is_one_global_block() {
        let mut syms = SymbolTable::new();
        let mut b = Blocker::new(BlockingStrategy::None);
        assert!(b.insert(1, &rec(&mut syms, "alpha")).is_empty());
        assert_eq!(b.insert(2, &rec(&mut syms, "zeta")), vec![1]);
        // Candidates rank most-recent first.
        assert_eq!(b.insert(3, &rec(&mut syms, "omega")), vec![2, 1]);
        assert_eq!(b.block_count(), 1);
    }

    #[test]
    fn standard_keys_group_shared_prefixes() {
        let mut syms = SymbolTable::new();
        let mut b = Blocker::new(BlockingStrategy::StandardKeys { prefix_len: 4 });
        b.insert(1, &rec(&mut syms, "Methotrexate"));
        let cands = b.insert(2, &rec(&mut syms, "methotrexate sodium"));
        assert_eq!(cands, vec![1]);
        // Unrelated drug: different prefix, no candidates.
        let cands = b.insert(3, &rec(&mut syms, "Warfarin"));
        assert!(cands.is_empty());
    }

    #[test]
    fn lsh_groups_similar_token_sets() {
        let mut syms = SymbolTable::new();
        let mut b = Blocker::new(BlockingStrategy::MinHashLsh { bands: 8, rows: 2 });
        b.insert(
            1,
            &rec(&mut syms, "warfarin blood clot prevention dosage study"),
        );
        let cands = b.insert(
            2,
            &rec(&mut syms, "warfarin blood clot prevention dose study"),
        );
        assert_eq!(cands, vec![1], "near-identical token sets must collide");
        let cands = b.insert(3, &rec(&mut syms, "completely different content entirely"));
        assert!(cands.is_empty());
    }

    #[test]
    fn probe_does_not_insert() {
        let mut syms = SymbolTable::new();
        let mut b = Blocker::new(BlockingStrategy::StandardKeys { prefix_len: 3 });
        b.insert(1, &rec(&mut syms, "ibuprofen"));
        let r = rec(&mut syms, "ibuprofen advil");
        assert_eq!(b.probe(&r), vec![1]);
        assert_eq!(b.probe(&r), vec![1]); // unchanged
    }

    #[test]
    fn remove_cleans_blocks() {
        let mut syms = SymbolTable::new();
        let mut b = Blocker::new(BlockingStrategy::StandardKeys { prefix_len: 3 });
        b.insert(1, &rec(&mut syms, "ibuprofen"));
        b.remove(1);
        assert_eq!(b.block_count(), 0);
        assert!(b.probe(&rec(&mut syms, "ibuprofen")).is_empty());
    }

    #[test]
    fn empty_record_still_gets_a_key() {
        let b = Blocker::new(BlockingStrategy::MinHashLsh { bands: 4, rows: 2 });
        assert_eq!(b.keys(&Record::new()), vec![0]);
    }

    #[test]
    fn deterministic_keys() {
        let mut syms = SymbolTable::new();
        let b1 = Blocker::new(BlockingStrategy::MinHashLsh { bands: 4, rows: 2 });
        let b2 = Blocker::new(BlockingStrategy::MinHashLsh { bands: 4, rows: 2 });
        let r = rec(&mut syms, "determinism check tokens");
        assert_eq!(b1.keys(&r), b2.keys(&r));
    }
}
