//! Cross-schema attribute alignment without prior knowledge (FS.1).
//!
//! Figure 2's sources disagree on vocabulary: DrugBank has `Drug Name` /
//! `Drug Targets (Genes)`, CTD has `Gene` / `Disease`. The aligner scores
//! every attribute pair between two sources from three signals computed
//! *from the data alone* — value-set overlap, value-kind compatibility,
//! and attribute-name similarity — and keeps a greedy one-to-one matching.
//! No manual ETL, no declared mappings; exactly the "incremental schema
//! evolution" FS.1 asks for.

use std::collections::{HashMap, HashSet};

use scdb_types::{Record, Symbol, SymbolTable};

use crate::similarity::string_similarity;

/// A one-to-one attribute alignment between two sources with per-pair
/// confidence weights.
#[derive(Debug, Clone, Default)]
pub struct AlignmentMap {
    pairs: Vec<(Symbol, Symbol, f64)>,
}

impl AlignmentMap {
    /// Empty alignment (forces the fallback path in record similarity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Identity alignment over `attrs` (same-schema comparison).
    pub fn identity(attrs: impl IntoIterator<Item = Symbol>) -> Self {
        AlignmentMap {
            pairs: attrs.into_iter().map(|a| (a, a, 1.0)).collect(),
        }
    }

    /// Build from explicit pairs.
    pub fn from_pairs(pairs: Vec<(Symbol, Symbol, f64)>) -> Self {
        AlignmentMap { pairs }
    }

    /// Aligned `(left attr, right attr, weight)` triples.
    pub fn pairs(&self) -> impl Iterator<Item = (Symbol, Symbol, f64)> + '_ {
        self.pairs.iter().copied()
    }

    /// Number of aligned pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no attributes aligned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The right-side attribute aligned with `left`, if any.
    pub fn right_of(&self, left: Symbol) -> Option<Symbol> {
        self.pairs
            .iter()
            .find(|(l, _, _)| *l == left)
            .map(|(_, r, _)| *r)
    }
}

/// Accumulates per-attribute value samples for one source and produces
/// alignments against another source's profile.
#[derive(Debug, Default)]
pub struct SchemaAligner {
    /// attribute → sampled distinct rendered values (bounded).
    samples: HashMap<Symbol, HashSet<String>>,
    /// attribute → numeric fraction estimate (numeric count, total count).
    numeric: HashMap<Symbol, (u64, u64)>,
    /// attribute → non-null observations.
    observed: HashMap<Symbol, u64>,
    sample_cap: usize,
}

impl SchemaAligner {
    /// New profile keeping at most `sample_cap` distinct values per
    /// attribute.
    pub fn new(sample_cap: usize) -> Self {
        SchemaAligner {
            sample_cap: sample_cap.max(8),
            ..Default::default()
        }
    }

    /// Observe one record of this source.
    pub fn observe(&mut self, record: &Record) {
        for (attr, value) in record.iter() {
            if value.is_null() {
                continue;
            }
            let (num, tot) = self.numeric.entry(attr).or_insert((0, 0));
            *tot += 1;
            if value.as_float().is_some() {
                *num += 1;
            }
            *self.observed.entry(attr).or_insert(0) += 1;
            let set = self.samples.entry(attr).or_default();
            if set.len() < self.sample_cap {
                set.insert(crate::normalize::normalize(&value.render()));
            }
        }
    }

    /// How *identifying* an attribute is: the ratio of distinct sampled
    /// values to observations, in `(0, 1]`. Near 1 for identity-like
    /// attributes (names), low for shared context attributes (a gene
    /// referenced by many drugs). Used to weight record similarity so two
    /// records do not co-refer merely because they mention the same
    /// low-cardinality value.
    pub fn distinctiveness(&self, attr: Symbol) -> f64 {
        let Some(set) = self.samples.get(&attr) else {
            return 1.0;
        };
        let observed = self
            .observed
            .get(&attr)
            .copied()
            .unwrap_or(0)
            .min(self.sample_cap as u64)
            .max(1);
        (set.len() as f64 / observed as f64).clamp(0.05, 1.0)
    }

    /// Attributes profiled so far.
    pub fn attrs(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.samples.keys().copied()
    }

    fn numeric_fraction(&self, attr: Symbol) -> f64 {
        match self.numeric.get(&attr) {
            Some((n, t)) if *t > 0 => *n as f64 / *t as f64,
            _ => 0.0,
        }
    }

    /// Score the pairing of `self.attr_a` with `other.attr_b` in [0, 1].
    fn pair_score(
        &self,
        attr_a: Symbol,
        other: &SchemaAligner,
        attr_b: Symbol,
        symbols: &SymbolTable,
    ) -> f64 {
        let (Some(sa), Some(sb)) = (self.samples.get(&attr_a), other.samples.get(&attr_b)) else {
            return 0.0;
        };
        if sa.is_empty() || sb.is_empty() {
            return 0.0;
        }
        // Signal 1: value overlap (containment-style Jaccard: overlap over
        // the smaller set, since samples are caps of different universes).
        let inter = sa.intersection(sb).count() as f64;
        let overlap = inter / sa.len().min(sb.len()) as f64;
        // Signal 2: kind compatibility (both numeric or both textual).
        let fa = self.numeric_fraction(attr_a);
        let fb = other.numeric_fraction(attr_b);
        let kind = 1.0 - (fa - fb).abs();
        // Signal 3: name similarity.
        let name = string_similarity(symbols.resolve(attr_a), symbols.resolve(attr_b));
        0.6 * overlap + 0.2 * kind + 0.2 * name
    }

    /// Align this source's attributes against `other`'s: greedy best-first
    /// one-to-one matching, keeping pairs scoring at least `threshold`.
    pub fn align(
        &self,
        other: &SchemaAligner,
        symbols: &SymbolTable,
        threshold: f64,
    ) -> AlignmentMap {
        let mut scored: Vec<(f64, Symbol, Symbol)> = Vec::new();
        for a in self.samples.keys() {
            for b in other.samples.keys() {
                let s = self.pair_score(*a, other, *b, symbols);
                if s >= threshold {
                    scored.push((s, *a, *b));
                }
            }
        }
        scored.sort_by(|x, y| {
            y.0.total_cmp(&x.0)
                .then_with(|| (x.1, x.2).cmp(&(y.1, y.2)))
        });
        let mut used_a = HashSet::new();
        let mut used_b = HashSet::new();
        let mut pairs = Vec::new();
        for (s, a, b) in scored {
            if used_a.contains(&a) || used_b.contains(&b) {
                continue;
            }
            used_a.insert(a);
            used_b.insert(b);
            pairs.push((a, b, s));
        }
        AlignmentMap::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::Value;

    /// Two sources describing drugs with different vocabularies.
    fn setup() -> (SymbolTable, SchemaAligner, SchemaAligner, Vec<Symbol>) {
        let mut syms = SymbolTable::new();
        let a_name = syms.intern("Drug Name");
        let a_gene = syms.intern("Drug Targets (Genes)");
        let a_dose = syms.intern("Daily Dose");
        let b_name = syms.intern("drug");
        let b_gene = syms.intern("gene");
        let b_dose = syms.intern("dosage_mg");

        let drugs = ["Warfarin", "Ibuprofen", "Methotrexate", "Acetaminophen"];
        let genes = ["TP53", "PTGS2", "DHFR"];

        let mut left = SchemaAligner::new(64);
        let mut right = SchemaAligner::new(64);
        for (i, d) in drugs.iter().enumerate() {
            left.observe(&Record::from_pairs([
                (a_name, Value::str(*d)),
                (a_gene, Value::str(genes[i % 3])),
                (a_dose, Value::Float(5.0 + i as f64)),
            ]));
            right.observe(&Record::from_pairs([
                (b_name, Value::str(d.to_lowercase())),
                (b_gene, Value::str(genes[(i + 1) % 3])),
                (b_dose, Value::Float(4.0 + i as f64)),
            ]));
        }
        (
            syms,
            left,
            right,
            vec![a_name, a_gene, a_dose, b_name, b_gene, b_dose],
        )
    }

    #[test]
    fn aligns_by_value_overlap_despite_renames() {
        let (syms, left, right, ids) = setup();
        let map = left.align(&right, &syms, 0.3);
        // Drug Name ↔ drug and Drug Targets ↔ gene must align.
        assert_eq!(map.right_of(ids[0]), Some(ids[3]), "name alignment");
        assert_eq!(map.right_of(ids[1]), Some(ids[4]), "gene alignment");
    }

    #[test]
    fn numeric_attrs_align_by_kind() {
        let (syms, left, right, ids) = setup();
        let map = left.align(&right, &syms, 0.3);
        assert_eq!(map.right_of(ids[2]), Some(ids[5]), "dose alignment");
    }

    #[test]
    fn alignment_is_one_to_one() {
        let (syms, left, right, _) = setup();
        let map = left.align(&right, &syms, 0.0);
        let lefts: HashSet<Symbol> = map.pairs().map(|(l, _, _)| l).collect();
        let rights: HashSet<Symbol> = map.pairs().map(|(_, r, _)| r).collect();
        assert_eq!(lefts.len(), map.len());
        assert_eq!(rights.len(), map.len());
    }

    #[test]
    fn high_threshold_prunes_weak_pairs() {
        let (syms, left, right, _) = setup();
        let strict = left.align(&right, &syms, 0.99);
        let loose = left.align(&right, &syms, 0.1);
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn identity_map() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("x");
        let m = AlignmentMap::identity([a]);
        assert_eq!(m.right_of(a), Some(a));
        assert_eq!(m.len(), 1);
        assert!(AlignmentMap::empty().is_empty());
    }

    #[test]
    fn empty_profiles_align_to_nothing() {
        let syms = SymbolTable::new();
        let a = SchemaAligner::new(16);
        let b = SchemaAligner::new(16);
        assert!(a.align(&b, &syms, 0.0).is_empty());
    }
}
