//! String, value, and record similarity metrics.
//!
//! The record-level metric composes attribute-level similarities through an
//! [`AlignmentMap`] so two records from sources
//! with different schemata compare on the attributes the aligner has
//! matched — the mechanism FS.1 demands ("work across different schemata
//! without requiring prior knowledge").

use std::collections::HashMap;

use scdb_types::{Record, Symbol, Value};

use crate::align::AlignmentMap;
use crate::normalize::{norm_tokens, normalize, qgrams, token_set};

/// Levenshtein edit distance (iterative two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity in [0, 1].
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched.push((i, j));
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched b-chars out of order.
    let mut b_order: Vec<usize> = a_matched.iter().map(|(_, j)| *j).collect();
    let mut transpositions = 0usize;
    let sorted = {
        let mut s = b_order.clone();
        s.sort_unstable();
        s
    };
    for (x, y) in b_order.iter().zip(sorted.iter()) {
        if x != y {
            transpositions += 1;
        }
    }
    b_order.clear();
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity (prefix bonus up to 4 chars, scale 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of two sorted, deduplicated slices.
pub fn jaccard<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Token-set Jaccard of two strings.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    jaccard(&token_set(a), &token_set(b))
}

/// q-gram Jaccard of two strings (multiset collapsed to set).
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let mut ga = qgrams(a, q);
    let mut gb = qgrams(b, q);
    ga.sort();
    ga.dedup();
    gb.sort();
    gb.dedup();
    jaccard(&ga, &gb)
}

/// Cosine similarity over term-frequency maps.
pub fn cosine(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Term-frequency vector of a string.
pub fn tf_vector(s: &str) -> HashMap<String, f64> {
    let mut m = HashMap::new();
    for t in norm_tokens(s) {
        *m.entry(t).or_insert(0.0) += 1.0;
    }
    m
}

/// A blended string similarity: the maximum of token Jaccard, Jaro–Winkler
/// (on the normalized strings), and 3-gram Jaccard. Robust across the
/// typo/reorder/abbreviation variation the datagen corruptions produce.
pub fn string_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    if na == nb {
        return 1.0;
    }
    token_jaccard(a, b)
        .max(jaro_winkler(&na, &nb))
        .max(qgram_jaccard(a, b, 3))
}

/// Similarity between two values of possibly different kinds.
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    if a.is_null() || b.is_null() {
        return 0.0;
    }
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => {
            let denom = x.abs().max(y.abs()).max(1e-9);
            (1.0 - (x - y).abs() / denom).max(0.0)
        }
        _ => string_similarity(&a.render(), &b.render()),
    }
}

/// Record similarity through an attribute alignment.
///
/// For each aligned attribute pair present in both records, compute value
/// similarity weighted by the alignment confidence; average over the pairs
/// that could be compared, then scale by *coverage* — the fraction of the
/// larger record's attributes that participated. Without the coverage
/// factor a single shared value (a drug's gene *target* equalling a gene
/// record's *identity*) would fabricate a co-reference; with it, records
/// must agree across most of their content, not on one cell — the
/// precision-first stance FS.1's "adaptively manage instance relations"
/// requires of an autonomous curator. When nothing aligns,
/// fall back to comparing the concatenated textual rendering of both
/// records (better than silently returning 0 for schema-less sources).
pub fn record_similarity(a: &Record, b: &Record, alignment: &AlignmentMap) -> f64 {
    let mut total_weight = 0.0;
    let mut score = 0.0;
    let mut compared = 0usize;
    for (attr_a, attr_b, weight) in alignment.pairs() {
        let (Some(va), Some(vb)) = (a.get(attr_a), b.get(attr_b)) else {
            continue;
        };
        score += weight * value_similarity(va, vb);
        total_weight += weight;
        compared += 1;
    }
    if total_weight > 0.0 {
        let coverage = compared as f64 / a.len().max(b.len()).max(1) as f64;
        return (score / total_weight) * coverage.min(1.0);
    }
    // Fallback: bag-of-text comparison.
    let text = |r: &Record| {
        r.iter()
            .map(|(_, v)| v.render().into_owned())
            .collect::<Vec<_>>()
            .join(" ")
    };
    string_similarity(&text(a), &text(b))
}

/// Same-schema record similarity: identity alignment over shared
/// attributes, equally weighted.
pub fn record_similarity_same_schema(a: &Record, b: &Record) -> f64 {
    record_similarity_weighted(a, b, |_| 1.0)
}

/// Same-schema record similarity with per-attribute weights (typically
/// the profiler's distinctiveness — see
/// [`SchemaAligner::distinctiveness`](crate::align::SchemaAligner::distinctiveness)).
/// Two records sharing only a ubiquitous context value (the same gene
/// referenced by many drugs) score low; agreement on identifying
/// attributes dominates.
pub fn record_similarity_weighted(a: &Record, b: &Record, weight: impl Fn(Symbol) -> f64) -> f64 {
    let shared: Vec<Symbol> = a.attrs().filter(|s| b.get(*s).is_some()).collect();
    if shared.is_empty() {
        return 0.0;
    }
    let mut score = 0.0;
    let mut total = 0.0;
    for s in &shared {
        let w = weight(*s).max(0.0);
        score += w * value_similarity(a.get(*s).expect("shared"), b.get(*s).expect("shared"));
        total += w;
    }
    if total == 0.0 {
        return 0.0;
    }
    let coverage = shared.len() as f64 / a.len().max(b.len()).max(1) as f64;
    (score / total) * coverage.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::SymbolTable;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert!(levenshtein_sim("abc", "abc") == 1.0);
        assert!(levenshtein_sim("abc", "xyz") == 0.0);
    }

    #[test]
    fn jaro_winkler_basics() {
        assert!((jaro_winkler("martha", "marhta") - 0.961).abs() < 0.01);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
        // Prefix bonus: winkler > jaro for shared prefixes.
        assert!(jaro_winkler("prefixed", "prefixes") >= jaro("prefixed", "prefixes"));
        // Identical strings.
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard::<u32>(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
    }

    #[test]
    fn token_jaccard_sees_through_reorder() {
        assert_eq!(
            token_jaccard("rheumatoid arthritis", "Arthritis, Rheumatoid"),
            1.0
        );
    }

    #[test]
    fn qgram_tolerates_typos() {
        let s = qgram_jaccard("methotrexate", "methotrexat", 3);
        assert!(s > 0.6, "got {s}");
    }

    #[test]
    fn cosine_basics() {
        let a = tf_vector("drug target drug");
        let b = tf_vector("drug target");
        assert!(cosine(&a, &b) > 0.9);
        let c = tf_vector("unrelated words");
        assert_eq!(cosine(&a, &c), 0.0);
        assert_eq!(cosine(&HashMap::new(), &a), 0.0);
    }

    #[test]
    fn string_similarity_blend() {
        assert_eq!(string_similarity("Ibuprofen (Advil)", "ibuprofen"), 1.0);
        assert!(string_similarity("Methotrexate", "Methotrexate sodium") > 0.5);
        // Unrelated names score clearly below related ones (Jaro–Winkler
        // floors the blend around 0.5 for same-alphabet words).
        let unrelated = string_similarity("Warfarin", "Acetaminophen");
        let related = string_similarity("Methotrexate", "Methotrexate sodium");
        assert!(unrelated < related);
        assert!(unrelated < 0.7, "got {unrelated}");
    }

    #[test]
    fn value_similarity_numeric() {
        assert!(value_similarity(&Value::Float(5.0), &Value::Float(5.1)) > 0.9);
        assert!(value_similarity(&Value::Int(100), &Value::Int(1)) < 0.1);
        assert_eq!(value_similarity(&Value::Null, &Value::Int(1)), 0.0);
    }

    #[test]
    fn same_schema_record_similarity() {
        let mut t = SymbolTable::new();
        let name = t.intern("name");
        let dose = t.intern("dose");
        let a = Record::from_pairs([(name, Value::str("Warfarin")), (dose, Value::Float(5.1))]);
        let b = Record::from_pairs([(name, Value::str("warfarin")), (dose, Value::Float(5.0))]);
        let c = Record::from_pairs([(name, Value::str("Ibuprofen")), (dose, Value::Float(0.2))]);
        assert!(record_similarity_same_schema(&a, &b) > 0.9);
        assert!(record_similarity_same_schema(&a, &b) > record_similarity_same_schema(&a, &c));
        let empty = Record::new();
        assert_eq!(record_similarity_same_schema(&a, &empty), 0.0);
    }
}
