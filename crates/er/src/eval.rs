//! Pairwise precision/recall/F1 evaluation against ground truth.
//!
//! The datagen crate labels every synthetic record with the true entity it
//! denotes; this module scores a resolver's clustering the standard way —
//! over co-reference *pairs* — using the contingency-table identity so the
//! computation is linear in the number of records rather than quadratic.

use std::collections::HashMap;
use std::hash::Hash;

/// Pairwise clustering quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// Correctly predicted co-referent pairs.
    pub true_positives: u64,
    /// Predicted pairs that are not truly co-referent.
    pub false_positives: u64,
    /// True pairs the prediction missed.
    pub false_negatives: u64,
}

impl PairScore {
    /// Precision = TP / (TP + FP); 1.0 when no pairs were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when no true pairs exist.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 — harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn choose2(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Score `predicted` cluster assignments against `truth` labels. Records
/// present in only one map are ignored.
pub fn score_pairs<K, P, T>(predicted: &HashMap<K, P>, truth: &HashMap<K, T>) -> PairScore
where
    K: Eq + Hash,
    P: Eq + Hash + Clone,
    T: Eq + Hash + Clone,
{
    // Contingency table: (predicted cluster, true cluster) → size.
    let mut cell: HashMap<(P, T), u64> = HashMap::new();
    let mut pred_sizes: HashMap<P, u64> = HashMap::new();
    let mut true_sizes: HashMap<T, u64> = HashMap::new();
    for (k, p) in predicted {
        let Some(t) = truth.get(k) else { continue };
        *cell.entry((p.clone(), t.clone())).or_insert(0) += 1;
        *pred_sizes.entry(p.clone()).or_insert(0) += 1;
        *true_sizes.entry(t.clone()).or_insert(0) += 1;
    }
    let tp: u64 = cell.values().map(|&n| choose2(n)).sum();
    let predicted_pairs: u64 = pred_sizes.values().map(|&n| choose2(n)).sum();
    let true_pairs: u64 = true_sizes.values().map(|&n| choose2(n)).sum();
    PairScore {
        true_positives: tp,
        false_positives: predicted_pairs - tp,
        false_negatives: true_pairs - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, u32)]) -> HashMap<u32, u32> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_clustering() {
        let truth = map(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = map(&[(0, 10), (1, 10), (2, 20), (3, 20)]);
        let s = score_pairs(&pred, &truth);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn over_merging_hurts_precision() {
        let truth = map(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = map(&[(0, 5), (1, 5), (2, 5), (3, 5)]);
        let s = score_pairs(&pred, &truth);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 4);
        assert_eq!(s.recall(), 1.0);
        assert!(s.precision() < 0.5);
    }

    #[test]
    fn under_merging_hurts_recall() {
        let truth = map(&[(0, 0), (1, 0), (2, 0)]);
        let pred = map(&[(0, 1), (1, 2), (2, 3)]);
        let s = score_pairs(&pred, &truth);
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_negatives, 3);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 1.0); // nothing predicted
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn records_missing_from_truth_ignored() {
        let truth = map(&[(0, 0), (1, 0)]);
        let pred = map(&[(0, 9), (1, 9), (99, 9)]);
        let s = score_pairs(&pred, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn empty_inputs() {
        let s = score_pairs::<u32, u32, u32>(&HashMap::new(), &HashMap::new());
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
