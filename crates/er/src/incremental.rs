//! The incremental resolver (FS.1) and its batch baseline.
//!
//! The incremental resolver processes one record at a time, as sources
//! stream in: block → probe candidates → score against cluster members →
//! merge when above threshold. Work per record is bounded by
//! `max_candidates`, so the curator keeps up with ingestion — the property
//! the E-T1-FS1 experiment measures against periodic all-pairs
//! re-resolution ([`BatchResolver`]).

use std::collections::HashMap;

use scdb_types::{EntityId, IdGen, Record, RecordId, SourceId, Symbol, SymbolTable};

use crate::align::{AlignmentMap, SchemaAligner};
use crate::blocking::{Blocker, BlockingStrategy};
use crate::similarity::{
    record_similarity, record_similarity_same_schema, record_similarity_weighted,
};

/// Same-schema similarity weighted by a source profile's distinctiveness.
fn scdb_er_weighted(a: &Record, b: &Record, profile: &SchemaAligner) -> f64 {
    // Squared distinctiveness: context attributes (shared genes/diseases)
    // must not be able to outvote a disagreeing identity attribute.
    record_similarity_weighted(a, b, |attr| {
        let d = profile.distinctiveness(attr);
        d * d
    })
}

/// Resolver tuning knobs.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Similarity at or above which two records co-refer.
    pub match_threshold: f64,
    /// Candidate generation scheme.
    pub blocking: BlockingStrategy,
    /// Maximum candidates compared per incoming record.
    pub max_candidates: usize,
    /// Attribute alignments are rebuilt after this many new records.
    pub realign_interval: u64,
    /// Alignment pair-score threshold.
    pub align_threshold: f64,
    /// Per-attribute sample cap inside the aligner.
    pub align_sample_cap: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            // Calibrated on the scaled life-science corpus: 0.88 keeps
            // pairwise recall at 1.0 under moderate name corruption while
            // eliminating chained false merges (see tests/curation_quality).
            match_threshold: 0.88,
            blocking: BlockingStrategy::StandardKeys { prefix_len: 4 },
            max_candidates: 32,
            realign_interval: 256,
            align_threshold: 0.35,
            align_sample_cap: 256,
        }
    }
}

/// What happened when a record was added.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeEvent {
    /// The record just resolved.
    pub record: RecordId,
    /// The entity it now belongs to.
    pub entity: EntityId,
    /// Entities that were fused into `entity` because this record bridged
    /// them (empty for a plain attach or a fresh entity).
    pub absorbed: Vec<EntityId>,
    /// Best similarity that justified the decision (1.0 for fresh).
    pub similarity: f64,
    /// True when a brand-new entity was minted.
    pub fresh: bool,
}

#[derive(Debug)]
struct CachedAlignment {
    map: AlignmentMap,
    built_at: u64,
}

/// The streaming entity resolver.
#[derive(Debug)]
pub struct IncrementalResolver {
    config: ResolverConfig,
    blocker: Blocker,
    records: Vec<(RecordId, Record)>,
    handle_of: HashMap<RecordId, u64>,
    parent: Vec<u64>,
    entity_of_root: HashMap<u64, EntityId>,
    idgen: IdGen,
    aligners: HashMap<SourceId, SchemaAligner>,
    alignments: HashMap<(SourceId, SourceId), CachedAlignment>,
    /// Per-source designated identity attribute (the attribute whose
    /// value *names* the record's entity). When both sides of a
    /// comparison have one, identity similarity dominates the score.
    identity_attrs: HashMap<SourceId, Symbol>,
    comparisons: u64,
    added: u64,
}

impl IncrementalResolver {
    /// New resolver.
    pub fn new(config: ResolverConfig) -> Self {
        let blocker = Blocker::new(config.blocking);
        IncrementalResolver {
            config,
            blocker,
            records: Vec::new(),
            handle_of: HashMap::new(),
            parent: Vec::new(),
            entity_of_root: HashMap::new(),
            idgen: IdGen::new(),
            aligners: HashMap::new(),
            alignments: HashMap::new(),
            identity_attrs: HashMap::new(),
            comparisons: 0,
            added: 0,
        }
    }

    /// Designate `attr` as the identity attribute of `source`: the
    /// attribute whose value names the record's real-world entity
    /// (Figure 2's `Drug Name` for DrugBank, `Gene` for CTD/Uniprot).
    /// When both records in a comparison carry designated identities,
    /// identity agreement dominates the similarity — the record-level
    /// analogue of a declared key, learnable or user-supplied.
    pub fn designate_identity(&mut self, source: SourceId, attr: Symbol) {
        self.identity_attrs.insert(source, attr);
    }

    /// Root of `h` with path compression (mutating fast path for `add`).
    fn find_compress(&mut self, mut h: u64) -> u64 {
        while self.parent[h as usize] != h {
            let gp = self.parent[self.parent[h as usize] as usize];
            self.parent[h as usize] = gp;
            h = gp;
        }
        h
    }

    /// Root of `h` without compression — keeps read-side lookups `&self`
    /// so concurrent readers never need exclusive access. Chains stay
    /// short because `add` compresses on every union.
    fn find(&self, mut h: u64) -> u64 {
        while self.parent[h as usize] != h {
            h = self.parent[h as usize];
        }
        h
    }

    fn alignment(&mut self, a: SourceId, b: SourceId, symbols: &SymbolTable) -> AlignmentMap {
        let key = if a <= b { (a, b) } else { (b, a) };
        let stale = match self.alignments.get(&key) {
            Some(c) => self.added - c.built_at >= self.config.realign_interval,
            None => true,
        };
        if stale {
            let map = match (self.aligners.get(&key.0), self.aligners.get(&key.1)) {
                (Some(pa), Some(pb)) => {
                    let raw = pa.align(pb, symbols, self.config.align_threshold);
                    // Scale each aligned pair by attribute distinctiveness
                    // so ubiquitous context values (shared genes, shared
                    // diseases) cannot fabricate co-reference.
                    let pairs = raw
                        .pairs()
                        .map(|(l, r, w)| {
                            let d = pa.distinctiveness(l) * pb.distinctiveness(r);
                            (l, r, w * d)
                        })
                        .collect();
                    AlignmentMap::from_pairs(pairs)
                }
                _ => AlignmentMap::empty(),
            };
            self.alignments.insert(
                key,
                CachedAlignment {
                    map,
                    built_at: self.added,
                },
            );
        }
        self.alignments[&key].map.clone()
    }

    fn similarity_between(&mut self, a_idx: u64, b_idx: u64, symbols: &SymbolTable) -> f64 {
        self.comparisons += 1;
        let (ida, ra) = &self.records[a_idx as usize];
        let (idb, rb) = &self.records[b_idx as usize];
        // Identity similarity, when both sides designate an identity
        // attribute and carry a value for it.
        let identity_sim = match (
            self.identity_attrs.get(&ida.source),
            self.identity_attrs.get(&idb.source),
        ) {
            (Some(aa), Some(ab)) => match (ra.get(*aa), rb.get(*ab)) {
                (Some(va), Some(vb)) if !va.is_null() && !vb.is_null() => {
                    Some(crate::similarity::value_similarity(va, vb))
                }
                _ => None,
            },
            _ => None,
        };
        let context_sim = if ida.source == idb.source {
            // Weight shared attributes by the source profile's
            // distinctiveness.
            match self.aligners.get(&ida.source) {
                Some(profile) => scdb_er_weighted(ra, rb, profile),
                None => record_similarity_same_schema(ra, rb),
            }
        } else {
            let (sa, sb) = (ida.source, idb.source);
            let (ra, rb) = (ra.clone(), rb.clone());
            let key_ordered = sa <= sb;
            let map = self.alignment(sa, sb, symbols);
            if key_ordered {
                record_similarity(&ra, &rb, &map)
            } else {
                // Map is oriented (min, max); swap operands to match.
                record_similarity(&rb, &ra, &map)
            }
        };
        match identity_sim {
            // Identity dominates; context corroborates. A perfect
            // identity match with weak context still clears a high
            // threshold; a weak identity cannot be rescued by context.
            Some(id_sim) => 0.8 * id_sim + 0.2 * context_sim.max(id_sim * id_sim),
            None => context_sim,
        }
    }

    /// Resolve one incoming record.
    pub fn add(&mut self, id: RecordId, record: Record, symbols: &SymbolTable) -> MergeEvent {
        self.added += 1;
        let comparisons_before = self.comparisons;
        self.aligners
            .entry(id.source)
            .or_insert_with(|| SchemaAligner::new(self.config.align_sample_cap))
            .observe(&record);

        let handle = self.records.len() as u64;
        self.records.push((id, record.clone()));
        self.parent.push(handle);
        self.handle_of.insert(id, handle);

        let mut candidates = self.blocker.insert(handle, &record);
        candidates.truncate(self.config.max_candidates);

        // Score against candidates; collect distinct matching cluster
        // roots.
        let mut best_sim = 0.0f64;
        let mut matched_roots: Vec<u64> = Vec::new();
        for c in candidates {
            let sim = self.similarity_between(handle, c, symbols);
            if sim >= self.config.match_threshold {
                let root = self.find_compress(c);
                if !matched_roots.contains(&root) {
                    matched_roots.push(root);
                }
                best_sim = best_sim.max(sim);
            }
        }

        let m = scdb_obs::metrics();
        m.add("er.comparisons", self.comparisons - comparisons_before);

        if matched_roots.is_empty() {
            let entity = self.idgen.next_entity();
            self.entity_of_root.insert(handle, entity);
            m.inc("er.fresh_entities");
            return MergeEvent {
                record: id,
                entity,
                absorbed: Vec::new(),
                similarity: 1.0,
                fresh: true,
            };
        }
        m.inc("er.matches");

        // Union all matched clusters plus the new record. Keep the entity
        // with the smallest id (the oldest) as the survivor.
        let mut entities: Vec<EntityId> = matched_roots
            .iter()
            .filter_map(|r| self.entity_of_root.get(r).copied())
            .collect();
        entities.sort();
        let survivor = entities[0];
        let absorbed: Vec<EntityId> = entities[1..].to_vec();

        let mut root = matched_roots[0];
        for &other in &matched_roots[1..] {
            let (ra, rb) = (self.find_compress(root), self.find_compress(other));
            if ra != rb {
                self.parent[rb as usize] = ra;
                self.entity_of_root.remove(&rb);
                root = ra;
            }
        }
        let final_root = self.find_compress(root);
        self.parent[handle as usize] = final_root;
        self.entity_of_root.insert(final_root, survivor);
        // Drop stale entries for non-root handles.
        self.entity_of_root
            .retain(|h, _| self.parent[*h as usize] == *h);

        m.add("er.entities_absorbed", absorbed.len() as u64);
        if !absorbed.is_empty() {
            // A record bridged previously-distinct entities — rare and
            // curation-critical, so it earns a flight-recorder event.
            scdb_obs::event(
                "er",
                "merge",
                &[
                    ("entity", scdb_obs::FieldValue::U64(survivor.0)),
                    ("absorbed", scdb_obs::FieldValue::U64(absorbed.len() as u64)),
                ],
            );
        }
        MergeEvent {
            record: id,
            entity: survivor,
            absorbed,
            similarity: best_sim,
            fresh: false,
        }
    }

    /// Install already-resolved records without scoring — the snapshot
    /// rehydration fast path. Each row carries the final entity decided
    /// by the original run; the resolver rebuilds its blocker, aligner
    /// profiles and union-find from them with **zero** similarity
    /// comparisons, so recovery from a checkpoint costs I/O, not ER.
    /// Rows must arrive in the original global ingest order (blocker and
    /// aligner state are order-sensitive for *future* ingests). Returns
    /// the number of rows adopted.
    pub fn adopt_batch<I>(&mut self, rows: I) -> usize
    where
        I: IntoIterator<Item = (RecordId, Record, EntityId)>,
    {
        let mut root_of_entity: HashMap<EntityId, u64> =
            self.entity_of_root.iter().map(|(h, e)| (*e, *h)).collect();
        let mut adopted = 0usize;
        for (id, record, entity) in rows {
            self.added += 1;
            adopted += 1;
            self.aligners
                .entry(id.source)
                .or_insert_with(|| SchemaAligner::new(self.config.align_sample_cap))
                .observe(&record);
            let handle = self.records.len() as u64;
            self.records.push((id, record.clone()));
            self.parent.push(handle);
            self.handle_of.insert(id, handle);
            // Register with the blocker so future live ingests still see
            // this record as a candidate; the returned candidates are
            // ignored — the assignment is already known.
            let _ = self.blocker.insert(handle, &record);
            match root_of_entity.get(&entity) {
                Some(&root) => {
                    self.parent[handle as usize] = root;
                }
                None => {
                    self.entity_of_root.insert(handle, entity);
                    root_of_entity.insert(entity, handle);
                }
            }
            self.idgen.advance_past(entity);
        }
        scdb_obs::metrics().add("er.adopted", adopted as u64);
        adopted
    }

    /// Every record added so far, in arrival order, with its id — the
    /// order-preserving feed checkpoint snapshots are built from.
    pub fn history(&self) -> impl Iterator<Item = &(RecordId, Record)> {
        self.records.iter()
    }

    /// The entity a record currently resolves to.
    pub fn entity_of(&self, id: RecordId) -> Option<EntityId> {
        let h = *self.handle_of.get(&id)?;
        let root = self.find(h);
        self.entity_of_root.get(&root).copied()
    }

    /// Current clustering: record → entity.
    pub fn assignments(&self) -> HashMap<RecordId, EntityId> {
        let mut out = HashMap::with_capacity(self.handle_of.len());
        for (id, h) in &self.handle_of {
            let root = self.find(*h);
            if let Some(e) = self.entity_of_root.get(&root) {
                out.insert(*id, *e);
            }
        }
        out
    }

    /// Total pairwise comparisons performed so far — the cost metric of
    /// E-T1-FS1.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Records resolved so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct entities currently.
    pub fn entity_count(&self) -> usize {
        let roots: std::collections::HashSet<u64> = (0..self.records.len() as u64)
            .map(|h| self.find(h))
            .collect();
        roots.len()
    }
}

/// The all-pairs-within-blocks batch baseline: resolves a full snapshot
/// from scratch (the "periodic re-resolution" regime the paper warns
/// about).
#[derive(Debug)]
pub struct BatchResolver {
    config: ResolverConfig,
}

impl BatchResolver {
    /// New batch resolver.
    pub fn new(config: ResolverConfig) -> Self {
        BatchResolver { config }
    }

    /// Resolve all `records` at once, returning (assignments, pairwise
    /// comparisons performed).
    pub fn resolve(
        &self,
        records: &[(RecordId, Record)],
        symbols: &SymbolTable,
    ) -> (HashMap<RecordId, EntityId>, u64) {
        // Feed everything through an incremental resolver with unbounded
        // candidates — within-block all-pairs, because every earlier block
        // member is a candidate for each record.
        let mut cfg = self.config.clone();
        cfg.max_candidates = usize::MAX;
        cfg.realign_interval = (records.len() as u64 / 4).max(1);
        let mut inner = IncrementalResolver::new(cfg);
        for (id, r) in records {
            inner.add(*id, r.clone(), symbols);
        }
        let comparisons = inner.comparisons();
        (inner.assignments(), comparisons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdb_types::Value;

    fn rec(syms: &mut SymbolTable, attr: &str, name: &str) -> Record {
        let a = syms.intern(attr);
        Record::from_pairs([(a, Value::str(name))])
    }

    fn rid(src: u32, off: u64) -> RecordId {
        RecordId::new(SourceId(src), off)
    }

    #[test]
    fn duplicates_within_source_merge() {
        let mut syms = SymbolTable::new();
        let mut r = IncrementalResolver::new(ResolverConfig::default());
        let e1 = r.add(rid(0, 0), rec(&mut syms, "name", "Methotrexate"), &syms);
        assert!(e1.fresh);
        let e2 = r.add(rid(0, 1), rec(&mut syms, "name", "methotrexate"), &syms);
        assert!(!e2.fresh);
        assert_eq!(e1.entity, e2.entity);
        let e3 = r.add(rid(0, 2), rec(&mut syms, "name", "Warfarin"), &syms);
        assert!(e3.fresh);
        assert_ne!(e3.entity, e1.entity);
        assert_eq!(r.entity_count(), 2);
    }

    #[test]
    fn cross_source_duplicates_merge_after_alignment_learns() {
        let mut syms = SymbolTable::new();
        let cfg = ResolverConfig {
            realign_interval: 1, // realign eagerly for the test
            ..Default::default()
        };
        let mut r = IncrementalResolver::new(cfg);
        // Warm both sources so the aligner has samples.
        let drugs = ["Warfarin", "Ibuprofen", "Methotrexate", "Acetaminophen"];
        for (i, d) in drugs.iter().enumerate() {
            r.add(rid(0, i as u64), rec(&mut syms, "Drug Name", d), &syms);
        }
        let mut merged = 0;
        for (i, d) in drugs.iter().enumerate() {
            let ev = r.add(rid(1, i as u64), rec(&mut syms, "drug", d), &syms);
            if !ev.fresh {
                merged += 1;
            }
        }
        assert!(merged >= 3, "cross-source merges: {merged}");
    }

    #[test]
    fn bridging_record_fuses_clusters() {
        let mut syms = SymbolTable::new();
        let cfg = ResolverConfig {
            match_threshold: 0.55,
            ..Default::default()
        };
        let mut r = IncrementalResolver::new(cfg);
        let a = r.add(rid(0, 0), rec(&mut syms, "name", "aspirin tablet"), &syms);
        let b = r.add(
            rid(0, 1),
            rec(&mut syms, "name", "aspirin coated pill"),
            &syms,
        );
        // a and b may or may not have merged; force distinct by checking.
        if a.entity != b.entity {
            let bridge = r.add(
                rid(0, 2),
                rec(&mut syms, "name", "aspirin tablet coated pill"),
                &syms,
            );
            assert!(!bridge.fresh);
            assert!(
                !bridge.absorbed.is_empty(),
                "bridge should absorb a cluster"
            );
            assert_eq!(r.entity_of(rid(0, 0)), r.entity_of(rid(0, 1)));
        }
    }

    #[test]
    fn assignments_cover_all_records() {
        let mut syms = SymbolTable::new();
        let mut r = IncrementalResolver::new(ResolverConfig::default());
        for i in 0..10 {
            r.add(
                rid(0, i),
                rec(&mut syms, "name", &format!("entity {i}")),
                &syms,
            );
        }
        let asg = r.assignments();
        assert_eq!(asg.len(), 10);
    }

    #[test]
    fn comparisons_bounded_by_candidates() {
        let mut syms = SymbolTable::new();
        let cfg = ResolverConfig {
            max_candidates: 2,
            blocking: BlockingStrategy::None,
            ..Default::default()
        };
        let mut r = IncrementalResolver::new(cfg);
        for i in 0..50 {
            r.add(rid(0, i), rec(&mut syms, "name", &format!("x{i}")), &syms);
        }
        assert!(r.comparisons() <= 50 * 2);
    }

    #[test]
    fn batch_resolver_agrees_on_easy_duplicates() {
        let mut syms = SymbolTable::new();
        let records: Vec<(RecordId, Record)> = vec![
            (rid(0, 0), rec(&mut syms, "name", "Warfarin")),
            (rid(0, 1), rec(&mut syms, "name", "warfarin")),
            (rid(0, 2), rec(&mut syms, "name", "Ibuprofen")),
        ];
        let batch = BatchResolver::new(ResolverConfig::default());
        let (asg, comparisons) = batch.resolve(&records, &syms);
        assert_eq!(asg[&rid(0, 0)], asg[&rid(0, 1)]);
        assert_ne!(asg[&rid(0, 0)], asg[&rid(0, 2)]);
        assert!(comparisons >= 1);
    }

    #[test]
    fn entity_of_unknown_record_is_none() {
        let r = IncrementalResolver::new(ResolverConfig::default());
        assert_eq!(r.entity_of(rid(5, 5)), None);
    }
}
