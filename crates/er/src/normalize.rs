//! Deterministic normalization shared by all similarity metrics.
//!
//! Heterogeneous sources spell the same entity differently ("Methotrexate"
//! vs "methotrexate (MTX)" vs "Methotrexate sodium"); normalization makes
//! the downstream metrics see through the cheap variation so they can
//! spend their tolerance budget on the real variation.

use scdb_storage::text::tokenize;

/// Normalize a raw string: lowercase, strip punctuation, collapse
/// whitespace, drop bracketed qualifiers.
pub fn normalize(s: &str) -> String {
    // Remove parenthesized/bracketed qualifiers first: "Advil (brand)" →
    // "Advil".
    let mut cleaned = String::with_capacity(s.len());
    let mut depth = 0i32;
    for ch in s.chars() {
        match ch {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = (depth - 1).max(0),
            _ if depth == 0 => cleaned.push(ch),
            _ => {}
        }
    }
    tokenize(&cleaned).join(" ")
}

/// Token list after normalization.
pub fn norm_tokens(s: &str) -> Vec<String> {
    tokenize(&normalize(s))
}

/// Sorted, deduplicated token set after normalization — the input for
/// Jaccard and blocking keys.
pub fn token_set(s: &str) -> Vec<String> {
    let mut t = norm_tokens(s);
    t.sort();
    t.dedup();
    t
}

/// Character q-grams of the normalized string (with boundary padding so
/// prefixes/suffixes weigh in).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let norm = normalize(s);
    if norm.is_empty() {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(norm.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("  Ibuprofen (Advil)  "), "ibuprofen");
        assert_eq!(normalize("Blood-Clot; Embolism!"), "blood clot embolism");
        assert_eq!(normalize("PTGS2 [Gene]"), "ptgs2");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn nested_and_unbalanced_brackets() {
        assert_eq!(normalize("a (b (c) d) e"), "a e");
        assert_eq!(normalize("a ) b"), "a b");
        assert_eq!(normalize("a ( b"), "a");
    }

    #[test]
    fn token_set_sorted_dedup() {
        assert_eq!(token_set("beta alpha beta"), vec!["alpha", "beta"]);
    }

    #[test]
    fn qgrams_padded() {
        let g = qgrams("ab", 2);
        assert_eq!(g, vec!["#a", "ab", "b#"]);
        assert!(qgrams("", 2).is_empty());
        let g3 = qgrams("abc", 3);
        assert_eq!(g3.first().unwrap(), "##a");
        assert_eq!(g3.last().unwrap(), "c##");
    }

    #[test]
    fn qgrams_q1_is_chars() {
        assert_eq!(qgrams("ab", 1), vec!["a", "b"]);
    }
}
