//! E-T1-FS11 — isolation under continuous non-deterministic enrichment.
//!
//! Concurrent reader transactions run against a store being enriched by a
//! curation thread. Snapshot isolation keeps reads repeatable but stale;
//! relaxed enrichment isolation is fresh but incurs non-deterministic
//! phantoms. The experiment quantifies the trade at several enrichment
//! rates, plus explicit-writer abort rates (first-committer-wins is
//! unaffected by the enrichment mode).

use scdb_bench::{banner, Table};
use scdb_txn::{EnrichedDb, IsolationMode};
use scdb_types::Value;

struct RunStats {
    phantom_rate: f64,
    stale_rate: f64,
    commits: u64,
    aborts: u64,
}

fn run(mode: IsolationMode, enrich_per_txn: usize) -> RunStats {
    let db = EnrichedDb::new(mode);
    for k in 0..100u64 {
        db.enrich(k, Value::Int(0));
    }
    let mut latest: Vec<i64> = vec![0; 100];
    let mut stale_reads = 0u64;
    let mut total_reads = 0u64;
    let mut version = 0i64;

    // Interleave: reader txn reads 20 keys twice; curation lands between
    // the two passes.
    for round in 0..200u64 {
        let mut txn = db.begin();
        let keys: Vec<u64> = (0..20).map(|i| (round * 7 + i) % 100).collect();
        for &k in &keys {
            let _ = db.read(&mut txn, k);
            total_reads += 1;
        }
        // Enrichment storm.
        for i in 0..enrich_per_txn {
            version += 1;
            let k = (round as usize * 3 + i) % 100;
            db.enrich(k as u64, Value::Int(version));
            latest[k] = version;
        }
        // Second pass: staleness = read ≠ latest committed enrichment.
        for &k in &keys {
            let v = db.read(&mut txn, k).and_then(|v| v.as_int());
            total_reads += 1;
            if v != Some(latest[k as usize]) {
                stale_reads += 1;
            }
        }
        // An explicit writer that conflicts half the time.
        let mut w1 = db.begin();
        let mut w2 = db.begin();
        w1.write(1000 + round % 5, Value::Int(round as i64))
            .unwrap();
        w2.write(1000 + round % 5, Value::Int(-(round as i64)))
            .unwrap();
        let _ = db.txn_manager().commit(&mut w1);
        let _ = db.txn_manager().commit(&mut w2);
    }
    let (commits, aborts) = db.txn_manager().stats();
    RunStats {
        phantom_rate: db.stats().phantom_rate(),
        stale_rate: stale_reads as f64 / total_reads as f64,
        commits,
        aborts,
    }
}

fn main() {
    banner(
        "E-T1-FS11",
        "Table 1 row FS.11 (concurrency control for non-deterministic enrichment)",
        "snapshot: repeatable but stale; relaxed: fresh but phantom-prone — a real dial",
    );
    let mut t = Table::new(&[
        "mode",
        "enrich/txn",
        "phantom_rate",
        "stale_rate",
        "commits",
        "aborts",
    ]);
    for &rate in &[1usize, 5, 20] {
        for mode in [IsolationMode::Snapshot, IsolationMode::RelaxedEnrichment] {
            let s = run(mode, rate);
            t.row(&[
                format!("{mode:?}"),
                rate.to_string(),
                format!("{:.3}", s.phantom_rate),
                format!("{:.3}", s.stale_rate),
                s.commits.to_string(),
                s.aborts.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("shape check: Snapshot has zero phantoms but staleness grows with enrichment rate;");
    println!("Relaxed trades phantoms for freshness; write-conflict aborts are mode-independent.");
}
