//! E-CRS — concurrent read scaling: N reader threads against a live
//! ingest stream.
//!
//! The shared `Db` handle's claim is architectural: readers take shard
//! read locks and never serialize behind each other or behind the
//! writer's ingest (which holds the instance+relation write locks only
//! for the duration of one record's pipeline). This experiment preloads
//! 10k rows, keeps a writer ingesting continuously, and measures query
//! throughput at 1/2/4/8 reader threads.
//!
//! Each configuration emits one machine-readable `BENCH JSON {...}` line
//! (experiment, readers, preloaded rows, wall ms, queries completed,
//! queries/s, speedup vs 1 reader) alongside the human table.
//!
//! Read the speedup column against the host: on a multi-core machine the
//! 4-reader row is expected at ≥ 2× the 1-reader row; on a single
//! hardware thread the readers time-slice one core and the honest
//! expectation is ≈ 1× (no scaling is physically available, but
//! throughput must not *collapse* either — that would indicate lock
//! serialization rather than CPU saturation).

use scdb_bench::{banner, Table};
use scdb_core::Db;
use scdb_types::{Record, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PRELOAD: usize = 10_000;
const MEASURE: Duration = Duration::from_millis(1200);

/// Names far apart in edit space so fuzzy identity matching never merges
/// distinct serials (ER stays cheap and deterministic at 10k rows).
fn row_name(i: usize) -> String {
    let tag = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
    format!("{tag:05x}-row-{i}")
}

fn record(name: scdb_types::Symbol, val: scdb_types::Symbol, i: usize) -> Record {
    Record::from_pairs([
        (name, Value::str(row_name(i))),
        (val, Value::Float((i % 1000) as f64)),
    ])
}

/// One configuration: preload, then measure N readers against a live
/// writer. Returns (wall ms, queries completed, rows ingested live).
fn run(readers: usize) -> (f64, u64, usize) {
    let db = Db::builder().scan_workers(4).build();
    db.register_source("stream", Some("name"));
    let name = db.intern("name");
    let val = db.intern("val");
    for i in 0..PRELOAD {
        db.ingest("stream", record(name, val, i), None)
            .expect("preload");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));

    // Live ingest stream for the whole measurement window.
    let writer = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = PRELOAD;
            while !stop.load(Ordering::Acquire) {
                db.ingest("stream", record(name, val, i), None)
                    .expect("ingest");
                i += 1;
            }
            i - PRELOAD
        })
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let out = db
                        .query("SELECT name FROM stream WHERE val >= 500.0 LIMIT 100")
                        .expect("query");
                    assert!(!out.rows.is_empty());
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    std::thread::sleep(MEASURE);
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("reader");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let ingested = writer.join().expect("writer");
    (wall_ms, queries.load(Ordering::Relaxed), ingested)
}

fn main() {
    banner(
        "E-CRS",
        "concurrent read scaling (shared handle, parallel scans)",
        "reader threads scale with available cores instead of serializing behind the writer",
    );
    println!(
        "host parallelism: {} hardware thread(s)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut table = Table::new(&[
        "readers",
        "wall_ms",
        "queries",
        "queries/s",
        "speedup vs 1",
        "rows ingested live",
    ]);
    let mut baseline_qps = 0.0f64;
    for readers in [1usize, 2, 4, 8] {
        let (wall_ms, queries, ingested) = run(readers);
        let qps = queries as f64 / (wall_ms / 1000.0);
        if readers == 1 {
            baseline_qps = qps;
        }
        let speedup = if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            0.0
        };
        table.row(&[
            readers.to_string(),
            format!("{wall_ms:.0}"),
            queries.to_string(),
            format!("{qps:.1}"),
            format!("{speedup:.2}x"),
            ingested.to_string(),
        ]);
        println!(
            "BENCH JSON {{\"experiment\":\"concurrent_read_scaling\",\"readers\":{readers},\
             \"preloaded_rows\":{PRELOAD},\"wall_ms\":{wall_ms:.0},\"queries\":{queries},\
             \"queries_per_s\":{qps:.1},\"speedup_vs_1\":{speedup:.3},\
             \"rows_ingested_live\":{ingested}}}"
        );
    }
    println!("\n{}", table.render());
    println!("shape check: queries/s grows with readers up to the core count (≥2x at 4 readers");
    println!("on a ≥4-core host); on fewer cores it plateaus near 1x without collapsing.");
}
