//! E-FAULTS — storage-fault resilience: degraded mode, fail-fast
//! writes, and probe-driven recovery (DESIGN.md §11 "Fault handling &
//! degraded operation").
//!
//! A self-curating database is meant to run unattended, so the
//! interesting question is not *whether* the disk fails but what the
//! node does while it is failing. This experiment arms a [`FaultPlan`]
//! with a persistent fsync failure against a live queued durable
//! [`Db`] and measures the degraded-mode contract end to end:
//!
//! 1. **trip** — the first write behind the fault trips the node into
//!    `DbMode::Degraded`;
//! 2. **degraded window** — every read keeps serving (failure count
//!    must be zero) while every write fails fast with
//!    `CoreError::Degraded` (p99 fail latency is reported: fail-fast,
//!    not fail-after-timeout, and no ticket ever hangs);
//! 3. **recover** — the fault clears and the background probe re-arms
//!    durability *without a reopen*; time back to `DbMode::Normal` is
//!    the recovery latency.
//!
//! A second arm panics the group-commit committer mid-batch and checks
//! the supervisor contract: every in-flight ticket resolves, the
//! thread restarts, and the next ingest commits.
//!
//! One machine-readable `BENCH JSON {...}` line reports reads/writes
//! during the window, fail-fast latency, recovery latency, injected
//! fault count, and the supervisor counters. `--smoke` *asserts* the
//! acceptance contract (zero failed reads, all writes Degraded, node
//! back to Normal, transitions in the flight recorder and health
//! report).

use std::time::{Duration, Instant};

use scdb_core::{CoreError, Db, DbMode, FaultPlan, FsyncPolicy};
use scdb_txn::FailpointLog;
use scdb_types::{Record, Value};

use scdb_bench::{banner, Table};

const SEED_ROWS: usize = 256;
const SMOKE_SEED_ROWS: usize = 64;
const DEGRADED_READS: usize = 400;
const DEGRADED_WRITES: usize = 200;
const SMOKE_DEGRADED_OPS: usize = 50;

fn record(db: &Db, i: usize) -> Record {
    Record::from_pairs([
        (db.intern("name"), Value::str(format!("drug-{}", i % 32))),
        (db.intern("dose"), Value::Float((i % 10) as f64 + 0.5)),
    ])
}

struct FaultRun {
    seed_rows: usize,
    trip_ms: f64,
    reads_ok: usize,
    reads_failed: usize,
    writes_degraded: usize,
    writes_other: usize,
    write_fail_p99_us: f64,
    recover_ms: f64,
    recovered_without_reopen: bool,
    post_recovery_commits: usize,
    injected: u64,
}

/// The persistent-fsync-failure scenario: seed → trip → degraded
/// window (reads green, writes fail fast) → clear → probe recovery.
fn run_fault_cycle(seed_rows: usize, degraded_ops: usize) -> FaultRun {
    let log = FailpointLog::new();
    let plan = FaultPlan::new();
    let handle = plan.handle();
    let db = Db::builder()
        .durability_store(Box::new(log.clone()), FsyncPolicy::Always)
        .ingest_queue(64)
        .fault_injection(plan.clone())
        .open()
        .expect("open durable db");
    db.register_source("bench", Some("name"));
    for chunk in (0..seed_rows).collect::<Vec<_>>().chunks(64) {
        let tickets: Vec<_> = chunk
            .iter()
            .map(|&i| {
                db.ingest_async("bench", record(&db, i), None)
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            t.wait().expect("seed commit");
        }
    }
    assert!(matches!(db.mode(), DbMode::Normal));

    // Trip: every fsync from here on fails until cleared.
    let _ = plan.clone().fail_fsyncs_from(1);
    let trip_started = Instant::now();
    let trip_err = db
        .ingest("bench", record(&db, seed_rows), None)
        .expect_err("the tripping write fails");
    let trip_ms = trip_started.elapsed().as_secs_f64() * 1e3;
    assert!(db.mode().is_degraded(), "node degraded after {trip_err}");

    // Degraded window: interleave reads and writes.
    let mut reads_ok = 0usize;
    let mut reads_failed = 0usize;
    let mut writes_degraded = 0usize;
    let mut writes_other = 0usize;
    let mut write_fail_us: Vec<f64> = Vec::with_capacity(degraded_ops);
    for i in 0..degraded_ops {
        match db.query("SELECT name, dose FROM bench WHERE dose >= 0.0") {
            Ok(out) if out.rows.len() == seed_rows => reads_ok += 1,
            _ => reads_failed += 1,
        }
        let w = Instant::now();
        let outcome = match db.ingest_async("bench", record(&db, seed_rows + i), None) {
            Ok(ticket) => ticket.wait().map(|_| ()),
            Err(e) => Err(e),
        };
        write_fail_us.push(w.elapsed().as_secs_f64() * 1e6);
        match outcome {
            Err(CoreError::Degraded(_)) => writes_degraded += 1,
            _ => writes_other += 1,
        }
    }
    write_fail_us.sort_by(|a, b| a.total_cmp(b));
    let write_fail_p99_us = write_fail_us
        .get((write_fail_us.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0.0);

    // Recover: clear the fault, wait for the probe (50 ms · 2ⁿ backoff)
    // to re-arm the node — no reopen.
    handle.clear();
    let recover_started = Instant::now();
    let mut recovered_without_reopen = false;
    while recover_started.elapsed() < Duration::from_secs(15) {
        if matches!(db.mode(), DbMode::Normal) {
            recovered_without_reopen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let recover_ms = recover_started.elapsed().as_secs_f64() * 1e3;
    let mut post_recovery_commits = 0usize;
    if recovered_without_reopen {
        for i in 0..8 {
            if db.ingest("bench", record(&db, 10_000 + i), None).is_ok() {
                post_recovery_commits += 1;
            }
        }
    }
    FaultRun {
        seed_rows,
        trip_ms,
        reads_ok,
        reads_failed,
        writes_degraded,
        writes_other,
        write_fail_p99_us,
        recover_ms,
        recovered_without_reopen,
        post_recovery_commits,
        injected: handle.injected(),
    }
}

struct SupervisorRun {
    tickets: usize,
    failed_tickets: usize,
    hung_tickets: usize,
    restarted: bool,
    post_restart_commit: bool,
}

/// The committer-panic scenario: a batch dies mid-append on the
/// committer thread; the supervisor must fail its tickets, restart the
/// thread, and the next ingest must commit.
fn run_supervisor_cycle() -> SupervisorRun {
    let restarts_before = scdb_obs::metrics().counter("core.thread.restarts").get();
    let log = FailpointLog::new();
    let plan = FaultPlan::new();
    let db = Db::builder()
        .durability_store(Box::new(log.clone()), FsyncPolicy::Always)
        .ingest_queue(64)
        .fault_injection(plan.clone())
        .open()
        .expect("open durable db");
    db.register_source("bench", Some("name"));
    db.ingest("bench", record(&db, 0), None).expect("seed");

    let _ = plan.clone().panic_on_nth_append(1);
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            db.ingest_async("bench", record(&db, i), None)
                .expect("submit")
        })
        .collect();
    let n = tickets.len();
    let mut failed = 0usize;
    for t in tickets {
        // `wait` returning at all is the no-hang assertion; the harness
        // would time out otherwise.
        if t.wait().is_err() {
            failed += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut restarted = false;
    while Instant::now() < deadline {
        if scdb_obs::metrics().counter("core.thread.restarts").get() > restarts_before {
            restarted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let post_restart_commit = db
        .ingest_async("bench", record(&db, 999), None)
        .and_then(|t| t.wait())
        .is_ok();
    SupervisorRun {
        tickets: n,
        failed_tickets: failed,
        hung_tickets: 0,
        restarted,
        post_restart_commit,
    }
}

fn emit(fault: &FaultRun, sup: &SupervisorRun) {
    let mut table = Table::new(&["phase", "metric", "value"]);
    table.row(&[
        "trip".into(),
        "first-write ms".into(),
        format!("{:.2}", fault.trip_ms),
    ]);
    table.row(&[
        "degraded".into(),
        "reads ok/failed".into(),
        format!("{}/{}", fault.reads_ok, fault.reads_failed),
    ]);
    table.row(&[
        "degraded".into(),
        "writes degraded/other".into(),
        format!("{}/{}", fault.writes_degraded, fault.writes_other),
    ]);
    table.row(&[
        "degraded".into(),
        "write fail p99 us".into(),
        format!("{:.1}", fault.write_fail_p99_us),
    ]);
    table.row(&[
        "recover".into(),
        "back-to-normal ms".into(),
        format!("{:.1}", fault.recover_ms),
    ]);
    table.row(&[
        "recover".into(),
        "without reopen".into(),
        fault.recovered_without_reopen.to_string(),
    ]);
    table.row(&[
        "supervisor".into(),
        "tickets failed/hung".into(),
        format!("{}/{}", sup.failed_tickets, sup.hung_tickets),
    ]);
    table.row(&[
        "supervisor".into(),
        "restarted + committed".into(),
        format!("{} + {}", sup.restarted, sup.post_restart_commit),
    ]);
    println!("\n{}", table.render());
    println!(
        "BENCH JSON {{\"experiment\":\"faults\",\"seed_rows\":{},\
         \"trip_ms\":{:.2},\"reads_ok\":{},\"reads_failed\":{},\
         \"writes_degraded\":{},\"writes_other\":{},\
         \"write_fail_p99_us\":{:.1},\"recover_ms\":{:.1},\
         \"recovered_without_reopen\":{},\"post_recovery_commits\":{},\
         \"faults_injected\":{},\"supervisor_tickets\":{},\
         \"supervisor_failed\":{},\"supervisor_restarted\":{},\
         \"post_restart_commit\":{}}}",
        fault.seed_rows,
        fault.trip_ms,
        fault.reads_ok,
        fault.reads_failed,
        fault.writes_degraded,
        fault.writes_other,
        fault.write_fail_p99_us,
        fault.recover_ms,
        fault.recovered_without_reopen,
        fault.post_recovery_commits,
        fault.injected,
        sup.tickets,
        sup.failed_tickets,
        sup.restarted,
        sup.post_restart_commit,
    );
}

fn check(fault: &FaultRun, sup: &SupervisorRun) -> i32 {
    let mut ok = true;
    let mut gate = |pass: bool, label: &str| {
        if pass {
            println!("smoke: {label} OK");
        } else {
            println!("SMOKE FAIL: {label}");
            ok = false;
        }
    };
    gate(
        fault.reads_failed == 0 && fault.reads_ok > 0,
        "zero failed reads while degraded",
    );
    gate(
        fault.writes_other == 0 && fault.writes_degraded > 0,
        "every degraded write failed fast with CoreError::Degraded",
    );
    gate(
        fault.recovered_without_reopen,
        "node returned to DbMode::Normal without reopening",
    );
    gate(
        fault.post_recovery_commits > 0,
        "writes commit again after recovery",
    );
    gate(fault.injected > 0, "the injector actually fired");
    gate(
        sup.failed_tickets > 0 && sup.hung_tickets == 0,
        "committer panic failed its batch without hanging a ticket",
    );
    gate(
        sup.restarted && sup.post_restart_commit,
        "supervisor restarted the committer and the next ingest committed",
    );
    let events = scdb_obs::events().snapshot();
    let has = |kind: &str| {
        events
            .iter()
            .any(|e| e.subsystem.as_str() == "core" && e.kind.as_str() == kind)
    };
    gate(
        has("mode.degrade") && has("mode.recover"),
        "mode transitions visible in the flight recorder",
    );
    gate(
        has("thread.panic") && has("thread.restart"),
        "supervisor events visible in the flight recorder",
    );
    if ok {
        0
    } else {
        1
    }
}

fn main() {
    banner(
        "E-FAULTS",
        "storage-fault resilience (DESIGN.md §11): degraded mode + supervised recovery",
        "a persistent fsync failure must trip the node into read-only degraded mode — \
         reads keep serving, writes fail fast, nothing hangs — and the recovery probe \
         must re-arm durability without a reopen once the fault clears; a committer \
         panic must fail its batch and restart under supervision",
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    scdb_obs::metrics().reset();
    let (seed, ops) = if smoke {
        (SMOKE_SEED_ROWS, SMOKE_DEGRADED_OPS)
    } else {
        (SEED_ROWS, DEGRADED_WRITES.max(DEGRADED_READS))
    };
    let fault = run_fault_cycle(seed, ops);
    let sup = run_supervisor_cycle();
    emit(&fault, &sup);

    // The health report carries the mode section (rendered once here so
    // the experiment output doubles as documentation of the shape).
    let probe = Db::builder().build();
    let report = probe.health_report();
    println!(
        "health report mode counters: tripped={} recoveries={} injected={} \
         thread_panics={} thread_restarts={}",
        report.mode.tripped,
        report.mode.recoveries,
        report.mode.faults_injected,
        report.mode.thread_panics,
        report.mode.thread_restarts
    );

    if smoke {
        std::process::exit(check(&fault, &sup));
    }
    println!("\nshape check: reads_failed must be 0 and writes split cleanly into Degraded;");
    println!("write-fail p99 sits in microseconds (fail-fast gate, no I/O attempted); the");
    println!("recovery latency tracks the probe's 50 ms · 2^n backoff schedule.");
}
