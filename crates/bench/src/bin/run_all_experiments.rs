//! Run every experiment binary in sequence, writing each report to
//! `target/experiments/<id>.txt` — the inputs EXPERIMENTS.md records.
//!
//! Usage: `cargo run --release -p scdb-bench --bin run_all_experiments`

use std::path::Path;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "e_f1_holistic",
    "e_f2_figure2",
    "e_fs1_er",
    "e_fs2_richness",
    "e_fs3_uncertainty",
    "e_fs5_unified_lang",
    "e_fs6_refine",
    "e_fs7_qbe",
    "e_fs8_crowd",
    "e_fs9_material",
    "e_fs10_warfarin",
    "e_fs11_isolation",
    "e_os1_cluster",
    "e_os2_traversal",
    "e_os3_semopt",
    "e_os4_placement",
    "e_s5_codd",
];

fn main() {
    let out_dir = Path::new("target/experiments");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        print!("running {exp:<22} … ");
        let output = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(exp),
        )
        .output();
        match output {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{exp}.txt"));
                std::fs::write(&path, &out.stdout).expect("write report");
                println!("ok → {}", path.display());
            }
            Ok(out) => {
                println!("FAILED (status {:?})", out.status.code());
                failures.push(*exp);
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
