//! Run every experiment binary in sequence, writing each report to
//! `target/experiments/<id>.txt` — the inputs EXPERIMENTS.md records.
//!
//! Usage:
//!   `cargo run --release -p scdb-bench --bin run_all_experiments`
//!   `cargo run --release -p scdb-bench --bin run_all_experiments -- --metrics-json out.json`
//!   `cargo run --release -p scdb-bench --bin run_all_experiments -- --events-jsonl out.jsonl`
//!
//! With `--metrics-json <path>` the binary instead drives an in-process
//! workload through every instrumented subsystem — ingest, entity
//! resolution, reasoning, query, transactions, storage clustering — and
//! writes the resulting [`scdb_obs`] metrics snapshot as JSON. (The
//! experiment binaries are child processes; their metric registries are
//! invisible here, so the observability sweep has to run in-process.)
//!
//! With `--events-jsonl <path>` it drives a durable ingest → query →
//! checkpoint → reopen cycle with the flight recorder enabled, prints
//! the resulting [`Db::health_report`](scdb_core::Db::health_report)
//! table, and dumps the event ring as JSON Lines (one event per line,
//! `seq` strictly increasing) — the input `scripts/check_events.sh`
//! validates in CI.

use std::path::Path;
use std::process::Command;

use scdb_bench::curated_db;
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::ScaledConfig;
use scdb_storage::cluster::{ClusterStrategy, ClusteredLayout, CoAccessTracker};
use scdb_storage::page::PageConfig;
use scdb_storage::RowStore;
use scdb_txn::{LogRecord, TxnManager, Wal};
use scdb_types::{Record, SourceId, Value};

const EXPERIMENTS: &[&str] = &[
    "e_f1_holistic",
    "e_f2_figure2",
    "e_fs1_er",
    "e_fs2_richness",
    "e_fs3_uncertainty",
    "e_fs5_unified_lang",
    "e_fs6_refine",
    "e_fs7_qbe",
    "e_fs8_crowd",
    "e_fs9_material",
    "e_fs10_warfarin",
    "e_fs11_isolation",
    "e_os1_cluster",
    "e_os2_traversal",
    "e_os3_semopt",
    "e_os4_placement",
    "e_s5_codd",
    "e_concurrent_read_scaling",
    "e_recovery",
    "e_ingest_throughput",
    "e_telemetry",
    "e_index",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--metrics-json") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--metrics-json requires a path argument");
            std::process::exit(2);
        };
        metrics_sweep(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--events-jsonl") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--events-jsonl requires a path argument");
            std::process::exit(2);
        };
        events_sweep(path);
        return;
    }

    let out_dir = Path::new("target/experiments");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        print!("running {exp:<22} … ");
        let output = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(exp),
        )
        .output();
        match output {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{exp}.txt"));
                std::fs::write(&path, &out.stdout).expect("write report");
                println!("ok → {}", path.display());
            }
            Ok(out) => {
                println!("FAILED (status {:?})", out.status.code());
                failures.push(*exp);
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}

/// Drive a durable ingest → query → checkpoint → reopen cycle with the
/// flight recorder on, then dump the event ring to `path` as JSON Lines
/// and print the health report. (Like the metrics sweep, this has to
/// run in-process: the event ring of a child experiment binary is
/// invisible here.)
fn events_sweep(path: &str) {
    use scdb_core::{Db, FsyncPolicy};

    scdb_obs::metrics().set_enabled(true);
    let events = scdb_obs::events();
    events.set_enabled(true);

    let dir = std::env::temp_dir().join(format!("scdb-events-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Db::builder()
            .durability(&dir, FsyncPolicy::EveryN(64))
            .slow_query_threshold(std::time::Duration::ZERO)
            .open()
            .expect("open durable db");
        db.register_source("sweep", Some("k"));
        let k = db.intern("k");
        let v = db.intern("v");
        for i in 0..2_000i64 {
            let r = Record::from_pairs([(k, Value::str(format!("key-{i}"))), (v, Value::Int(i))]);
            db.ingest("sweep", r, None).expect("ingest");
        }
        for _ in 0..5 {
            db.query("SELECT k FROM sweep WHERE v >= 1000 LIMIT 50")
                .expect("query");
        }
        // Index lifecycle so the dump carries the ("core", "index.*")
        // and ("query", "index.scan") events: an explicit create, an
        // indexed point query, the slow-ring advisor, and a drop.
        db.create_index("ix_k", "sweep", "k", scdb_core::IndexKind::Hash)
            .expect("create index");
        db.query("SELECT k FROM sweep WHERE k = 'key-42'")
            .expect("indexed query");
        db.advise_indexes(false).expect("advise");
        db.drop_index("ix_k").expect("drop index");
        db.checkpoint().expect("checkpoint");
        for i in 2_000..2_100i64 {
            let r = Record::from_pairs([(k, Value::str(format!("key-{i}"))), (v, Value::Int(i))]);
            db.ingest("sweep", r, None).expect("ingest tail");
        }
        // One group-committed batch so the dump carries a
        // ("txn", "group_commit.flush") event and the health report
        // shows the group-commit section.
        let batch: Vec<Record> = (2_100..2_164i64)
            .map(|i| Record::from_pairs([(k, Value::str(format!("key-{i}"))), (v, Value::Int(i))]))
            .collect();
        db.ingest_batch("sweep", batch).expect("group batch");
        db.sync_wal().expect("sync");
        println!("{}", db.health_report().render());
    }
    // Reopen so the dump also carries the recovery event sequence.
    let db = Db::open(&dir).expect("reopen");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    let jsonl = events.export_jsonl();
    if let Err(e) = std::fs::write(path, &jsonl) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {} events ({} recorded, {} dropped) → {path}",
        jsonl.lines().count(),
        events.recorded(),
        events.dropped(),
    );
}

/// Drive every instrumented subsystem once, then write the global
/// metrics snapshot to `path` as JSON.
fn metrics_sweep(path: &str) {
    scdb_obs::metrics().set_enabled(true);

    // Ingest + ER + link discovery + storage writes.
    let cfg = ScaledConfig {
        n_drugs: 120,
        n_genes: 40,
        n_diseases: 20,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::moderate(),
        seed: 0x0B5,
    };
    let (db, _sources) = curated_db(&cfg);

    // Semantics + queries (plan / optimize / execute + profile).
    db.register_source("trials", Some("drug"));
    let drug = db.intern("drug");
    let dose = db.intern("dose");
    for i in 0..200i64 {
        let name = ["Warfarin", "Ibuprofen", "Methotrexate"][(i % 3) as usize];
        let r = Record::from_pairs([
            (drug, Value::str(name)),
            (dose, Value::Float(2.0 + (i % 50) as f64 / 10.0)),
        ]);
        db.ingest("trials", r, None).expect("ingest trial");
    }
    db.with_ontology(|o| o.subclass("Anticoagulant", "Drug"));
    db.assert_entity_type("Warfarin", "Anticoagulant")
        .expect("typed");
    let profile = db
        .query("SELECT drug, dose FROM trials WHERE drug IS 'Drug' AND dose >= 4.0 LIMIT 5")
        .expect("semantic query")
        .profile;
    db.query("SELECT drug FROM trials WHERE dose >= 6.0")
        .expect("range query");

    // Secondary indexes: create → indexed point query (50 distinct
    // doses, selectivity 0.02, takes the index) → advisor → drop.
    db.create_index("ix_dose", "trials", "dose", scdb_core::IndexKind::Hash)
        .expect("create index");
    db.query("SELECT drug FROM trials WHERE dose = 4.5")
        .expect("indexed query");
    db.advise_indexes(false).expect("advise");
    db.drop_index("ix_dose").expect("drop index");

    // Transactions: MVCC begin/commit/abort + WAL append/encode.
    let mgr = TxnManager::new();
    let mut wal = Wal::new();
    for k in 0..16u64 {
        let mut txn = mgr.begin();
        txn.write(k, Value::Int(k as i64)).expect("write");
        wal.append(LogRecord::Write {
            txn: txn.id(),
            key: k,
            value: Some(Value::Int(k as i64)),
        });
        if k % 4 == 3 {
            mgr.abort(&mut txn);
            wal.append(LogRecord::Abort { txn: txn.id() });
        } else {
            let ts = mgr.commit(&mut txn).expect("commit");
            wal.append(LogRecord::Commit { txn: txn.id() });
            let _ = ts;
        }
    }
    let _encoded = wal.encode();

    // Storage: direct point reads + a clustering pass.
    let mut store = RowStore::new(SourceId(99));
    let attr = {
        let mut symbols = scdb_types::SymbolTable::new();
        symbols.intern("k")
    };
    let ids: Vec<_> = (0..64i64)
        .map(|i| store.append(Record::from_pairs([(attr, Value::Int(i))])))
        .collect();
    for id in &ids {
        store.get(*id).expect("stored");
    }
    let mut tracker = CoAccessTracker::new(1024);
    for g in 0..16u64 {
        tracker.observe(&[g, g + 16, g + 32]);
    }
    ClusteredLayout::build(
        &tracker,
        64,
        PageConfig::new(8),
        ClusterStrategy::CoAccessGreedy,
    );

    let snapshot = db.metrics_report();
    let json = serde_json::to_string_pretty(&snapshot.to_json()).expect("serializable");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }

    println!("{}", profile.render());
    println!("{}", snapshot.render());
    println!(
        "wrote {} metrics ({} counters, {} gauges, {} histograms) → {path}",
        snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len(),
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
    );
}
