//! E-REC — recovery time vs log size, with and without a checkpoint.
//!
//! A durable [`Db`] applies a seeded curation schedule of N ops (ingests
//! with duplicates and cross-references, kv transactions, enrichment
//! writes, link-discovery sweeps), then shuts down cleanly. The
//! experiment measures `Db::open` — snapshot install plus committed-log
//! replay — as the log grows, in two variants per size:
//!
//! * **raw replay** — no checkpoint: every committed record re-runs the
//!   full curation pipeline (ER comparisons included), so open time grows
//!   linearly with the log;
//! * **checkpointed** — one `Db::checkpoint()` before shutdown: recovery
//!   installs the materialized snapshot (rows adopt their final entity
//!   assignments wholesale — no similarity comparisons) and replays an
//!   empty suffix, so open time stays flat.
//!
//! Each (ops × checkpoint) configuration emits one machine-readable
//! `BENCH JSON {...}` line (ops, checkpoint flag, log bytes on disk,
//! open wall ms, records replayed, snapshot rows, txns discarded)
//! alongside the human table.

use scdb_bench::{apply_curation_op, banner, time_ms, Table};
use scdb_core::{Db, FsyncPolicy};
use scdb_datagen::crash::{crash_schedule, ScheduleConfig};

const SIZES: &[usize] = &[250, 500, 1000, 2000];

struct RunResult {
    log_bytes: u64,
    open_ms: f64,
    records_replayed: usize,
    snapshot_rows: usize,
    txns_discarded: usize,
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn run(ops: usize, checkpoint: bool) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "scdb-e-rec-{}-{ops}-{checkpoint}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let schedule = crash_schedule(
        &ScheduleConfig {
            ops,
            sources: 3,
            entity_pool: 64,
            link_rate: 0.3,
            kv_rate: 0.2,
            checkpoint_every: None,
            ..ScheduleConfig::default()
        },
        0xEEC,
    );
    {
        // EveryN batches fsyncs so building the log is not the bottleneck;
        // the clean Drop syncs the tail.
        let db = Db::builder()
            .durability(&dir, FsyncPolicy::EveryN(32))
            .open()
            .expect("open fresh log");
        for op in &schedule {
            apply_curation_op(&db, op).expect("apply op");
        }
        if checkpoint {
            db.checkpoint().expect("checkpoint");
        }
    }
    let log_bytes = dir_bytes(&dir);
    let (db, open_ms) = time_ms(|| Db::open(&dir).expect("recover"));
    let report = db.recovery_report().expect("durable open has a report");
    let result = RunResult {
        log_bytes,
        open_ms,
        records_replayed: report.records_replayed,
        snapshot_rows: report.snapshot_rows,
        txns_discarded: report.txns_discarded,
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn main() {
    banner(
        "E-REC",
        "durability & recovery (DESIGN.md §9): open time vs log size",
        "raw replay re-curates every committed record (linear); a checkpoint \
         snapshot makes recovery flat regardless of history length",
    );
    let mut table = Table::new(&[
        "ops",
        "checkpoint",
        "log_bytes",
        "open_ms",
        "replayed",
        "snapshot_rows",
        "discarded",
    ]);
    for &ops in SIZES {
        for checkpoint in [false, true] {
            let r = run(ops, checkpoint);
            table.row(&[
                ops.to_string(),
                checkpoint.to_string(),
                r.log_bytes.to_string(),
                format!("{:.1}", r.open_ms),
                r.records_replayed.to_string(),
                r.snapshot_rows.to_string(),
                r.txns_discarded.to_string(),
            ]);
            println!(
                "BENCH JSON {{\"experiment\":\"recovery\",\"ops\":{ops},\
                 \"checkpoint\":{checkpoint},\"log_bytes\":{},\"open_ms\":{:.2},\
                 \"records_replayed\":{},\"snapshot_rows\":{},\"txns_discarded\":{}}}",
                r.log_bytes, r.open_ms, r.records_replayed, r.snapshot_rows, r.txns_discarded
            );
        }
    }
    println!("\n{}", table.render());
    println!("shape check: without a checkpoint, open_ms grows with ops (records_replayed ≈ log");
    println!("records); with one, records_replayed is ~0 and open_ms stays flat as the history");
    println!("doubles — the snapshot adopts final entity assignments instead of re-resolving.");
}
