//! E-F1 — Figure 1: the holistic data model's three layers.
//!
//! Builds the layered model over the scaled life-science corpus at
//! increasing scale — drug sources plus a gene source and a disease
//! taxonomy — and reports per-layer cardinalities and expansion factors:
//! raw data (instance) → interconnected information (relation) →
//! knowledge (semantic), the data→information→knowledge arrow of the
//! figure.

use scdb_bench::{banner, curated_db, time_ms, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::ScaledConfig;
use scdb_types::{Record, Value};

fn main() {
    banner(
        "E-F1",
        "Figure 1 (holistic data model)",
        "each layer expands the one below: instances → instance-level links → inferred facts",
    );
    let mut table = Table::new(&[
        "scale", "records", "entities", "links", "axioms", "inferred", "build_ms", "richness",
    ]);
    for scale in [1usize, 2, 4, 8] {
        let cfg = ScaledConfig {
            n_drugs: 50 * scale,
            n_genes: 15 * scale,
            n_diseases: 10 * scale,
            n_sources: 3,
            duplicate_rate: 0.5,
            corruption: CorruptionConfig::moderate(),
            seed: 0xF1,
        };
        let (db, ms) = {
            let ((db, _), load_ms) = time_ms(|| curated_db(&cfg));
            // Instance layer, continued: a gene source whose identities
            // the drug records reference — link discovery knits them.
            let (_, extra_ms) = time_ms(|| {
                db.register_source("genes", Some("gene"));
                let gene = db.intern("gene");
                let func = db.intern("function");
                for i in 0..cfg.n_genes {
                    let r = Record::from_pairs([
                        (gene, Value::str(format!("GEN{i:03}"))),
                        (
                            func,
                            Value::str(if i % 2 == 0 { "enzyme" } else { "receptor" }),
                        ),
                    ]);
                    db.ingest("genes", r, None).expect("ingest");
                }
                db.discover_links().expect("links");
                // Semantic layer: role + taxonomy + existential axiom, and
                // typing of the gene entities.
                db.with_ontology(|o| {
                    o.subclass("ApprovedDrug", "Drug");
                    o.subclass_exists("Drug", "has_target", "Gene");
                    let role = o.role("gene");
                    let drug_c = o.concept("Drug");
                    let gene_c = o.concept("Gene");
                    o.add_axiom(scdb_semantic::Axiom::Domain(role, drug_c));
                    o.add_axiom(scdb_semantic::Axiom::Range(role, gene_c));
                });
                for i in 0..cfg.n_genes {
                    let _ = db.assert_entity_type(&format!("GEN{i:03}"), "Gene");
                }
                db.reason().expect("saturation");
            });
            (db, load_ms + extra_ms)
        };
        let stats = db.stats().clone();
        let richness = db.richness();
        table.row(&[
            format!("{scale}x"),
            stats.records.to_string(),
            db.entity_count().to_string(),
            stats.links.to_string(),
            db.ontology().axioms().len().to_string(),
            stats.inferred_facts.to_string(),
            format!("{ms:.0}"),
            format!("{:.3}", richness.richness),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: records grow linearly; entities < records (ER fuses duplicates);");
    println!("links > 0 (horizontal expansion); inferred facts grow with the ABox under a");
    println!("constant TBox (vertical expansion).");
}
