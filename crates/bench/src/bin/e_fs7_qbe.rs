//! E-T1-FS7 — query-by-example completion: fill rate vs missingness and
//! iterations.
//!
//! Examples are corpus rows with cells knocked out at a configurable
//! rate; the incremental QBE loop fills them back. Reported: fill rate
//! and correctness of fills at each missingness level, and the gain from
//! iterating (the "partial answer becomes an example" loop).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scdb_bench::{banner, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::{scaled, ScaledConfig};
use scdb_query::qbe::{complete, fill_rate, QbeConfig};
use scdb_types::{Record, SymbolTable, Value};

fn main() {
    banner(
        "E-T1-FS7",
        "Table 1 row FS.7 (query refinement via query-by-example)",
        "incremental QBE fills most knocked-out cells correctly; iteration helps",
    );
    let cfg = ScaledConfig {
        n_drugs: 150,
        n_sources: 1,
        duplicate_rate: 0.0,
        corruption: CorruptionConfig::CLEAN,
        seed: 0xF57,
        ..Default::default()
    };
    let mut symbols = SymbolTable::new();
    let sources = scaled(&cfg, &mut symbols);
    let corpus: Vec<Record> = sources[0]
        .records
        .iter()
        .map(|r| r.record.clone())
        .collect();

    let mut table = Table::new(&[
        "missing%",
        "examples",
        "fill_rate",
        "fill_correct",
        "iterations",
    ]);
    for missing_pct in [10u32, 25, 50] {
        let mut rng = StdRng::seed_from_u64(u64::from(missing_pct));
        // Knock out cells (keep at least one per record).
        let originals: Vec<Record> = corpus.iter().take(60).cloned().collect();
        let examples: Vec<Record> = originals
            .iter()
            .map(|r| {
                let mut out = Record::new();
                let attrs: Vec<_> = r.iter().collect();
                let keep_idx = rng.gen_range(0..attrs.len());
                for (i, (a, v)) in attrs.iter().enumerate() {
                    if i == keep_idx || !rng.gen_bool(f64::from(missing_pct) / 100.0) {
                        out.set(*a, (*v).clone());
                    } else {
                        out.set(*a, Value::Null);
                    }
                }
                out
            })
            .collect();
        let result = complete(&examples, &corpus, &QbeConfig::default());
        // Correctness: filled value equals the knocked-out original.
        let mut correct = 0usize;
        for fill in &result.fills {
            let filled = result.completed[fill.example].get(fill.attr);
            let original = originals[fill.example].get(fill.attr);
            if filled == original {
                correct += 1;
            }
        }
        let rate = fill_rate(&examples, &result, &corpus);
        table.row(&[
            format!("{missing_pct}%"),
            examples.len().to_string(),
            format!("{rate:.3}"),
            format!(
                "{:.3}",
                if result.fills.is_empty() {
                    1.0
                } else {
                    correct as f64 / result.fills.len() as f64
                }
            ),
            result.iterations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: fill rate stays high as missingness grows; fills are mostly correct");
    println!("(the identity attribute anchors the match; context cells are recovered).");
}
