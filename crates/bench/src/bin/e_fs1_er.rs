//! E-T1-FS1 — incremental entity resolution vs periodic re-resolution.
//!
//! Streams the scaled corpus record by record. The incremental resolver
//! does bounded work per record; the baseline re-runs batch resolution
//! from scratch at checkpoints (the "all-to-all" regime §3.2 warns
//! about). Reported: cumulative comparisons (cost) and pairwise F1
//! (quality) — plus the blocking ablation.

use std::collections::HashMap;

use scdb_bench::{banner, time_ms, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::{scaled, ScaledConfig};
use scdb_er::blocking::BlockingStrategy;
use scdb_er::eval::score_pairs;
use scdb_er::incremental::{BatchResolver, IncrementalResolver, ResolverConfig};
use scdb_types::{Record, RecordId, SymbolTable};

fn corpus(
    n_drugs: usize,
) -> (
    SymbolTable,
    Vec<(RecordId, Record)>,
    HashMap<RecordId, String>,
) {
    let cfg = ScaledConfig {
        n_drugs,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::moderate(),
        seed: 0xF51,
        ..Default::default()
    };
    let mut symbols = SymbolTable::new();
    let sources = scaled(&cfg, &mut symbols);
    let mut records = Vec::new();
    let mut truth = HashMap::new();
    for src in &sources {
        for (off, rec) in src.records.iter().enumerate() {
            let rid = RecordId::new(src.id, off as u64);
            records.push((rid, rec.record.clone()));
            truth.insert(rid, rec.truth.clone().expect("labelled"));
        }
    }
    (symbols, records, truth)
}

fn main() {
    banner(
        "E-T1-FS1",
        "Table 1 row FS.1 (continuous incremental entity resolution)",
        "incremental ER matches batch quality at a fraction of the comparisons",
    );

    // Part 1: incremental vs periodic batch, growing corpus.
    let mut table = Table::new(&[
        "records",
        "inc_F1",
        "inc_cmps",
        "inc_ms",
        "batch_F1",
        "batch_cmps",
        "batch_ms",
    ]);
    for n_drugs in [100usize, 200, 400] {
        let (symbols, records, truth) = corpus(n_drugs);
        let cfg = ResolverConfig {
            realign_interval: 64,
            ..Default::default()
        };

        let ((inc_f1, inc_cmps), inc_ms) = time_ms(|| {
            let mut r = IncrementalResolver::new(cfg.clone());
            for (rid, rec) in &records {
                r.add(*rid, rec.clone(), &symbols);
            }
            (score_pairs(&r.assignments(), &truth).f1(), r.comparisons())
        });

        // Periodic re-resolution: batch from scratch at 4 checkpoints.
        let ((batch_f1, batch_cmps), batch_ms) = time_ms(|| {
            let mut total_cmps = 0u64;
            let mut last_f1 = 0.0;
            let batch = BatchResolver::new(cfg.clone());
            for checkpoint in 1..=4usize {
                let upto = records.len() * checkpoint / 4;
                let (assignments, cmps) = batch.resolve(&records[..upto], &symbols);
                total_cmps += cmps;
                if checkpoint == 4 {
                    last_f1 = score_pairs(&assignments, &truth).f1();
                }
            }
            (last_f1, total_cmps)
        });

        table.row(&[
            records.len().to_string(),
            format!("{inc_f1:.3}"),
            inc_cmps.to_string(),
            format!("{inc_ms:.0}"),
            format!("{batch_f1:.3}"),
            batch_cmps.to_string(),
            format!("{batch_ms:.0}"),
        ]);
    }
    println!("{}", table.render());

    // Part 2: blocking ablation at fixed size.
    println!("blocking ablation (200 drugs, moderate corruption):");
    let mut ab = Table::new(&["blocking", "F1", "comparisons"]);
    let (symbols, records, truth) = corpus(200);
    for (name, strategy) in [
        ("none (all-pairs)", BlockingStrategy::None),
        (
            "standard prefix-4",
            BlockingStrategy::StandardKeys { prefix_len: 4 },
        ),
        (
            "minhash-lsh 8x2",
            BlockingStrategy::MinHashLsh { bands: 8, rows: 2 },
        ),
    ] {
        let mut cfg = ResolverConfig {
            realign_interval: 64,
            blocking: strategy,
            ..Default::default()
        };
        if matches!(strategy, BlockingStrategy::None) {
            cfg.max_candidates = usize::MAX;
        }
        let mut r = IncrementalResolver::new(cfg);
        for (rid, rec) in &records {
            r.add(*rid, rec.clone(), &symbols);
        }
        ab.row(&[
            name.to_string(),
            format!("{:.3}", score_pairs(&r.assignments(), &truth).f1()),
            r.comparisons().to_string(),
        ]);
    }
    println!("{}", ab.render());
    println!("shape check: incremental F1 matches or exceeds periodic batch (bounded ranked");
    println!("candidates regularize against chained false merges) at far fewer comparisons;");
    println!("blocking preserves F1 at a fraction of all-pairs comparisons.");
}
