//! E-S5 — the §5 revisited-Codd-rules compliance report over a live
//! curated instance.

use scdb_bench::{banner, curated_db, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::{figure2_ontology, ScaledConfig};

fn main() {
    banner(
        "E-S5",
        "§5 (revisiting database principles)",
        "each deviation/extension from Codd's rules is exhibited by the running system",
    );
    let cfg = ScaledConfig {
        n_drugs: 100,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::moderate(),
        seed: 0x055,
        ..Default::default()
    };
    let (db, _) = curated_db(&cfg);
    db.set_ontology(figure2_ontology());
    // A gene source: the drug records' gene values now reference real
    // entities, producing the relation-layer links of the information
    // rule.
    db.register_source("genes", Some("gene"));
    let gene = db.intern("gene");
    let function = db.intern("function");
    for i in 0..15 {
        db.ingest(
            "genes",
            scdb_types::Record::from_pairs([
                (gene, scdb_types::Value::str(format!("GEN{i:03}"))),
                (function, scdb_types::Value::str("regulatory")),
            ]),
            None,
        )
        .expect("ingest");
    }
    db.discover_links().expect("links");
    db.reason().expect("saturation");
    // An unstructured + heterogeneous + nullable source: the foundation
    // and null-treatment evidence.
    db.register_source("notes", None);
    let title = db.intern("title");
    let severity = db.intern("severity");
    for (i, text) in [
        "free-text clinical observation about warfarin response",
        "nurse note: dosage adjusted after INR reading",
    ]
    .iter()
    .enumerate()
    {
        let sev = match i {
            0 => scdb_types::Value::Int(3),          // numeric severity…
            _ => scdb_types::Value::str("moderate"), // …or textual: heterogeneous column
        };
        let mut r = scdb_types::Record::from_pairs([
            (title, scdb_types::Value::str(format!("clinical note {i}"))),
            (severity, sev),
        ]);
        if i == 0 {
            r.set(db.intern("followup"), scdb_types::Value::Null);
        }
        db.ingest("notes", r, Some(text)).expect("ingest");
    }

    let mut t = Table::new(&["status", "rule", "evidence"]);
    for item in db.codd_report() {
        t.row(&[
            format!("{:?}", item.status),
            item.rule.to_string(),
            item.evidence,
        ]);
    }
    println!("{}", t.render());
    println!("shape check: all six §5 items report Exhibited on a curated instance.");
}
