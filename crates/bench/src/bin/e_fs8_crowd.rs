//! E-T1-FS8 — crowd escalation under qualitative vs quantitative cost
//! functions: the accuracy/cost frontier.

use scdb_bench::{banner, Table};
use scdb_query::crowd::{resolve, CostFunction, Worker};

fn main() {
    banner(
        "E-T1-FS8",
        "Table 1 row FS.8 (incompleteness resolution through the crowd)",
        "qualitative targets buy accuracy with cost; quantitative budgets cap cost and coverage",
    );
    let questions: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
    let pool: Vec<Worker> = (0..20)
        .map(|i| Worker {
            accuracy: 0.65 + 0.02 * f64::from(i % 10),
            cost: 1.0,
        })
        .collect();

    println!("qualitative cost function (confidence targets):");
    let mut t = Table::new(&["target", "accuracy", "asks", "cost", "answered"]);
    for target in [0.75, 0.9, 0.97, 0.995] {
        let o = resolve(
            &questions,
            &pool,
            CostFunction::Qualitative {
                target,
                max_asks: 25,
            },
            0xF58,
        );
        let answered = o.answers.iter().filter(|a| a.is_some()).count();
        t.row(&[
            format!("{target}"),
            format!("{:.3}", o.accuracy),
            o.asks.to_string(),
            format!("{:.0}", o.total_cost),
            answered.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("quantitative cost function (budgets):");
    let mut t = Table::new(&["budget", "accuracy", "asks", "answered"]);
    for budget in [50.0, 200.0, 600.0, 2000.0] {
        let o = resolve(
            &questions,
            &pool,
            CostFunction::Quantitative { budget },
            0xF58,
        );
        let answered = o.answers.iter().filter(|a| a.is_some()).count();
        t.row(&[
            format!("{budget}"),
            format!("{:.3}", o.accuracy),
            o.asks.to_string(),
            answered.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: accuracy rises monotonically with target/budget; qualitative spends");
    println!("per-question until confident, quantitative trades coverage for hard cost caps.");
}
