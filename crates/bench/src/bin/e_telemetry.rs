//! E-TEL — telemetry pipeline: sampler overhead and the commit-latency
//! decomposition (DESIGN.md §7 "Telemetry pipeline").
//!
//! Observability is only free-ish if it stays off the contended paths:
//! the sampler reads the lock-free metrics registry, so a ticking
//! telemetry pipeline should cost ingest+query throughput almost
//! nothing. This experiment drives the same 10k-row ingest+query loop
//! twice — telemetry off, then telemetry on with a sample tick every
//! 100 rows plus watch evaluation and a live time-series ring — and
//! compares wall time. It also surfaces the tentpole payload: every
//! acked ingest decomposed into queue-wait → batch-build → WAL-append
//! → fsync → apply stage histograms.
//!
//! One machine-readable `BENCH JSON {...}` line reports both loop
//! times, the overhead ratio, sample/watch counts, and the p50/p99 of
//! all five `core.ingest.stage.*` histograms. The Prometheus text
//! exposition of the final registry is written to
//! `target/experiments/telemetry.prom` for the CI format lint.
//! `--smoke` runs paired rounds and *asserts* the enabled loop stays
//! within 5% (plus fixed slack for 1-core CI jitter) of the disabled
//! loop, and that all five stages were observed.

use std::time::Duration;

use scdb_core::{Db, FsyncPolicy, TelemetryConfig, WatchOp, WatchRule, WatchSignal};
use scdb_types::{Record, Value};

use scdb_bench::{banner, time_ms, Table};

const FULL_ROWS: usize = 10_000;
const SMOKE_ROWS: usize = 2_000;
const TICK_EVERY: usize = 100;
const STAGES: &[&str] = &["queue_wait", "batch_build", "wal_append", "fsync", "apply"];

/// Deterministic row `i`: a pool name (drives merges), a float, and a
/// cross-reference (drives link discovery).
fn record(db: &Db, i: usize) -> Record {
    let name = db.intern("name");
    let dose = db.intern("dose");
    let target = db.intern("ref");
    Record::from_pairs([
        (name, Value::str(format!("drug-{}", i % 64))),
        (dose, Value::Float((i % 10) as f64 + 0.5)),
        (target, Value::str(format!("drug-{}", (i * 7 + 1) % 64))),
    ])
}

struct LoopResult {
    ms: f64,
    samples: usize,
    watch_fires: u64,
}

/// The ingest+query loop: queued group-commit ingest in chunks of 64,
/// one query every [`TICK_EVERY`] rows — and, with telemetry enabled,
/// one explicit sampler tick at the same cadence (manual ticks instead
/// of a timer thread keep the workload deterministic; the tick is the
/// identical code path).
fn run_loop(rows: usize, telemetry: bool, tag: &str) -> LoopResult {
    let dir = std::env::temp_dir().join(format!("scdb-e-tel-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut builder = Db::builder()
        .durability(&dir, FsyncPolicy::EveryN(64))
        .ingest_queue(64);
    if telemetry {
        builder = builder.telemetry(
            TelemetryConfig::default()
                .interval(Duration::ZERO)
                .retention(256)
                // A rule that actually fires under load, so the watch
                // engine is exercised, not just configured: any apply
                // work in a window breaches immediately.
                .watch(
                    WatchRule::new(
                        "ingest-active",
                        WatchSignal::HistogramP99("core.ingest.stage.apply_ns".to_string()),
                        WatchOp::Above,
                        0.0,
                    )
                    .sustain(1),
                ),
        );
    }
    let db = builder.open().expect("open fresh log");
    db.register_source("bench", Some("name"));
    let records: Vec<Record> = (0..rows).map(|i| record(&db, i)).collect();
    let ((), ms) = time_ms(|| {
        let mut it = records.into_iter();
        let mut done = 0usize;
        let mut next_tick = TICK_EVERY;
        loop {
            let chunk: Vec<Record> = it.by_ref().take(64).collect();
            if chunk.is_empty() {
                break;
            }
            let tickets: Vec<_> = chunk
                .into_iter()
                .map(|r| db.ingest_async("bench", r, None).expect("submit"))
                .collect();
            done += tickets.len();
            for t in tickets {
                t.wait().expect("group commit");
            }
            if done >= next_tick {
                next_tick += TICK_EVERY;
                if telemetry {
                    db.sample_now();
                }
                let out = db
                    .query("SELECT name FROM bench WHERE dose >= 5.0")
                    .expect("query");
                assert!(!out.rows.is_empty(), "query sees ingested rows");
            }
        }
    });
    let samples = db.telemetry_samples().len();
    let watch_fires = db.watch_statuses().iter().map(|w| w.fired).sum();
    assert_eq!(db.stats().records, rows as u64, "every row curated");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    LoopResult {
        ms,
        samples,
        watch_fires,
    }
}

/// Write the Prometheus exposition of the current registry for the CI
/// format lint (`scripts/ci.sh`).
fn write_exposition() -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("experiments");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("telemetry.prom");
    let text = scdb_core::prometheus_text(&scdb_obs::metrics().snapshot());
    std::fs::write(&path, text).expect("write telemetry.prom");
    path
}

fn stage_json() -> String {
    let mut parts = Vec::new();
    for stage in STAGES {
        let h = scdb_obs::metrics()
            .histogram(&format!("core.ingest.stage.{stage}_ns"))
            .snapshot();
        parts.push(format!(
            "\"{stage}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            h.count, h.p50, h.p99, h.max
        ));
    }
    format!("{{{}}}", parts.join(","))
}

fn emit(rows: usize, off: &LoopResult, on: &LoopResult) {
    let overhead = if off.ms <= 0.0 { 0.0 } else { on.ms / off.ms };
    let mut table = Table::new(&["telemetry", "rows", "ms", "samples", "watch_fires"]);
    table.row(&[
        "off".to_string(),
        rows.to_string(),
        format!("{:.1}", off.ms),
        off.samples.to_string(),
        off.watch_fires.to_string(),
    ]);
    table.row(&[
        "on".to_string(),
        rows.to_string(),
        format!("{:.1}", on.ms),
        on.samples.to_string(),
        on.watch_fires.to_string(),
    ]);
    println!("\n{}", table.render());
    println!(
        "BENCH JSON {{\"experiment\":\"telemetry\",\"rows\":{rows},\
         \"off_ms\":{:.2},\"on_ms\":{:.2},\"overhead\":{:.4},\
         \"samples\":{},\"watch_fires\":{},\"stages\":{}}}",
        off.ms,
        on.ms,
        overhead,
        on.samples,
        on.watch_fires,
        stage_json()
    );
}

fn smoke() -> i32 {
    // Paired rounds, best round wins: a 1-core CI box can stall either
    // arm for reasons that have nothing to do with the sampler, so the
    // gate is "some round showed the overhead bound", matching the
    // observability test-suite convention.
    const ROUNDS: usize = 3;
    let mut ok_overhead = false;
    let mut last: Option<(LoopResult, LoopResult)> = None;
    for round in 0..ROUNDS {
        scdb_obs::metrics().reset();
        let off = run_loop(SMOKE_ROWS, false, &format!("off-{round}"));
        scdb_obs::metrics().reset();
        let on = run_loop(SMOKE_ROWS, true, &format!("on-{round}"));
        let bound = off.ms * 1.05 + 10.0;
        println!(
            "round {round}: off={:.1} ms on={:.1} ms bound={bound:.1} ms",
            off.ms, on.ms
        );
        if on.ms <= bound {
            ok_overhead = true;
            last = Some((off, on));
            break;
        }
        last = Some((off, on));
    }
    let (off, on) = last.expect("at least one round ran");
    emit(SMOKE_ROWS, &off, &on);
    let prom = write_exposition();
    println!("prometheus exposition: {}", prom.display());
    let mut ok = true;
    if !ok_overhead {
        println!("SMOKE FAIL: enabled-sampler overhead exceeded 5% in every round");
        ok = false;
    } else {
        println!("smoke: enabled-sampler overhead within 5% (+10 ms slack) OK");
    }
    if on.samples == 0 {
        println!("SMOKE FAIL: no telemetry samples were recorded");
        ok = false;
    } else {
        println!("smoke: {} telemetry samples recorded OK", on.samples);
    }
    if on.watch_fires == 0 {
        println!("SMOKE FAIL: the ingest-active watch never fired");
        ok = false;
    } else {
        println!("smoke: watch fired {} time(s) OK", on.watch_fires);
    }
    for stage in STAGES {
        let h = scdb_obs::metrics()
            .histogram(&format!("core.ingest.stage.{stage}_ns"))
            .snapshot();
        if h.count == 0 {
            println!("SMOKE FAIL: stage histogram core.ingest.stage.{stage}_ns is empty");
            ok = false;
        }
    }
    if ok {
        println!("smoke: all five commit stages observed OK");
        0
    } else {
        1
    }
}

fn main() {
    banner(
        "E-TEL",
        "telemetry pipeline (DESIGN.md §7): sampler overhead + commit-stage split",
        "the sampler only reads the lock-free registry, so a ticking pipeline should \
         cost the ingest+query loop < 5%; the stage histograms decompose every acked \
         ingest into queue-wait / batch-build / WAL-append / fsync / apply",
    );
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    scdb_obs::metrics().reset();
    let off = run_loop(FULL_ROWS, false, "off");
    scdb_obs::metrics().reset();
    let on = run_loop(FULL_ROWS, true, "on");
    emit(FULL_ROWS, &off, &on);
    let prom = write_exposition();
    println!("prometheus exposition: {}", prom.display());
    println!("\nshape check: overhead should sit near 1.0 (the sampler reads, never locks the");
    println!("shards); queue_wait dominates the stage split under a saturated queue, fsync");
    println!("stays near zero under EveryN(64), and apply carries the curation pipeline cost.");
}
