//! E-T1-FS6 — discovery as a random walk: recall vs steps, seeded vs
//! uniform.
//!
//! Ground truth: the relevant set for a query about one drug is its 2-hop
//! neighborhood in the curated graph. The context-seeded walk must reach
//! higher recall at every step budget than the context-free uniform walk.

use scdb_bench::{banner, curated_db, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::ScaledConfig;
use scdb_graph::traverse::khop_graph;
use scdb_query::refine::{discover, discover_uniform, RefineConfig};

fn main() {
    banner(
        "E-T1-FS6",
        "Table 1 row FS.6 (context-aware query refinement as a random walk)",
        "query-predicate seeding reaches relevant entities far faster than uniform walking",
    );
    let cfg = ScaledConfig {
        n_drugs: 300,
        n_genes: 80,
        n_diseases: 50,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::CLEAN,
        seed: 0xF56,
    };
    let (db, _) = curated_db(&cfg);
    // A gene source so the relation layer has drug→gene links to walk.
    db.register_source("genes", Some("gene"));
    let gene_attr = db.intern("gene");
    let func = db.intern("function");
    for i in 0..cfg.n_genes {
        let r = scdb_types::Record::from_pairs([
            (gene_attr, scdb_types::Value::str(format!("GEN{i:03}"))),
            (func, scdb_types::Value::str("enzyme")),
        ]);
        db.ingest("genes", r, None).expect("ingest");
    }
    db.discover_links().expect("links");

    // Seed: the gene entity with the most incoming drug links — its
    // 2-hop undirected neighborhood (the drugs targeting it and their
    // other targets) is the relevant set.
    let seed = db
        .graph()
        .node_ids()
        .max_by_key(|e| (db.graph().incoming(*e).len(), std::cmp::Reverse(e.0)))
        .expect("non-empty graph");
    // Undirected 2-hop ground truth.
    let relevant: std::collections::HashSet<_> = {
        let g = db.graph();
        let undirected = |v| {
            g.edges(v)
                .iter()
                .map(|e| e.to)
                .chain(g.incoming(v).iter().map(|(f, _)| *f))
                .collect::<Vec<_>>()
        };
        let mut set = std::collections::HashSet::new();
        for n in undirected(seed) {
            set.insert(n);
            for m in undirected(n) {
                if m != seed {
                    set.insert(m);
                }
            }
        }
        set
    };
    let _ = khop_graph; // directed k-hop is exercised by the OS.2 suite
    println!(
        "seed {seed:?}: |2-hop relevant set| = {} of {} entities\n",
        relevant.len(),
        db.entity_count()
    );

    let mut table = Table::new(&["steps", "seeded recall", "uniform recall"]);
    for steps in [200usize, 500, 1000, 2000, 5000, 10000] {
        let wcfg = RefineConfig {
            steps,
            restart: 0.2,
            top_k: relevant.len().max(10),
            seed: 0xF56,
        };
        let recall = |found: &[scdb_query::refine::Discovery]| {
            if relevant.is_empty() {
                return 1.0;
            }
            found
                .iter()
                .filter(|d| relevant.contains(&d.entity))
                .count() as f64
                / relevant.len() as f64
        };
        let seeded = discover(&db.graph(), &[seed], &wcfg);
        let uniform = discover_uniform(&db.graph(), &wcfg);
        table.row(&[
            steps.to_string(),
            format!("{:.3}", recall(&seeded)),
            format!("{:.3}", recall(&uniform)),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: seeded recall dominates uniform at every budget and grows with steps.");
}
