//! E-T1-FS9 — context-aware materialization of discovered facts.
//!
//! A repeated contextual-exploration workload: Zipf-skewed queries over a
//! working set of drug contexts. With the materialization cache, repeat
//! contexts skip random-walk discovery entirely. Reported: end-to-end
//! time and hit rate with the cache on vs off, plus the richness-based
//! conflict resolution behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scdb_bench::{banner, curated_db, time_ms, Table};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::ScaledConfig;
use scdb_query::materialize::{DiscoveredFact, MaterializationCache};
use scdb_query::refine::{discover, RefineConfig};
use scdb_types::EntityId;

fn main() {
    banner(
        "E-T1-FS9",
        "Table 1 row FS.9 (context-aware materialization of discovered data)",
        "materializing per-context discoveries turns repeat explorations into cache hits",
    );
    let cfg = ScaledConfig {
        n_drugs: 150,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::CLEAN,
        seed: 0xF59,
        ..Default::default()
    };
    let (db, sources) = curated_db(&cfg);
    // Working set: drug names from source 0.
    let sym = db.symbols_ref().get("Drug Name").expect("attr");
    let drugs: Vec<String> = sources[0]
        .records
        .iter()
        .filter_map(|r| r.record.get(sym).map(|v| v.render().into_owned()))
        .take(30)
        .collect();
    let mut rng = StdRng::seed_from_u64(0xF59);
    let contexts: Vec<String> = (0..150)
        .map(|_| {
            let idx = (rng.gen_range(0.0f64..1.0).powi(3) * drugs.len() as f64) as usize;
            drugs[idx.min(drugs.len() - 1)].clone()
        })
        .collect();

    let walk = RefineConfig {
        steps: 3000,
        ..Default::default()
    };
    let run = |use_cache: bool| {
        let mut cache = MaterializationCache::new(64);
        let (discoveries_run, ms) = time_ms(|| {
            let mut walks = 0usize;
            for ctx in &contexts {
                let key = format!("explore|{ctx}");
                if use_cache && cache.lookup(&key).is_some() {
                    continue;
                }
                let Some(seed) = db.entity_named(ctx) else {
                    continue;
                };
                walks += 1;
                let found = discover(&db.graph(), &[seed], &walk);
                if use_cache {
                    let facts: Vec<DiscoveredFact> = found
                        .iter()
                        .map(|d| DiscoveredFact {
                            subject: seed,
                            role: "discovered".into(),
                            object: d.entity,
                            richness: 0.5,
                        })
                        .collect();
                    // Materialize even empty discovery sets so the context
                    // is remembered.
                    cache.materialize(&key, facts);
                }
            }
            walks
        });
        (ms, discoveries_run, cache.stats(), cache.hit_rate())
    };

    let (cold_ms, cold_walks, _, _) = run(false);
    let (warm_ms, warm_walks, (hits, misses), hit_rate) = run(true);

    let mut t = Table::new(&[
        "mode",
        "explorations",
        "walks run",
        "time_ms",
        "hits",
        "misses",
        "hit_rate",
    ]);
    t.row(&[
        "no materialization".into(),
        contexts.len().to_string(),
        cold_walks.to_string(),
        format!("{cold_ms:.0}"),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "with materialization".into(),
        contexts.len().to_string(),
        warm_walks.to_string(),
        format!("{warm_ms:.0}"),
        hits.to_string(),
        misses.to_string(),
        format!("{hit_rate:.3}"),
    ]);
    println!("{}", t.render());

    // Conflict resolution by richness (FS.2 feeding FS.9).
    let mut cache = MaterializationCache::new(8);
    let fact = |object: u64, richness: f64| DiscoveredFact {
        subject: EntityId(1),
        role: "treats".into(),
        object: EntityId(object),
        richness,
    };
    cache.materialize("ctx", vec![fact(2, 0.3)]);
    let rejected_poorer = cache.materialize("ctx", vec![fact(3, 0.1)]);
    cache.materialize("ctx", vec![fact(4, 0.9)]);
    let winner = cache.lookup("ctx").expect("cached")[0].object;
    println!(
        "conflict resolution: poorer source rejected ({rejected_poorer}), richer source's fact won → object {winner:?}"
    );
    println!("\nshape check: materialized run re-walks only distinct contexts; hit rate matches");
    println!("the Zipf skew; conflicting discoveries resolve toward the richer source.");
}
