//! E-ING — ingest throughput: single-record vs batched vs queued group
//! commit (DESIGN.md §9 "Group commit").
//!
//! The paper's continuous-curation model (FS.1) makes ingest the
//! throughput-critical path, and under `FsyncPolicy::Always` the
//! per-record pipeline pays one fsync per row. Group commit amortizes:
//! `Db::ingest_batch` (and the `DbBuilder::ingest_queue` committer)
//! seals many rows plus one commit record in a single WAL append — one
//! fsync per *batch*.
//!
//! Three modes per fsync policy, at batch sizes {1, 8, 64, 256}:
//!
//! * **single** — `Db::ingest` per record (a group commit of one);
//! * **batch** — explicit `Db::ingest_batch` chunks;
//! * **queued** — `ingest_queue(batch)` + `ingest_async`, submitting a
//!   chunk of tickets and then awaiting them, so the committer sees
//!   full batches.
//!
//! Each configuration emits one machine-readable `BENCH JSON {...}`
//! line (mode, policy, batch, rows, wall ms, rows/sec, fsyncs, fsyncs
//! per row from the `txn.wal.fsyncs` counter delta). `--smoke` runs a
//! small deterministic subset and *asserts* the fsync amortization
//! (≥ 8× fewer fsyncs per row at batch 64 under `Always`) — a count
//! check, not a wall-clock check, so it is stable on a 1-core CI box.
//!
//! Qualitative shape to expect: under `Always` group commit wins big
//! (fsyncs dominate; fsyncs/row drops as 1/batch); under `EveryN(64)`
//! the gap narrows because the policy already amortizes; under
//! `OnCheckpoint` nobody fsyncs, so all modes converge to pipeline
//! cost and the remaining batch win is one lock acquisition + one WAL
//! append per batch instead of per row.

use scdb_core::{Db, FsyncPolicy};
use scdb_types::{Record, Value};

use scdb_bench::{banner, time_ms, Table};

const BATCHES: &[usize] = &[1, 8, 64, 256];
const FULL_ROWS: usize = 512;
const SMOKE_ROWS: usize = 128;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Single,
    Batch,
    Queued,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Single => "single",
            Mode::Batch => "batch",
            Mode::Queued => "queued",
        }
    }
}

fn policy_name(policy: FsyncPolicy) -> &'static str {
    match policy {
        FsyncPolicy::Always => "always",
        FsyncPolicy::EveryN(_) => "every64",
        FsyncPolicy::OnCheckpoint => "on_checkpoint",
    }
}

struct RunResult {
    rows: usize,
    ms: f64,
    fsyncs: u64,
}

impl RunResult {
    fn rows_per_sec(&self) -> f64 {
        if self.ms <= 0.0 {
            0.0
        } else {
            self.rows as f64 / (self.ms / 1000.0)
        }
    }

    fn fsyncs_per_row(&self) -> f64 {
        self.fsyncs as f64 / self.rows.max(1) as f64
    }
}

/// Deterministic row `i`: a pool name (drives merges), a float, and a
/// cross-reference (drives link discovery) — the same record shape the
/// crash schedules use.
fn record(db: &Db, i: usize) -> Record {
    let name = db.intern("name");
    let dose = db.intern("dose");
    let target = db.intern("ref");
    Record::from_pairs([
        (name, Value::str(format!("drug-{}", i % 64))),
        (dose, Value::Float((i % 10) as f64 + 0.5)),
        (target, Value::str(format!("drug-{}", (i * 7 + 1) % 64))),
    ])
}

fn run(mode: Mode, policy: FsyncPolicy, batch: usize, rows: usize) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "scdb-e-ing-{}-{}-{}-{batch}",
        std::process::id(),
        mode.name(),
        policy_name(policy)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut builder = Db::builder().durability(&dir, policy);
    if mode == Mode::Queued {
        builder = builder.ingest_queue(batch.max(1));
    }
    let db = builder.open().expect("open fresh log");
    db.register_source("bench", Some("name"));
    let records: Vec<Record> = (0..rows).map(|i| record(&db, i)).collect();
    let fsyncs_before = scdb_obs::metrics().counter("txn.wal.fsyncs").get();
    let ((), ms) = time_ms(|| match mode {
        Mode::Single => {
            for r in records {
                db.ingest("bench", r, None).expect("ingest");
            }
        }
        Mode::Batch => {
            let mut it = records.into_iter();
            loop {
                let chunk: Vec<Record> = it.by_ref().take(batch.max(1)).collect();
                if chunk.is_empty() {
                    break;
                }
                db.ingest_batch("bench", chunk).expect("ingest_batch");
            }
        }
        Mode::Queued => {
            let mut it = records.into_iter();
            loop {
                let chunk: Vec<Record> = it.by_ref().take(batch.max(1)).collect();
                if chunk.is_empty() {
                    break;
                }
                let tickets: Vec<_> = chunk
                    .into_iter()
                    .map(|r| db.ingest_async("bench", r, None).expect("submit"))
                    .collect();
                for t in tickets {
                    t.wait().expect("group commit");
                }
            }
        }
    });
    let fsyncs = scdb_obs::metrics().counter("txn.wal.fsyncs").get() - fsyncs_before;
    assert_eq!(db.stats().records, rows as u64, "every row curated");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    RunResult { rows, ms, fsyncs }
}

fn emit(table: &mut Table, mode: Mode, policy: FsyncPolicy, batch: usize, r: &RunResult) {
    table.row(&[
        mode.name().to_string(),
        policy_name(policy).to_string(),
        batch.to_string(),
        r.rows.to_string(),
        format!("{:.1}", r.ms),
        format!("{:.0}", r.rows_per_sec()),
        r.fsyncs.to_string(),
        format!("{:.4}", r.fsyncs_per_row()),
    ]);
    println!(
        "BENCH JSON {{\"experiment\":\"ingest_throughput\",\"mode\":\"{}\",\
         \"policy\":\"{}\",\"batch\":{batch},\"rows\":{},\"ms\":{:.2},\
         \"rows_per_sec\":{:.1},\"fsyncs\":{},\"fsyncs_per_row\":{:.5}}}",
        mode.name(),
        policy_name(policy),
        r.rows,
        r.ms,
        r.rows_per_sec(),
        r.fsyncs,
        r.fsyncs_per_row()
    );
}

fn smoke() -> i32 {
    let policy = FsyncPolicy::Always;
    let mut table = new_table();
    let single = run(Mode::Single, policy, 1, SMOKE_ROWS);
    emit(&mut table, Mode::Single, policy, 1, &single);
    let batch64 = run(Mode::Batch, policy, 64, SMOKE_ROWS);
    emit(&mut table, Mode::Batch, policy, 64, &batch64);
    let queued64 = run(Mode::Queued, policy, 64, SMOKE_ROWS);
    emit(&mut table, Mode::Queued, policy, 64, &queued64);
    println!("\n{}", table.render());
    // Fsync *counts* are deterministic for single and batch modes;
    // queued batch shape depends on committer scheduling, so its gate
    // is looser. No wall-clock assertions (1-core CI box).
    let mut ok = true;
    let reduction = single.fsyncs_per_row() / batch64.fsyncs_per_row().max(f64::EPSILON);
    if reduction < 8.0 {
        println!(
            "SMOKE FAIL: ingest_batch@64 reduced fsyncs/row only {reduction:.1}x \
             (need >= 8x): single={} batch64={}",
            single.fsyncs, batch64.fsyncs
        );
        ok = false;
    } else {
        println!("smoke: ingest_batch@64 fsync reduction {reduction:.1}x (>= 8x) OK");
    }
    if queued64.fsyncs > single.fsyncs {
        println!(
            "SMOKE FAIL: queued@64 issued more fsyncs than single-record ingest \
             ({} > {})",
            queued64.fsyncs, single.fsyncs
        );
        ok = false;
    } else {
        println!(
            "smoke: queued@64 fsyncs {} <= single {} OK",
            queued64.fsyncs, single.fsyncs
        );
    }
    if ok {
        0
    } else {
        1
    }
}

fn new_table() -> Table {
    Table::new(&[
        "mode",
        "policy",
        "batch",
        "rows",
        "ms",
        "rows/sec",
        "fsyncs",
        "fsyncs/row",
    ])
}

fn main() {
    banner(
        "E-ING",
        "group-commit ingest (DESIGN.md §9): fsync amortization vs batch size",
        "one WAL append seals a whole batch, so fsyncs/row falls as 1/batch under \
         FsyncPolicy::Always; EveryN narrows the gap, OnCheckpoint leaves only the \
         per-batch lock + append savings",
    );
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let mut table = new_table();
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(64),
        FsyncPolicy::OnCheckpoint,
    ] {
        let single = run(Mode::Single, policy, 1, FULL_ROWS);
        emit(&mut table, Mode::Single, policy, 1, &single);
        for &batch in BATCHES {
            let r = run(Mode::Batch, policy, batch, FULL_ROWS);
            emit(&mut table, Mode::Batch, policy, batch, &r);
            let r = run(Mode::Queued, policy, batch, FULL_ROWS);
            emit(&mut table, Mode::Queued, policy, batch, &r);
        }
    }
    println!("\n{}", table.render());
    println!("shape check: under always, batch/queued fsyncs/row ≈ 1/batch while single stays");
    println!("at 1.0; under every64 the policy already amortizes so the curves meet near batch");
    println!("64; under on_checkpoint fsyncs are 0 everywhere and the residual win is one lock");
    println!("acquisition and one WAL append per batch instead of per row.");
}
