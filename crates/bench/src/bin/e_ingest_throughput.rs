//! E-ING — ingest throughput: single-record vs batched vs queued group
//! commit (DESIGN.md §9 "Group commit").
//!
//! The paper's continuous-curation model (FS.1) makes ingest the
//! throughput-critical path, and under `FsyncPolicy::Always` the
//! per-record pipeline pays one fsync per row. Group commit amortizes:
//! `Db::ingest_batch` (and the `DbBuilder::ingest_queue` committer)
//! seals many rows plus one commit record in a single WAL append — one
//! fsync per *batch*.
//!
//! Three modes per fsync policy, at batch sizes {1, 8, 64, 256}:
//!
//! * **single** — `Db::ingest` per record (a group commit of one);
//! * **batch** — explicit `Db::ingest_batch` chunks;
//! * **queued** — `ingest_queue(batch)` + `ingest_async`, submitting a
//!   chunk of tickets and then awaiting them, so the committer sees
//!   full batches.
//!
//! Each configuration emits one machine-readable `BENCH JSON {...}`
//! line (mode, policy, batch, rows, wall ms, rows/sec, fsyncs, fsyncs
//! per row from the `txn.wal.fsyncs` counter delta). `--smoke` runs a
//! small deterministic subset and *asserts* the fsync amortization
//! (≥ 8× fewer fsyncs per row at batch 64 under `Always`) — a count
//! check, not a wall-clock check, so it is stable on a 1-core CI box.
//!
//! A fourth axis measures the range-sharded write path (DESIGN.md §14):
//! `--shards 1,2,4` runs four concurrent writers against that many
//! write shards, each writer keeping affinity to one shard so a
//! multi-shard run commits with no cross-writer lock conflicts while
//! the single-shard run serializes every commit (and its fsync) on one
//! instance write lock. The headline number is the instance-lock wait
//! p99 from the `core.lock.instance*.wait_ns` histograms — telemetry,
//! not wall clock — which `--smoke` gates on: 4 shards must beat 1
//! shard, and the 1-shard baseline must actually have contended.
//!
//! Qualitative shape to expect: under `Always` group commit wins big
//! (fsyncs dominate; fsyncs/row drops as 1/batch); under `EveryN(64)`
//! the gap narrows because the policy already amortizes; under
//! `OnCheckpoint` nobody fsyncs, so all modes converge to pipeline
//! cost and the remaining batch win is one lock acquisition + one WAL
//! append per batch instead of per row.

use scdb_core::{Db, FsyncPolicy};
use scdb_er::normalize::normalize;
use scdb_placement::{PlacementPolicy, ShardMap};
use scdb_types::{Record, Value};

use scdb_bench::{banner, time_ms, Table};

const BATCHES: &[usize] = &[1, 8, 64, 256];
const FULL_ROWS: usize = 512;
const SMOKE_ROWS: usize = 128;
const SHARD_AXIS: &[u32] = &[1, 2, 4];
const SHARD_WRITERS: usize = 4;
const SHARD_ROWS_PER_WRITER: usize = 64;
const SHARD_SMOKE_ROWS_PER_WRITER: usize = 24;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Single,
    Batch,
    Queued,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Single => "single",
            Mode::Batch => "batch",
            Mode::Queued => "queued",
        }
    }
}

fn policy_name(policy: FsyncPolicy) -> &'static str {
    match policy {
        FsyncPolicy::Always => "always",
        FsyncPolicy::EveryN(_) => "every64",
        FsyncPolicy::OnCheckpoint => "on_checkpoint",
    }
}

struct RunResult {
    rows: usize,
    ms: f64,
    fsyncs: u64,
}

impl RunResult {
    fn rows_per_sec(&self) -> f64 {
        if self.ms <= 0.0 {
            0.0
        } else {
            self.rows as f64 / (self.ms / 1000.0)
        }
    }

    fn fsyncs_per_row(&self) -> f64 {
        self.fsyncs as f64 / self.rows.max(1) as f64
    }
}

/// Deterministic row `i`: a pool name (drives merges), a float, and a
/// cross-reference (drives link discovery) — the same record shape the
/// crash schedules use.
fn record(db: &Db, i: usize) -> Record {
    let name = db.intern("name");
    let dose = db.intern("dose");
    let target = db.intern("ref");
    Record::from_pairs([
        (name, Value::str(format!("drug-{}", i % 64))),
        (dose, Value::Float((i % 10) as f64 + 0.5)),
        (target, Value::str(format!("drug-{}", (i * 7 + 1) % 64))),
    ])
}

fn run(mode: Mode, policy: FsyncPolicy, batch: usize, rows: usize) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "scdb-e-ing-{}-{}-{}-{batch}",
        std::process::id(),
        mode.name(),
        policy_name(policy)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut builder = Db::builder().durability(&dir, policy);
    if mode == Mode::Queued {
        builder = builder.ingest_queue(batch.max(1));
    }
    let db = builder.open().expect("open fresh log");
    db.register_source("bench", Some("name"));
    let records: Vec<Record> = (0..rows).map(|i| record(&db, i)).collect();
    let fsyncs_before = scdb_obs::metrics().counter("txn.wal.fsyncs").get();
    let ((), ms) = time_ms(|| match mode {
        Mode::Single => {
            for r in records {
                db.ingest("bench", r, None).expect("ingest");
            }
        }
        Mode::Batch => {
            let mut it = records.into_iter();
            loop {
                let chunk: Vec<Record> = it.by_ref().take(batch.max(1)).collect();
                if chunk.is_empty() {
                    break;
                }
                db.ingest_batch("bench", chunk).expect("ingest_batch");
            }
        }
        Mode::Queued => {
            let mut it = records.into_iter();
            loop {
                let chunk: Vec<Record> = it.by_ref().take(batch.max(1)).collect();
                if chunk.is_empty() {
                    break;
                }
                let tickets: Vec<_> = chunk
                    .into_iter()
                    .map(|r| db.ingest_async("bench", r, None).expect("submit"))
                    .collect();
                for t in tickets {
                    t.wait().expect("group commit");
                }
            }
        }
    });
    let fsyncs = scdb_obs::metrics().counter("txn.wal.fsyncs").get() - fsyncs_before;
    assert_eq!(db.stats().records, rows as u64, "every row curated");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    RunResult { rows, ms, fsyncs }
}

struct ShardedResult {
    rows: usize,
    ms: f64,
    fsyncs: u64,
    lock_wait_p99_ns: u64,
    lock_waits: u64,
}

impl ShardedResult {
    fn rows_per_sec(&self) -> f64 {
        if self.ms <= 0.0 {
            0.0
        } else {
            self.rows as f64 / (self.ms / 1000.0)
        }
    }
}

/// `n` distinct identity keys that the default range map for `shards`
/// places on writer `w`'s home shard (`w % shards`) — the same routing
/// the `Db` applies, probed up front so the timed region measures
/// commits, not placement.
fn shard_keys(shards: u32, writer: usize, n: usize) -> Vec<String> {
    let map = ShardMap::build(PlacementPolicy::Range, shards, &[]);
    let target = writer as u32 % shards;
    let keys: Vec<String> = (0..200_000)
        .map(|i| format!("w{writer} entity {i}"))
        .filter(|k| map.shard_of_key(&normalize(k)) == target)
        .take(n)
        .collect();
    assert_eq!(keys.len(), n, "probe keys for shard {target}");
    keys
}

/// Concurrent-writer ingest against `shards` write shards under
/// `FsyncPolicy::Always`. Each writer runs unqueued `Db::ingest` (the
/// writer thread itself takes its shard's locks — a committer queue
/// would hide the contention this axis exists to measure) over keys
/// that all route to its home shard. With one shard every commit
/// serializes on one instance write lock held across the fsync; with
/// `shards >= writers` the writers never collide.
fn run_sharded(shards: u32, writers: usize, rows_per_writer: usize) -> ShardedResult {
    let dir = std::env::temp_dir().join(format!(
        "scdb-e-ing-sharded-{}-{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut builder = Db::builder().durability(&dir, FsyncPolicy::Always);
    if shards > 1 {
        builder = builder.write_shards(shards);
    }
    let db = builder.open().expect("open fresh sharded log");
    db.register_source("bench", Some("name"));
    let name = db.intern("name");
    let dose = db.intern("dose");
    let batches: Vec<Vec<Record>> = (0..writers)
        .map(|w| {
            shard_keys(shards, w, rows_per_writer)
                .into_iter()
                .enumerate()
                .map(|(i, key)| {
                    Record::from_pairs([(name, Value::str(key)), (dose, Value::Int(i as i64))])
                })
                .collect()
        })
        .collect();
    let rows = writers * rows_per_writer;
    // Fresh metric state so the lock-wait histograms describe only this
    // configuration (they accumulate per process otherwise).
    scdb_obs::metrics().reset();
    let fsyncs_before = scdb_obs::metrics().counter("txn.wal.fsyncs").get();
    let ((), ms) = time_ms(|| {
        std::thread::scope(|scope| {
            let db = &db;
            for batch in batches {
                scope.spawn(move || {
                    for r in batch {
                        db.ingest("bench", r, None).expect("ingest");
                    }
                });
            }
        });
    });
    let fsyncs = scdb_obs::metrics().counter("txn.wal.fsyncs").get() - fsyncs_before;
    assert_eq!(db.stats().records, rows as u64, "every row curated");
    let snap = scdb_obs::metrics().snapshot();
    let mut lock_wait_p99_ns = 0u64;
    let mut lock_waits = 0u64;
    for (name, h) in &snap.histograms {
        if name.starts_with("core.lock.instance") && name.ends_with(".wait_ns") {
            lock_wait_p99_ns = lock_wait_p99_ns.max(h.p99);
            lock_waits += h.count;
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    ShardedResult {
        rows,
        ms,
        fsyncs,
        lock_wait_p99_ns,
        lock_waits,
    }
}

fn sharded_table() -> Table {
    Table::new(&[
        "shards",
        "writers",
        "rows",
        "ms",
        "rows/sec",
        "fsyncs",
        "lock-wait p99 us",
        "waits",
    ])
}

fn emit_sharded(table: &mut Table, shards: u32, writers: usize, r: &ShardedResult) {
    table.row(&[
        shards.to_string(),
        writers.to_string(),
        r.rows.to_string(),
        format!("{:.1}", r.ms),
        format!("{:.0}", r.rows_per_sec()),
        r.fsyncs.to_string(),
        format!("{:.1}", r.lock_wait_p99_ns as f64 / 1000.0),
        r.lock_waits.to_string(),
    ]);
    println!(
        "BENCH JSON {{\"experiment\":\"ingest_throughput\",\"mode\":\"sharded\",\
         \"policy\":\"always\",\"shards\":{shards},\"writers\":{writers},\
         \"rows\":{},\"ms\":{:.2},\"rows_per_sec\":{:.1},\"fsyncs\":{},\
         \"lock_wait_p99_ns\":{},\"lock_waits\":{}}}",
        r.rows,
        r.ms,
        r.rows_per_sec(),
        r.fsyncs,
        r.lock_wait_p99_ns,
        r.lock_waits
    );
}

fn emit(table: &mut Table, mode: Mode, policy: FsyncPolicy, batch: usize, r: &RunResult) {
    table.row(&[
        mode.name().to_string(),
        policy_name(policy).to_string(),
        batch.to_string(),
        r.rows.to_string(),
        format!("{:.1}", r.ms),
        format!("{:.0}", r.rows_per_sec()),
        r.fsyncs.to_string(),
        format!("{:.4}", r.fsyncs_per_row()),
    ]);
    println!(
        "BENCH JSON {{\"experiment\":\"ingest_throughput\",\"mode\":\"{}\",\
         \"policy\":\"{}\",\"batch\":{batch},\"rows\":{},\"ms\":{:.2},\
         \"rows_per_sec\":{:.1},\"fsyncs\":{},\"fsyncs_per_row\":{:.5}}}",
        mode.name(),
        policy_name(policy),
        r.rows,
        r.ms,
        r.rows_per_sec(),
        r.fsyncs,
        r.fsyncs_per_row()
    );
}

fn smoke() -> i32 {
    let policy = FsyncPolicy::Always;
    let mut table = new_table();
    let single = run(Mode::Single, policy, 1, SMOKE_ROWS);
    emit(&mut table, Mode::Single, policy, 1, &single);
    let batch64 = run(Mode::Batch, policy, 64, SMOKE_ROWS);
    emit(&mut table, Mode::Batch, policy, 64, &batch64);
    let queued64 = run(Mode::Queued, policy, 64, SMOKE_ROWS);
    emit(&mut table, Mode::Queued, policy, 64, &queued64);
    println!("\n{}", table.render());
    // Fsync *counts* are deterministic for single and batch modes;
    // queued batch shape depends on committer scheduling, so its gate
    // is looser. No wall-clock assertions (1-core CI box).
    let mut ok = true;
    let reduction = single.fsyncs_per_row() / batch64.fsyncs_per_row().max(f64::EPSILON);
    if reduction < 8.0 {
        println!(
            "SMOKE FAIL: ingest_batch@64 reduced fsyncs/row only {reduction:.1}x \
             (need >= 8x): single={} batch64={}",
            single.fsyncs, batch64.fsyncs
        );
        ok = false;
    } else {
        println!("smoke: ingest_batch@64 fsync reduction {reduction:.1}x (>= 8x) OK");
    }
    if queued64.fsyncs > single.fsyncs {
        println!(
            "SMOKE FAIL: queued@64 issued more fsyncs than single-record ingest \
             ({} > {})",
            queued64.fsyncs, single.fsyncs
        );
        ok = false;
    } else {
        println!(
            "smoke: queued@64 fsyncs {} <= single {} OK",
            queued64.fsyncs, single.fsyncs
        );
    }
    // Sharded-write-path gate: with four writers, four shards must beat
    // one shard on instance-lock wait p99, and the 1-shard baseline must
    // actually have contended (otherwise the comparison is vacuous).
    // Telemetry counts and bucketed waits, not wall clock.
    let mut shard_table = sharded_table();
    let one = run_sharded(1, SHARD_WRITERS, SHARD_SMOKE_ROWS_PER_WRITER);
    emit_sharded(&mut shard_table, 1, SHARD_WRITERS, &one);
    let four = run_sharded(4, SHARD_WRITERS, SHARD_SMOKE_ROWS_PER_WRITER);
    emit_sharded(&mut shard_table, 4, SHARD_WRITERS, &four);
    println!("\n{}", shard_table.render());
    if one.lock_waits == 0 {
        println!(
            "SMOKE FAIL: the 1-shard baseline saw no contended instance-lock \
             acquisitions across {SHARD_WRITERS} writers — nothing to amortize"
        );
        ok = false;
    }
    if four.lock_wait_p99_ns >= one.lock_wait_p99_ns.max(1) {
        println!(
            "SMOKE FAIL: 4-shard lock-wait p99 {}ns did not beat 1-shard {}ns",
            four.lock_wait_p99_ns, one.lock_wait_p99_ns
        );
        ok = false;
    } else {
        println!(
            "smoke: sharded lock-wait p99 {}ns (4 shards) < {}ns (1 shard), \
             baseline waits {} OK",
            four.lock_wait_p99_ns, one.lock_wait_p99_ns, one.lock_waits
        );
    }
    if ok {
        0
    } else {
        1
    }
}

fn new_table() -> Table {
    Table::new(&[
        "mode",
        "policy",
        "batch",
        "rows",
        "ms",
        "rows/sec",
        "fsyncs",
        "fsyncs/row",
    ])
}

fn main() {
    banner(
        "E-ING",
        "group-commit ingest (DESIGN.md §9): fsync amortization vs batch size",
        "one WAL append seals a whole batch, so fsyncs/row falls as 1/batch under \
         FsyncPolicy::Always; EveryN narrows the gap, OnCheckpoint leaves only the \
         per-batch lock + append savings",
    );
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    if let Some(pos) = args.iter().position(|a| a == "--shards") {
        // Sharded axis only: `--shards 1,2,4` (defaults to the full axis).
        let counts: Vec<u32> = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("1,2,4")
            .split(',')
            .map(|s| s.trim().parse().expect("--shards takes N[,N...]"))
            .collect();
        let mut table = sharded_table();
        for &shards in &counts {
            let r = run_sharded(shards, SHARD_WRITERS, SHARD_ROWS_PER_WRITER);
            emit_sharded(&mut table, shards, SHARD_WRITERS, &r);
        }
        println!("\n{}", table.render());
        println!("shape check: lock-wait p99 falls as shards approach the writer count —");
        println!("one shard serializes every commit (and its fsync) on one instance write");
        println!("lock; at shards >= writers each writer owns its shard and never blocks.");
        return;
    }
    let mut table = new_table();
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(64),
        FsyncPolicy::OnCheckpoint,
    ] {
        let single = run(Mode::Single, policy, 1, FULL_ROWS);
        emit(&mut table, Mode::Single, policy, 1, &single);
        for &batch in BATCHES {
            let r = run(Mode::Batch, policy, batch, FULL_ROWS);
            emit(&mut table, Mode::Batch, policy, batch, &r);
            let r = run(Mode::Queued, policy, batch, FULL_ROWS);
            emit(&mut table, Mode::Queued, policy, batch, &r);
        }
    }
    println!("\n{}", table.render());
    println!("shape check: under always, batch/queued fsyncs/row ≈ 1/batch while single stays");
    println!("at 1.0; under every64 the policy already amortizes so the curves meet near batch");
    println!("64; under on_checkpoint fsyncs are 0 everywhere and the residual win is one lock");
    println!("acquisition and one WAL append per batch instead of per row.");
    let mut shard_table = sharded_table();
    for &shards in SHARD_AXIS {
        let r = run_sharded(shards, SHARD_WRITERS, SHARD_ROWS_PER_WRITER);
        emit_sharded(&mut shard_table, shards, SHARD_WRITERS, &r);
    }
    println!("\n{}", shard_table.render());
    println!("shape check: lock-wait p99 falls as shards approach the writer count — one");
    println!("shard serializes every commit (and its fsync) on one instance write lock; at");
    println!("shards >= writers each writer owns its shard and never blocks.");
}
