//! E-T1-FS2 — interconnectedness/richness formalism across sources.
//!
//! Generates four sources of deliberately different connectivity and
//! semantic diversity and reports the FS.2 measures; the composite
//! richness score must order them as constructed.

use scdb_bench::{banner, Table};
use scdb_graph::graph::test_provenance;
use scdb_graph::metrics::assess;
use scdb_graph::PropertyGraph;
use scdb_types::{EntityId, SymbolTable};

/// Build a graph with `n` nodes, `roles` distinct labels, ring plus
/// `extra` chords per node.
fn build(n: u64, n_roles: usize, extra: u64) -> PropertyGraph {
    let mut syms = SymbolTable::new();
    let roles: Vec<_> = (0..n_roles.max(1))
        .map(|i| syms.intern(&format!("role{i}")))
        .collect();
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.ensure_node(EntityId(i));
    }
    let mut r = 0usize;
    for i in 0..n {
        for j in 1..=(1 + extra) {
            let to = (i + j * 3 + 1) % n;
            if to != i {
                let _ = g.add_edge(
                    EntityId(i),
                    EntityId(to),
                    roles[r % roles.len()],
                    test_provenance(0, 0),
                );
                r += 1;
            }
        }
    }
    g
}

fn main() {
    banner(
        "E-T1-FS2",
        "Table 1 row FS.2 (formalism for interconnectedness richness)",
        "information content + connectivity measures compose into a comparable richness score",
    );
    let mut table = Table::new(&[
        "source",
        "nodes",
        "edges",
        "density",
        "deg_H",
        "role_H",
        "comps",
        "clustering",
        "RICHNESS",
    ]);
    let sources = [
        ("dense-multirole", build(200, 8, 5)),
        ("dense-monorole", build(200, 1, 5)),
        ("sparse-multirole", build(200, 8, 0)),
        ("isolated", {
            let mut g = PropertyGraph::new();
            for i in 0..200 {
                g.ensure_node(EntityId(i));
            }
            g
        }),
    ];
    let mut scores = Vec::new();
    for (name, g) in &sources {
        let r = assess(g);
        scores.push((name.to_string(), r.richness));
        table.row(&[
            name.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            format!("{:.4}", r.density),
            format!("{:.2}", r.degree_entropy),
            format!("{:.2}", r.role_entropy),
            r.components.to_string(),
            format!("{:.3}", r.clustering_coefficient),
            format!("{:.3}", r.richness),
        ]);
    }
    println!("{}", table.render());
    let ordered = scores.windows(2).all(|w| w[0].1 >= w[1].1);
    println!(
        "shape check: dense-multirole ≥ dense-monorole ≥ sparse-multirole ≥ isolated — {}",
        if ordered { "HOLDS" } else { "VIOLATED" }
    );
}
