//! E-T1-FS10 / E-S4 — parallel worlds: the Warfarin dosage scenario.
//!
//! The paper's only worked quantitative example. Reproduces the naive vs
//! justified contrast at the paper's numbers and sweeps the fuzzy
//! "therapeutic range" width and the number of sources to show where the
//! semantics flip.

use scdb_bench::{banner, Table};
use scdb_datagen::clinical::{generate, paper_populations, TrialSource};
use scdb_semantic::Taxonomy;
use scdb_types::{Record, SymbolTable, WorldId};
use scdb_uncertain::{FuzzyPredicate, ParallelWorld, ParallelWorldSet};

fn build_worlds(
    populations: &[TrialSource],
    seed: u64,
) -> (ParallelWorldSet, Taxonomy, SymbolTable) {
    let mut symbols = SymbolTable::new();
    let corpus = generate(populations, seed, &mut symbols);
    let mut worlds = ParallelWorldSet::new();
    for (i, src) in corpus.sources.iter().enumerate() {
        let premise = corpus
            .ontology
            .find_concept(&corpus.premises[i])
            .expect("premise");
        worlds.add(ParallelWorld {
            id: WorldId(i as u32),
            premises: vec![premise],
            tuples: src.records.iter().map(|r| r.record.clone()).collect(),
        });
    }
    let taxonomy = Taxonomy::build(&corpus.ontology);
    (worlds, taxonomy, symbols)
}

fn degree_fn(symbols: &SymbolTable, center: f64, width: f64) -> impl Fn(&Record) -> f64 {
    let dose = symbols.get("effective_dose").expect("attr");
    let pred = FuzzyPredicate::CloseTo { center, width };
    move |r: &Record| {
        r.get(dose)
            .and_then(|v| v.as_float())
            .map(|x| pred.membership(x))
            .unwrap_or(0.0)
    }
}

fn main() {
    banner(
        "E-T1-FS10 / E-S4",
        "§4.2 Warfarin scenario (parallel worlds, justified answers)",
        "naive certain answer FALSE, justified answer TRUE via disjoint population premises",
    );

    // The paper's exact configuration.
    let (worlds, taxonomy, symbols) = build_worlds(&paper_populations(), 0x5A4);
    let q = "Is 5.0 mg an effective dosage of Warfarin?";
    let degree = degree_fn(&symbols, 5.0, 0.5);
    let naive = worlds.naive_certain(&degree, 0.5);
    let justified = worlds.justified(&degree, 0.5, |a, b| taxonomy.are_disjoint(a, b));
    println!("Q: {q}");
    println!("  sources report 5.1 / 3.4 / 6.1 mg for disjoint populations");
    println!("  naive certain answer:      {naive}");
    println!(
        "  justified answer:          {} (premises disjoint: {})",
        justified.justified, justified.premises_disjoint
    );
    for (w, d) in &justified.support {
        println!("    world {w}: support {d:.2}");
    }
    println!();

    // Width sweep: narrow range is what makes semantics necessary.
    println!("therapeutic-range width sweep (query center 5.0):");
    let mut t = Table::new(&["width", "naive", "justified"]);
    for width in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let d = degree_fn(&symbols, 5.0, width);
        let n = worlds.naive_certain(&d, 0.5);
        let j = worlds
            .justified(&d, 0.5, |a, b| taxonomy.are_disjoint(a, b))
            .justified;
        t.row(&[format!("{width}"), n.to_string(), j.to_string()]);
    }
    println!("{}", t.render());

    // Source-count sweep: more disjoint worlds never break justification.
    println!("source-count sweep (width 0.5):");
    let mut t = Table::new(&["sources", "naive", "justified", "supporting worlds"]);
    for extra in [0usize, 2, 5, 10] {
        let mut pops = paper_populations();
        for i in 0..extra {
            pops.push(TrialSource {
                population: format!("Cohort{i}"),
                mean_dose: 1.5 + i as f64,
                std_dose: 0.1,
                n: 20,
            });
        }
        let (w, tax, syms) = build_worlds(&pops, 0x5A4);
        let d = degree_fn(&syms, 5.0, 0.5);
        let ans = w.justified(&d, 0.5, |a, b| tax.are_disjoint(a, b));
        let supporting = ans.support.iter().filter(|(_, s)| *s >= 0.5).count();
        t.row(&[
            pops.len().to_string(),
            w.naive_certain(&d, 0.5).to_string(),
            ans.justified.to_string(),
            supporting.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Context-conditioned refinement per population. Premise concept ids
    // come from the generated ontology (never hardcode ConceptIds).
    println!("refined queries (context = population):");
    let mut t = Table::new(&["population", "dose asked", "justified"]);
    let mut syms2 = SymbolTable::new();
    let corpus = scdb_datagen::clinical::generate(&paper_populations(), 0x5A4, &mut syms2);
    let (worlds2, _tax, _) = build_worlds(&paper_populations(), 0x5A4);
    for (pop, center) in [
        ("WhitePopulation", 5.1),
        ("AsianPopulation", 3.4),
        ("BlackPopulation", 6.1),
    ] {
        let premise = corpus.ontology.find_concept(pop).expect("declared");
        let d = degree_fn(&syms2, center, 0.5);
        let ans = worlds2.justified_given(&d, 0.5, premise);
        t.row(&[
            pop.to_string(),
            format!("{center}"),
            ans.justified.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: the paper's FALSE→TRUE flip at width 0.5; naive flips TRUE only when");
    println!(
        "the range is so wide semantics are unnecessary; justification is stable in #sources."
    );
}
