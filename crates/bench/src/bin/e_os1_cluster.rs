//! E-T1-OS1 — dynamic fine-grained clustering: locality and compression.
//!
//! Replays a skewed co-access workload against three layouts (arrival
//! order, frequency-only, co-access greedy) and reports page touches
//! (the cache-line proxy) and wall time; then shows the compression side:
//! clustering by a correlated attribute lengthens runs, which the column
//! encodings convert into bytes.

use scdb_bench::{banner, time_ms, Table};
use scdb_datagen::workload::{co_access, CoAccessConfig};
use scdb_storage::cluster::{ClusterStrategy, ClusteredLayout, CoAccessTracker};
use scdb_storage::column::ColumnSegment;
use scdb_storage::page::PageConfig;
use scdb_types::Value;

fn main() {
    banner(
        "E-T1-OS1",
        "Table 1 row OS.1 (dynamic instance-level clustering)",
        "co-access packing cuts page touches vs arrival order and frequency-only layouts",
    );
    let pages = PageConfig::new(16);
    let mut t = Table::new(&[
        "workload",
        "layout",
        "page_touches",
        "distinct_pages",
        "replay_ms",
        "speedup",
    ]);
    for (wname, skew, noise) in [
        ("skewed", 0.9, 0.05),
        ("uniform", 0.0, 0.05),
        ("noisy", 0.8, 0.4),
    ] {
        let w = co_access(&CoAccessConfig {
            n_records: 20_000,
            n_groups: 500,
            group_size: 8,
            n_accesses: 10_000,
            skew,
            noise,
            seed: 0x051,
        });
        let mut tracker = CoAccessTracker::default();
        for g in &w.accesses {
            tracker.observe(g);
        }
        let mut baseline_touches = 0u64;
        for strategy in [
            ClusterStrategy::Identity,
            ClusterStrategy::FrequencyOrder,
            ClusterStrategy::CoAccessGreedy,
        ] {
            let layout = ClusteredLayout::build(&tracker, 20_000, pages, strategy);
            let ((touches, distinct), ms) = time_ms(|| layout.replay(&w.accesses, pages));
            if strategy == ClusterStrategy::Identity {
                baseline_touches = touches;
            }
            t.row(&[
                wname.to_string(),
                format!("{strategy:?}"),
                touches.to_string(),
                distinct.to_string(),
                format!("{ms:.1}"),
                format!("{:.2}x", baseline_touches as f64 / touches as f64),
            ]);
        }
    }
    println!("{}", t.render());

    // Compression side: clustering a column by value lengthens runs.
    println!("compression under clustering (100k-row category column, 32 categories):");
    let mut t = Table::new(&["layout", "encoding", "bytes", "ratio vs plain"]);
    let unclustered: Vec<Value> = (0..100_000)
        .map(|i| Value::str(format!("category-{:02}", (i * 17) % 32)))
        .collect();
    let clustered: Vec<Value> = {
        let mut v = unclustered.clone();
        v.sort();
        v
    };
    let plain_bytes: usize = unclustered.iter().map(Value::approx_size).sum();
    for (name, col) in [("unclustered", &unclustered), ("clustered", &clustered)] {
        let (seg, enc) = ColumnSegment::build(col).expect("non-empty");
        t.row(&[
            name.to_string(),
            format!("{enc:?}"),
            seg.encoded_size().to_string(),
            format!("{:.1}x", plain_bytes as f64 / seg.encoded_size() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: co-access greedy wins on skewed/noisy workloads and ties on uniform;");
    println!("clustering flips the encoder to run-length for a large additional ratio.");
}
