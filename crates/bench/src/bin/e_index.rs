//! E-IDX — secondary indexes vs parallel scan (DESIGN.md §10).
//!
//! The statistics-driven optimizer picks an access path per query: a
//! selective equality over an indexed attribute routes through the
//! hash/ordered secondary index ([`PlanNode::IndexScan`]), everything
//! else takes the parallel full scan. This experiment measures both
//! paths over the same data at 10k and 100k rows:
//!
//! * **point** — `tag = '…'` matching ~0.1% of rows (10 rows per
//!   distinct tag value);
//! * **range** — `dose >= lo AND dose < hi` covering ~1% of rows.
//!
//! Each (size, query, access) cell emits one machine-readable
//! `BENCH JSON {...}` line with wall ms, rows scanned, rows out, and
//! the access path the optimizer actually chose. `--smoke` runs the
//! 10k point query only and *asserts* the index win by row counts —
//! the index path must return identical rows while touching only the
//! matching candidates instead of every row — so it is stable on a
//! 1-core CI box (no wall-clock gate).
//!
//! Qualitative shape to expect: the point query's index scan touches
//! 3 orders of magnitude fewer rows and wins wall-clock accordingly.
//! The range query is reported honestly: on live-ingested data the
//! incrementally-built histograms estimate wide ranges conservatively,
//! so the optimizer may keep the parallel scan — the `access` field
//! records its decision either way.
//!
//! [`PlanNode::IndexScan`]: scdb_query::PlanNode

use scdb_bench::{banner, time_ms, Table};
use scdb_core::{Db, IndexKind};
use scdb_types::{Record, Value};

const SIZES: &[usize] = &[10_000, 100_000];
const SMOKE_SIZE: usize = 10_000;
const REPS: usize = 5;

/// Names far apart in edit space (hash prefix) so fuzzy identity
/// matching never merges distinct serials and ER stays cheap.
fn row_name(i: usize) -> String {
    let tag = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
    format!("{tag:05x}-row-{i}")
}

/// `n` rows: unique `name`, `tag` shared by 10 rows (the point-query
/// column), monotone integer `dose` (the range-query column).
fn build(n: usize) -> Db {
    let db = Db::new();
    db.register_source("events", Some("name"));
    let name = db.intern("name");
    let tag = db.intern("tag");
    let dose = db.intern("dose");
    for i in 0..n {
        let r = Record::from_pairs([
            (name, Value::str(row_name(i))),
            (tag, Value::str(format!("t{:05}", i % (n / 10)))),
            (dose, Value::Int(i as i64)),
        ]);
        db.ingest("events", r, None).expect("ingest");
    }
    db
}

fn point_sql() -> String {
    "SELECT name FROM events WHERE tag = 't00042'".to_string()
}

fn range_sql(n: usize) -> String {
    let lo = n / 2;
    let hi = lo + n / 100;
    format!("SELECT name FROM events WHERE dose >= {lo} AND dose < {hi}")
}

struct RunResult {
    ms: f64,
    rows_scanned: u64,
    rows_out: u64,
    access: &'static str,
}

/// Run `sql` `REPS` times, keeping the fastest wall time (counters are
/// identical across reps).
fn run(db: &Db, sql: &str) -> RunResult {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let (out, ms) = time_ms(|| db.query(sql).expect("query"));
        best = best.min(ms);
        last = Some(out);
    }
    let out = last.unwrap();
    RunResult {
        ms: best,
        rows_scanned: out.stats.rows_scanned,
        rows_out: out.rows.len() as u64,
        access: if out.plan.index_scan().is_some() {
            "index_scan"
        } else {
            "scan"
        },
    }
}

fn emit(table: &mut Table, rows: usize, query: &str, phase: &str, r: &RunResult) {
    table.row(&[
        rows.to_string(),
        query.to_string(),
        phase.to_string(),
        r.access.to_string(),
        format!("{:.3}", r.ms),
        r.rows_scanned.to_string(),
        r.rows_out.to_string(),
    ]);
    println!(
        "BENCH JSON {{\"experiment\":\"index\",\"rows\":{rows},\"query\":\"{query}\",\
         \"phase\":\"{phase}\",\"access\":\"{}\",\"ms\":{:.4},\
         \"rows_scanned\":{},\"rows_out\":{}}}",
        r.access, r.ms, r.rows_scanned, r.rows_out
    );
}

fn new_table() -> Table {
    Table::new(&[
        "rows",
        "query",
        "phase",
        "access",
        "ms",
        "rows_scanned",
        "rows_out",
    ])
}

/// Index the two query columns; returns entry counts for the banner.
fn create_indexes(db: &Db) -> (usize, usize) {
    db.create_index("ix_tag", "events", "tag", IndexKind::Hash)
        .expect("create hash index");
    db.create_index("ix_dose", "events", "dose", IndexKind::Ordered)
        .expect("create ordered index");
    let defs = db.indexes();
    (defs.len(), 2)
}

fn smoke() -> i32 {
    let mut table = new_table();
    let db = build(SMOKE_SIZE);
    let before = run(&db, &point_sql());
    emit(&mut table, SMOKE_SIZE, "point", "pre-index", &before);
    create_indexes(&db);
    let after = run(&db, &point_sql());
    emit(&mut table, SMOKE_SIZE, "point", "indexed", &after);
    println!("\n{}", table.render());

    let mut ok = true;
    if after.access != "index_scan" {
        println!("SMOKE FAIL: selective point query did not take the index path");
        ok = false;
    }
    if after.rows_out != before.rows_out || after.rows_out != 10 {
        println!(
            "SMOKE FAIL: index path changed the result ({} vs {} rows, want 10)",
            after.rows_out, before.rows_out
        );
        ok = false;
    }
    if before.rows_scanned != SMOKE_SIZE as u64 {
        println!(
            "SMOKE FAIL: pre-index scan touched {} rows, want {SMOKE_SIZE}",
            before.rows_scanned
        );
        ok = false;
    }
    if after.rows_scanned >= before.rows_scanned / 100 {
        println!(
            "SMOKE FAIL: index scan touched {} rows vs {} for the full scan \
             (want >= 100x fewer)",
            after.rows_scanned, before.rows_scanned
        );
        ok = false;
    }
    if ok {
        println!(
            "smoke: index scan {} rows vs full scan {} rows, identical 10-row result OK",
            after.rows_scanned, before.rows_scanned
        );
        0
    } else {
        1
    }
}

fn main() {
    banner(
        "E-IDX",
        "secondary indexes & access paths (DESIGN.md §10)",
        "a selective point query routes through the hash index and touches only its \
         candidates; the optimizer's EXPLAIN records the access decision either way",
    );
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let mut table = new_table();
    for &n in SIZES {
        let db = build(n);
        for (query, sql) in [("point", point_sql()), ("range", range_sql(n))] {
            let r = run(&db, &sql);
            emit(&mut table, n, query, "pre-index", &r);
        }
        create_indexes(&db);
        for (query, sql) in [("point", point_sql()), ("range", range_sql(n))] {
            let r = run(&db, &sql);
            emit(&mut table, n, query, "indexed", &r);
        }
        // Show the optimizer's reasoning for the indexed point query.
        let out = db.query(&point_sql()).expect("explain");
        println!("\n-- plan at {n} rows --\n{}", out.plan);
        for line in &out.plan.rewrites {
            println!("rewrite: {line}");
        }
    }
    println!("\n{}", table.render());
}
