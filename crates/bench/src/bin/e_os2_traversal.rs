//! E-T1-OS2 — locality-aware multi-hop traversal.
//!
//! k-hop expansion (k = 1..6) on a scrambled community graph under four
//! vertex orderings, against the per-hop sorted-index baseline. Reported:
//! adjacency pages touched (deterministic locality) and wall time.

use scdb_bench::{banner, time_ms, Table};
use scdb_graph::csr::CsrSnapshot;
use scdb_graph::graph::test_provenance;
use scdb_graph::order::VertexOrdering;
use scdb_graph::traverse::{khop_csr, EdgeIndexBaseline};
use scdb_graph::PropertyGraph;
use scdb_types::{EntityId, SymbolTable};

fn scrambled_community_graph(n_communities: u64, size: u64) -> PropertyGraph {
    let mut syms = SymbolTable::new();
    let role = syms.intern("r");
    let mut g = PropertyGraph::new();
    let id = |c: u64, j: u64| EntityId(j * n_communities + c);
    for i in 0..n_communities * size {
        g.ensure_node(EntityId(i));
    }
    for c in 0..n_communities {
        for j in 0..size {
            let _ = g.add_edge(id(c, j), id(c, (j + 1) % size), role, test_provenance(0, 0));
            let _ = g.add_edge(id(c, j), id(c, (j + 7) % size), role, test_provenance(0, 0));
            let _ = g.add_edge(
                id(c, j),
                id(c, (j + 19) % size),
                role,
                test_provenance(0, 0),
            );
        }
    }
    g
}

fn main() {
    banner(
        "E-T1-OS2",
        "Table 1 row OS.2 (locality-aware multi-hop traversal)",
        "reordered CSR touches far fewer pages than arrival order or per-hop index probes",
    );
    let g = scrambled_community_graph(40, 250); // 10k vertices, 30k edges
    let seeds: Vec<EntityId> = (0..40).map(EntityId).collect();

    let orderings = [
        VertexOrdering::Original,
        VertexOrdering::DegreeDescending,
        VertexOrdering::Bfs,
        VertexOrdering::ReverseCuthillMcKee,
    ];
    let compiled: Vec<(VertexOrdering, CsrSnapshot)> = orderings
        .into_iter()
        .map(|o| (o, CsrSnapshot::compile(&g, o)))
        .collect();
    let baseline = EdgeIndexBaseline::build(&g, 256);

    let mut t = Table::new(&["k", "representation", "pages", "edges_examined", "time_ms"]);
    for k in [1usize, 2, 3, 4, 6] {
        for (o, csr) in &compiled {
            let (agg, ms) = time_ms(|| {
                let mut pages = 0u64;
                let mut edges = 0u64;
                for &s in &seeds {
                    if let Some(r) = khop_csr(csr, s, k, None) {
                        pages += r.pages_touched;
                        edges += r.edges_examined;
                    }
                }
                (pages, edges)
            });
            t.row(&[
                k.to_string(),
                format!("csr/{o:?}"),
                agg.0.to_string(),
                agg.1.to_string(),
                format!("{ms:.1}"),
            ]);
        }
        let (agg, ms) = time_ms(|| {
            let mut pages = 0u64;
            let mut edges = 0u64;
            for &s in &seeds {
                let r = baseline.khop(s, k, None);
                pages += r.pages_touched;
                edges += r.edges_examined;
            }
            (pages, edges)
        });
        t.row(&[
            k.to_string(),
            "btree-index".to_string(),
            agg.0.to_string(),
            agg.1.to_string(),
            format!("{ms:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: BFS/RCM orderings touch fewest pages at every k; the gap widens with");
    println!("k (multi-hop is where locality pays); the index baseline is competitive only at k=1");
    println!("— exactly the paper's 'direct access is no longer beneficial' argument.");
}
