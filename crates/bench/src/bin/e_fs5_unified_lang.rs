//! E-T1-FS4/FS5 — the unified language: relational + semantic + model
//! atoms in one query, with a declaratively specified statistical model.
//!
//! Demonstrates each atom class executing over one curated database and
//! reports per-atom row counts plus the combined query — SQL's
//! declarativeness, OWL's semantics, and an ML model in one WHERE clause.

use scdb_bench::{banner, Table};
use scdb_core::Db;
use scdb_semantic::{ModelKind, ModelSpec};
use scdb_types::{Record, Value};

fn main() {
    banner(
        "E-T1-FS4/FS5",
        "Table 1 rows FS.4 + FS.5 (declarative models; unified language)",
        "one language spans relational, fuzzy, semantic, existential, and model atoms",
    );
    let db = Db::new();
    db.register_source("trials", Some("drug"));
    let drug = db.intern("drug");
    let dose = db.intern("dose");
    let response = db.intern("response");
    // 200 trial rows over 4 drugs.
    let drugs = ["Warfarin", "Ibuprofen", "Methotrexate", "Acetaminophen"];
    for i in 0..200i64 {
        let name = drugs[(i % 4) as usize];
        let d = 2.0 + (i % 50) as f64 / 10.0;
        let r = Record::from_pairs([
            (drug, Value::str(name)),
            (dose, Value::Float(d)),
            (response, Value::Float(if d > 4.0 { 0.9 } else { 0.2 })),
        ]);
        db.ingest("trials", r, None).unwrap();
    }
    // Semantic layer.
    db.with_ontology(|o| {
        o.subclass("Anticoagulant", "Drug");
        o.subclass_exists("Drug", "has_target", "Gene");
    });
    db.assert_entity_type("Warfarin", "Anticoagulant").unwrap();
    db.assert_entity_type("Ibuprofen", "Drug").unwrap();
    // Declarative model (FS.4): P(responds | dose).
    let spec = ModelSpec::new(
        "responds",
        ModelKind::LogisticRegression,
        vec!["dose".into()],
        "probability the trial shows response",
    );
    let rows: Vec<(Vec<f64>, bool)> = (0..100)
        .map(|i| {
            let d = 2.0 + i as f64 / 20.0;
            (vec![d], d > 4.0)
        })
        .collect();
    db.register_model(spec.train(&rows).expect("trainable"));

    let queries = [
        ("relational", "SELECT drug FROM trials WHERE drug = 'Warfarin' AND dose >= 4.0"),
        ("fuzzy (§4.2)", "SELECT drug FROM trials WHERE dose CLOSE TO 5.0 WITHIN 0.5"),
        ("semantic (OWL)", "SELECT drug FROM trials WHERE drug IS 'Drug'"),
        ("existential (§3.3)", "SELECT drug FROM trials WHERE drug HAS SOME has_target"),
        ("model (FS.4)", "SELECT drug FROM trials WHERE LINKED BY responds >= 0.5"),
        (
            "ALL COMBINED",
            "SELECT drug, dose FROM trials WHERE drug IS 'Anticoagulant' AND dose CLOSE TO 5.0 WITHIN 1.0 AND LINKED BY responds >= 0.5 AND drug HAS SOME has_target LIMIT 10",
        ),
    ];
    let mut table = Table::new(&["atom class", "rows", "scanned", "atom_evals", "rewrites"]);
    for (name, sql) in queries {
        let out = db.query(sql).expect(sql);
        table.row(&[
            name.to_string(),
            out.rows.len().to_string(),
            out.stats.rows_scanned.to_string(),
            out.stats.atom_evals.to_string(),
            out.plan.rewrites.len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: every atom class returns rows; the combined query composes them");
    println!("and still executes in one pipeline with optimizer participation.");
}
