//! E-F2 — Figure 2: the life-science enriched data model, reproduced.
//!
//! Loads the exact figure rows, then verifies every structural claim the
//! figure makes: the three sources, the cross-source identity of genes,
//! the drug→gene→disease paths, the taxonomies, and the §3.3 existential
//! inference for Acetaminophen.

use scdb_bench::{banner, Table};
use scdb_core::Db;
use scdb_datagen::life_science::{figure2_ontology, figure2_sources};

fn main() {
    banner(
        "E-F2",
        "Figure 2 (life-science example)",
        "heterogeneous sources fuse into one enriched graph; missing links are inferred",
    );
    let db = Db::new();
    let sources = db.with_symbols(figure2_sources);
    let identity = ["Drug Name", "Gene", "Gene"];
    for (i, src) in sources.iter().enumerate() {
        db.register_source(&src.name, Some(identity[i]));
        for rec in &src.records {
            db.ingest(&src.name, rec.record.clone(), rec.text.as_deref())
                .expect("ingest");
        }
    }
    let late = db.discover_links().expect("links");
    db.set_ontology(figure2_ontology());
    for drug in ["Ibuprofen", "Acetaminophen", "Methotrexate", "Warfarin"] {
        db.assert_entity_type(drug, "ApprovedDrug").expect("typed");
    }
    for gene in ["TP53", "DHFR", "PTGS2"] {
        if db.entity_named(gene).is_some() {
            db.assert_entity_type(gene, "Gene").expect("typed");
        }
    }

    let mut table = Table::new(&["figure claim", "reproduced", "evidence"]);
    let mut claim = |name: &str, ok: bool, evidence: String| {
        table.row(&[name.to_string(), ok.to_string(), evidence]);
    };

    claim(
        "three sources load",
        db.source_count() == 3,
        format!(
            "{} sources, {} records",
            db.source_count(),
            db.stats().records
        ),
    );

    let tp53 = db.entity_named("TP53");
    let assignments = { db.assignments() };
    let tp53_refs = tp53
        .map(|e| assignments.values().filter(|x| **x == e).count())
        .unwrap_or(0);
    claim(
        "TP53 identity across CTD/Uniprot",
        tp53_refs >= 2,
        format!("{tp53_refs} records resolve to one TP53 entity"),
    );

    let mtx = db.entity_named("Methotrexate").expect("mtx");
    let dhfr = db.entity_named("DHFR").expect("dhfr");
    let mtx_dhfr = db.graph().edges(mtx).iter().any(|e| e.to == dhfr);
    claim(
        "Methotrexate → DHFR link",
        mtx_dhfr,
        format!("graph edge present (late links discovered: {late})"),
    );

    let gene_c = db.ontology().find_concept("Gene").expect("concept");
    let drug_c = db.ontology().find_concept("Drug").expect("concept");
    let target = db.ontology().find_role("has_target").expect("role");
    let acetaminophen = db.entity_named("Acetaminophen").expect("entity");
    let sat_stats = {
        let sat = db.reason().expect("saturate");
        (
            sat.fillers(target, acetaminophen).len(),
            sat.has_some(acetaminophen, target, gene_c),
            sat.has_type(acetaminophen, drug_c),
            sat.derived_count(),
            sat.is_consistent(),
        )
    };
    claim(
        "Acetaminophen ∃has_target.Gene inferred (no named target)",
        sat_stats.0 == 0 && sat_stats.1,
        format!(
            "named targets: {}, existential: {}, derived facts: {}",
            sat_stats.0, sat_stats.1, sat_stats.3
        ),
    );
    claim(
        "ApprovedDrug ⊑ Drug propagation",
        sat_stats.2,
        "Acetaminophen typed Drug via subsumption".to_string(),
    );
    claim(
        "ontology consistent",
        sat_stats.4,
        "no disjointness violations".to_string(),
    );

    let taxonomy = scdb_semantic::Taxonomy::build(&db.ontology());
    let osteo = db.ontology().find_concept("Osteosarcoma").expect("c");
    let disease = db.ontology().find_concept("Disease").expect("c");
    claim(
        "Osteosarcoma ⊑ Sarcoma ⊑ Neoplasms ⊑ Disease",
        taxonomy.subsumes(disease, osteo),
        format!("{} taxonomy ancestors", taxonomy.ancestors(osteo).len()),
    );

    println!("{}", table.render());
}
