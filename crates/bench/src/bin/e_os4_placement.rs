//! E-T1-OS4 — placement in distributed shared memory.
//!
//! A co-accessed entity workload over 4–64 simulated memory nodes:
//! hash vs range vs affinity placement, with and without hot-item
//! replication. Reported: remote-access ratio, simulated total cost,
//! memory duplication, and load balance.

use scdb_bench::{banner, Table};
use scdb_datagen::workload::{co_access, CoAccessConfig};
use scdb_placement::{compute_placement, evaluate, ClusterConfig, PlacementPolicy};

fn main() {
    banner(
        "E-T1-OS4",
        "Table 1 row OS.4 (data placement in distributed shared memory)",
        "affinity placement minimizes remote accesses without the duplication replication needs",
    );
    let n_items = 20_000u64;
    let w = co_access(&CoAccessConfig {
        n_records: n_items,
        n_groups: 800,
        group_size: 6,
        n_accesses: 8_000,
        skew: 0.8,
        noise: 0.1,
        seed: 0x054,
    });

    let mut t = Table::new(&[
        "nodes",
        "policy",
        "remote_ratio",
        "total_cost",
        "duplication",
        "max_load",
    ]);
    for n_nodes in [4usize, 16, 64] {
        let cfg = ClusterConfig {
            n_nodes,
            ..Default::default()
        };
        for (name, policy, repl) in [
            ("hash", PlacementPolicy::Hash, 0.0),
            ("range", PlacementPolicy::Range, 0.0),
            ("hash+replicate(10%)", PlacementPolicy::Hash, 0.1),
            ("affinity", PlacementPolicy::Affinity, 0.0),
        ] {
            let p = compute_placement(policy, n_items, n_nodes, &w.accesses, usize::MAX, repl);
            let r = evaluate(&p, &w.accesses, &cfg);
            t.row(&[
                n_nodes.to_string(),
                name.to_string(),
                format!("{:.3}", r.remote_ratio),
                format!("{:.0}", r.total_cost),
                format!("{:.2}", r.duplication),
                r.max_node_load.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("shape check: affinity ≈ zero remote ratio at duplication 1.0 across cluster sizes;");
    println!("replication helps hash but pays memory; remote ratio of hash/range worsens with");
    println!("node count (more ways to split a co-access group) — affinity does not.");
}
