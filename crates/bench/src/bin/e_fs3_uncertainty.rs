//! E-T1-FS3 — the unified uncertainty formalism vs isolated ones.
//!
//! A diagnosis-support scenario with mixed evidence about one proposition
//! ("the patient responds to the drug"): a hard probabilistic sensor
//! source, a soft fuzzy text source, and a source with missing values.
//! Single-formalism baselines must either drop the foreign evidence or
//! mis-coerce it; the unified evidence interval consumes all three and its
//! decisions dominate on accuracy at equal abstention.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scdb_bench::{banner, Table};
use scdb_uncertain::Evidence;

struct Case {
    truth: bool,
    sensor: Option<f64>,
    fuzzy: Option<f64>,
}

fn cases(n: usize, seed: u64) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let truth = rng.gen_bool(0.5);
            // Sensor: probability centered on truth, sometimes missing.
            let sensor = if rng.gen_bool(0.7) {
                let base: f64 = if truth { 0.8 } else { 0.2 };
                Some((base + rng.gen_range(-0.25..0.25)).clamp(0.0, 1.0))
            } else {
                None
            };
            // Fuzzy text: vaguer, sometimes missing.
            let fuzzy = if rng.gen_bool(0.7) {
                let base: f64 = if truth { 0.7 } else { 0.3 };
                Some((base + rng.gen_range(-0.35..0.35)).clamp(0.0, 1.0))
            } else {
                None
            };
            Case {
                truth,
                sensor,
                fuzzy,
            }
        })
        .collect()
}

struct Outcome {
    correct: usize,
    wrong: usize,
    abstained: usize,
}

fn score(decisions: &[(Option<bool>, bool)]) -> Outcome {
    let mut o = Outcome {
        correct: 0,
        wrong: 0,
        abstained: 0,
    };
    for (d, truth) in decisions {
        match d {
            None => o.abstained += 1,
            Some(v) if v == truth => o.correct += 1,
            Some(_) => o.wrong += 1,
        }
    }
    o
}

fn main() {
    banner(
        "E-T1-FS3",
        "Table 1 row FS.3 (single tractable formalism for aggregated uncertainty)",
        "unified evidence consumes probabilistic + fuzzy + missing; baselines drop evidence",
    );
    let data = cases(2000, 0xF53);
    let tau = 0.5;

    // Baseline A: probabilistic-only (ignores fuzzy evidence entirely).
    let prob_only: Vec<(Option<bool>, bool)> = data
        .iter()
        .map(|c| {
            let d = c.sensor.map(|p| p >= tau);
            (d, c.truth)
        })
        .collect();
    // Baseline B: fuzzy-only.
    let fuzzy_only: Vec<(Option<bool>, bool)> = data
        .iter()
        .map(|c| (c.fuzzy.map(|m| m >= tau), c.truth))
        .collect();
    // Unified: embed each evidence kind, fuse, decide with abstention.
    let unified: Vec<(Option<bool>, bool)> = data
        .iter()
        .map(|c| {
            let mut items = Vec::new();
            if let Some(p) = c.sensor {
                items.push((Evidence::from_probability(p), 2.0)); // hard source, higher weight
            }
            if let Some(m) = c.fuzzy {
                items.push((Evidence::from_fuzzy(m), 1.0));
            }
            let e = Evidence::fuse(&items);
            // Decide with a modest decision margin around tau.
            let d = if e.support() >= tau + 0.05 {
                Some(true)
            } else if e.plausibility() <= tau - 0.05 {
                Some(false)
            } else if e.ignorance() >= 0.99 {
                None // nothing known at all
            } else {
                Some(e.support() + e.ignorance() / 2.0 >= tau)
            };
            (d, c.truth)
        })
        .collect();

    let mut table = Table::new(&["formalism", "correct", "wrong", "abstained", "accuracy"]);
    for (name, decisions) in [
        ("probabilistic-only", prob_only),
        ("fuzzy-only", fuzzy_only),
        ("unified evidence", unified),
    ] {
        let o = score(&decisions);
        let answered = o.correct + o.wrong;
        table.row(&[
            name.to_string(),
            o.correct.to_string(),
            o.wrong.to_string(),
            o.abstained.to_string(),
            format!(
                "{:.3}",
                if answered == 0 {
                    0.0
                } else {
                    o.correct as f64 / answered as f64
                }
            ),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: unified answers the most cases correctly in absolute terms — it");
    println!("consumes evidence the isolated formalisms must drop (their abstentions), while");
    println!("keeping accuracy near the hard-source-only ceiling.");
}
