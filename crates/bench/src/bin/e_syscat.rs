//! E-SYS — system catalog: `sys.*` refresh cost and the overhead of
//! querying the database's own telemetry while it ingests (DESIGN.md
//! §13 "Self-observation & system catalog").
//!
//! A self-curating database must be able to *query* its own state, but
//! self-observation is only honest if watching the system does not
//! change it. This experiment drives the usual 10k-row group-commit
//! ingest+query loop twice — once with the whole observability stack
//! disabled (metrics registry and flight recorder off, no catalog
//! reads), once fully observed: registry and recorder on,
//! correlation-id events stamped on every batch, and a
//! monitoring-cadence `sys.*` poller (`sys.metrics`, `sys.wal`,
//! `sys.locks` every 500 rows) riding the loop — and compares wall
//! time, the same enabled-vs-disabled convention as the existing <5%
//! observability budget guards. It then measures the per-relation
//! refresh cost: one `SELECT *` per catalog relation against a
//! warmed-up instance, reading the `sys_refresh` stage out of each
//! query's own `EXPLAIN ANALYZE` profile (the catalog reports on
//! itself). The ring-scanning relations (`sys.events`, `sys.threads`)
//! are deliberately *not* in the timed poll set: materializing a full
//! 8k-event ring is milliseconds of honest work, and the table reports
//! that cost per refresh instead of hiding it in a loop average.
//!
//! One machine-readable `BENCH JSON {...}` line carries both loop
//! times, the overhead ratio, and per-relation `{rows, refresh_ns,
//! total_ns}`. `--smoke` runs paired rounds and *asserts* the observed
//! loop stays within 5% (plus fixed slack for 1-core CI jitter) of the
//! unobserved loop, that every relation listed in `sys.relations`
//! answers `SELECT *`, and that a real acked batch's correlation id
//! joins to its flush→append→fsync→apply journey in `sys.events`.

use std::time::Duration;

use scdb_core::{Db, FsyncPolicy, TelemetryConfig};
use scdb_types::{Record, Value};

use scdb_bench::{banner, time_ms, Table};

const FULL_ROWS: usize = 10_000;
const SMOKE_ROWS: usize = 2_000;
const POLL_EVERY: usize = 500;
const POLL_QUERIES: &[&str] = &[
    "SELECT * FROM sys.metrics LIMIT 50",
    "SELECT * FROM sys.wal",
    "SELECT * FROM sys.locks",
];

/// Deterministic row `i`: a pool name (drives merges) plus a float.
fn record(db: &Db, i: usize) -> Record {
    let name = db.intern("name");
    let dose = db.intern("dose");
    Record::from_pairs([
        (name, Value::str(format!("drug-{}", i % 64))),
        (dose, Value::Float((i % 10) as f64 + 0.5)),
    ])
}

/// The ingest+query loop: queued group-commit ingest in chunks of 64,
/// one user query every 100 rows — and, when observed, the registry
/// and flight recorder enabled plus the three health-relation catalog
/// queries every [`POLL_EVERY`] rows.
fn run_loop(rows: usize, observed: bool, tag: &str) -> f64 {
    scdb_obs::metrics().set_enabled(observed);
    scdb_obs::events().set_enabled(observed);
    let dir = std::env::temp_dir().join(format!("scdb-e-sys-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::builder()
        .durability(&dir, FsyncPolicy::EveryN(64))
        .ingest_queue(64)
        .open()
        .expect("open fresh log");
    db.register_source("bench", Some("name"));
    let records: Vec<Record> = (0..rows).map(|i| record(&db, i)).collect();
    let ((), ms) = time_ms(|| {
        let mut it = records.into_iter();
        let mut done = 0usize;
        let mut next_query = 100usize;
        let mut next_poll = POLL_EVERY;
        loop {
            let chunk: Vec<Record> = it.by_ref().take(64).collect();
            if chunk.is_empty() {
                break;
            }
            let tickets: Vec<_> = chunk
                .into_iter()
                .map(|r| db.ingest_async("bench", r, None).expect("submit"))
                .collect();
            done += tickets.len();
            for t in tickets {
                t.wait().expect("group commit");
            }
            if done >= next_query {
                next_query += 100;
                let out = db
                    .query("SELECT name FROM bench WHERE dose >= 5.0")
                    .expect("query");
                assert!(!out.rows.is_empty(), "query sees ingested rows");
            }
            if observed && done >= next_poll {
                next_poll += POLL_EVERY;
                for sql in POLL_QUERIES {
                    db.query(sql).expect("sys poll");
                }
            }
        }
    });
    assert_eq!(db.stats().records, rows as u64, "every row curated");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    scdb_obs::metrics().set_enabled(true);
    scdb_obs::events().set_enabled(true);
    ms
}

struct RelationCost {
    name: String,
    rows: usize,
    refresh_ns: u64,
    total_ns: u64,
}

/// One `SELECT *` per catalog relation against a warmed-up durable
/// instance (ingest + queries + telemetry ticks + a slow capture), with
/// the refresh cost read out of each query's own profile.
fn measure_refresh(rows: usize) -> Vec<RelationCost> {
    let dir = std::env::temp_dir().join(format!("scdb-e-sys-refresh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::builder()
        .durability(&dir, FsyncPolicy::EveryN(64))
        .ingest_queue(64)
        .telemetry(TelemetryConfig::default().interval(Duration::ZERO))
        .slow_query_threshold(Duration::ZERO)
        .open()
        .expect("open fresh log");
    db.register_source("bench", Some("name"));
    for chunk in (0..rows).collect::<Vec<_>>().chunks(64) {
        let tickets: Vec<_> = chunk
            .iter()
            .map(|&i| {
                db.ingest_async("bench", record(&db, i), None)
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            t.wait().expect("group commit");
        }
    }
    db.sample_now();
    db.query("SELECT name FROM bench WHERE dose >= 5.0")
        .expect("warm user query");

    let catalog = db.query("SELECT * FROM sys.relations").expect("catalog");
    let symbols = db.symbols_ref();
    let names: Vec<String> = catalog
        .rows
        .iter()
        .filter_map(|r| {
            scdb_core::syscat::record_to_json(r, &symbols)
                .get("name")
                .and_then(|v| v.as_str().map(str::to_owned))
        })
        .collect();
    drop(symbols);

    let mut costs = Vec::new();
    for name in names {
        let out = db
            .query(&format!("SELECT * FROM {name}"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let refresh = out
            .profile
            .stage("sys_refresh")
            .expect("sys_refresh stage in profile")
            .duration;
        costs.push(RelationCost {
            name,
            rows: out.rows.len(),
            refresh_ns: refresh.as_nanos() as u64,
            total_ns: out.profile.total.as_nanos() as u64,
        });
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    costs
}

/// The acceptance-criteria journey, exercised under bench conditions: a
/// real acked batch id joins to its full pipeline trace in `sys.events`.
fn journey_check() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("scdb-e-sys-journey-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::builder()
        .durability(&dir, FsyncPolicy::Always)
        .ingest_queue(64)
        .open()
        .expect("open fresh log");
    db.register_source("bench", Some("name"));
    let batch: Vec<Record> = (0..32).map(|i| record(&db, i)).collect();
    let reports = db.ingest_batch("bench", batch).expect("acked batch");
    let batch_id = reports.last().expect("reports").batch_id;
    let out = db
        .query(&format!(
            "SELECT * FROM sys.events WHERE batch_id = {batch_id}"
        ))
        .expect("correlated trace");
    let symbols = db.symbols_ref();
    let kinds: Vec<String> = out
        .rows
        .iter()
        .filter_map(|r| {
            scdb_core::syscat::record_to_json(r, &symbols)
                .get("kind")
                .and_then(|v| v.as_str().map(str::to_owned))
        })
        .collect();
    drop(symbols);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    for kind in [
        "group_commit.flush",
        "wal.append",
        "wal.fsync",
        "ingest.stages",
    ] {
        if !kinds.iter().any(|k| k == kind) {
            return Err(format!(
                "batch {batch_id} journey missing {kind}, got {kinds:?}"
            ));
        }
    }
    Ok(())
}

fn emit(rows: usize, off_ms: f64, on_ms: f64, costs: &[RelationCost]) {
    let overhead = if off_ms <= 0.0 { 0.0 } else { on_ms / off_ms };
    let mut table = Table::new(&["relation", "rows", "refresh_us", "total_us"]);
    for c in costs {
        table.row(&[
            c.name.clone(),
            c.rows.to_string(),
            format!("{:.1}", c.refresh_ns as f64 / 1_000.0),
            format!("{:.1}", c.total_ns as f64 / 1_000.0),
        ]);
    }
    println!("\n{}", table.render());
    let refresh_json: Vec<String> = costs
        .iter()
        .map(|c| {
            format!(
                "\"{}\":{{\"rows\":{},\"refresh_ns\":{},\"total_ns\":{}}}",
                c.name, c.rows, c.refresh_ns, c.total_ns
            )
        })
        .collect();
    println!(
        "BENCH JSON {{\"experiment\":\"syscat\",\"rows\":{rows},\
         \"off_ms\":{off_ms:.2},\"on_ms\":{on_ms:.2},\"overhead\":{overhead:.4},\
         \"relations\":{{{}}}}}",
        refresh_json.join(",")
    );
}

fn smoke() -> i32 {
    // Paired rounds, best round wins: same convention as e_telemetry —
    // a 1-core CI box can stall either arm, so the gate is "some round
    // showed the overhead bound"; a real regression fails every round.
    const ROUNDS: usize = 3;
    let mut ok_overhead = false;
    let mut last = (0.0f64, 0.0f64);
    for round in 0..ROUNDS {
        scdb_obs::metrics().reset();
        let off = run_loop(SMOKE_ROWS, false, &format!("off-{round}"));
        scdb_obs::metrics().reset();
        let on = run_loop(SMOKE_ROWS, true, &format!("on-{round}"));
        let bound = off * 1.05 + 10.0;
        println!("round {round}: off={off:.1} ms on={on:.1} ms bound={bound:.1} ms");
        last = (off, on);
        if on <= bound {
            ok_overhead = true;
            break;
        }
    }
    scdb_obs::metrics().reset();
    let costs = measure_refresh(SMOKE_ROWS);
    emit(SMOKE_ROWS, last.0, last.1, &costs);
    let mut ok = true;
    if !ok_overhead {
        println!("SMOKE FAIL: observed-loop overhead exceeded 5% in every round");
        ok = false;
    } else {
        println!("smoke: full observation + sys polling within 5% (+10 ms slack) OK");
    }
    for c in &costs {
        if c.rows == 0
            && matches!(
                c.name.as_str(),
                "sys.metrics" | "sys.events" | "sys.relations"
            )
        {
            println!("SMOKE FAIL: {} returned no rows after a workload", c.name);
            ok = false;
        }
    }
    if ok {
        println!(
            "smoke: all {} catalog relations answered SELECT * OK",
            costs.len()
        );
    }
    match journey_check() {
        Ok(()) => println!("smoke: correlation-id batch journey reconstructed OK"),
        Err(e) => {
            println!("SMOKE FAIL: {e}");
            ok = false;
        }
    }
    if ok {
        0
    } else {
        1
    }
}

fn main() {
    banner(
        "E-SYS",
        "system catalog (DESIGN.md §13): sys.* refresh cost + self-observation overhead",
        "the catalog materializes from snapshots and rings without core write locks, so \
         polling sys.* during a saturated ingest loop should cost < 5%; per-relation \
         refresh cost comes from each query's own sys_refresh profile stage",
    );
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    scdb_obs::metrics().reset();
    let off = run_loop(FULL_ROWS, false, "off");
    scdb_obs::metrics().reset();
    let on = run_loop(FULL_ROWS, true, "on");
    scdb_obs::metrics().reset();
    let costs = measure_refresh(FULL_ROWS);
    emit(FULL_ROWS, off, on, &costs);
    if let Err(e) = journey_check() {
        println!("journey check FAILED: {e}");
        std::process::exit(1);
    }
    println!("\nshape check: overhead should sit near 1.0 (health-relation refresh reads");
    println!("snapshots, never the write path); sys.events refresh dominates the table (ring");
    println!("snapshot + field explosion), sys.wal is a single row and should be microseconds.");
}
