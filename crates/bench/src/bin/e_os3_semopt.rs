//! E-T1-OS3 — semantic query optimization.
//!
//! A query suite with semantically redundant, collapsible, and
//! unsatisfiable predicates runs with the optimizer fully on, fully off,
//! and with each semantic rewrite individually disabled (the ablation
//! DESIGN.md calls out). The cost metric is atom evaluations + rows
//! scanned — deterministic, machine-independent.

use scdb_bench::{banner, Table};
use scdb_core::Db;
use scdb_query::optimizer::OptimizerConfig;
use scdb_types::{Record, Value};

/// 2000 drug rows with clean attribute names, typed concepts, and a
/// disjointness axiom — everything the rewrite suite needs.
fn build_db() -> Db {
    let db = Db::new();
    db.register_source("drugs", Some("name"));
    let name = db.intern("name");
    let gene = db.intern("gene");
    let dose = db.intern("dose");
    for i in 0..2000i64 {
        let r = Record::from_pairs([
            (name, Value::str(drug_name(i))),
            (gene, Value::str(format!("GEN{:03}", i % 60))),
            (dose, Value::Float(1.0 + (i % 80) as f64 / 10.0)),
        ]);
        db.ingest("drugs", r, None).expect("ingest");
    }
    db.with_ontology(|o| {
        o.subclass("ApprovedDrug", "Drug");
        o.subclass("Drug", "Chemical");
        o.disjoint("Chemical", "Disease");
    });
    // Type a slice of drugs so concept atoms have members.
    for i in 0..200 {
        let concept = if i % 4 == 0 { "ApprovedDrug" } else { "Drug" };
        db.assert_entity_type(&drug_name(i), concept)
            .expect("typed");
    }
    db
}

fn main() {
    banner(
        "E-T1-OS3",
        "Table 1 row OS.3 (semantic query optimization)",
        "subsumption collapse, disjointness unsat-pruning, and range merging cut execution cost",
    );
    let db = build_db();

    let reorder_sql = format!(
        "SELECT name FROM drugs WHERE dose >= 1.0 AND name = '{}'",
        drug_name(7)
    );
    let suite = [
        (
            "redundant subsumption",
            "SELECT name FROM drugs WHERE name IS 'ApprovedDrug' AND name IS 'Drug' AND dose > 2.0",
        ),
        (
            "unsat disjointness",
            "SELECT name FROM drugs WHERE name IS 'Drug' AND name IS 'Disease'",
        ),
        (
            "contradictory range",
            "SELECT name FROM drugs WHERE dose > 6.0 AND dose < 3.0",
        ),
        (
            "mergeable ranges",
            "SELECT name FROM drugs WHERE dose > 2.0 AND dose > 5.0 AND dose < 9.0 AND dose < 8.0",
        ),
        ("selectivity reorder", reorder_sql.as_str()),
    ];
    let configs: [(&str, OptimizerConfig); 5] = [
        ("optimized", OptimizerConfig::default()),
        ("naive", OptimizerConfig::disabled()),
        (
            "no-unsat",
            OptimizerConfig {
                detect_unsat: false,
                merge_ranges: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "no-collapse",
            OptimizerConfig {
                collapse_subsumed: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "no-reorder",
            OptimizerConfig {
                reorder_by_selectivity: false,
                ..OptimizerConfig::default()
            },
        ),
    ];

    let mut t = Table::new(&[
        "query",
        "config",
        "rows",
        "scanned",
        "atom_evals",
        "rewrites applied",
    ]);
    for (qname, sql) in suite {
        for (cname, ocfg) in &configs {
            db.set_optimizer_config(*ocfg);
            let out = db.query(sql).expect(sql);
            t.row(&[
                qname.to_string(),
                cname.to_string(),
                out.rows.len().to_string(),
                out.stats.rows_scanned.to_string(),
                out.stats.atom_evals.to_string(),
                out.plan.rewrites.len().to_string(),
            ]);
        }
        println!();
    }
    println!("{}", t.render());
    println!("shape check: unsat queries scan 0 rows only when detect_unsat is on; collapse and");
    println!("range-merge cut atom_evals vs naive; reorder puts the selective equality first.");
}

/// Names for synthetic drugs that are far apart in edit space (hash
/// prefix), so fuzzy identity matching does not merge distinct serials.
fn drug_name(i: i64) -> String {
    let tag = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
    format!("{tag:05x}-drug-{i}")
}
