//! Shared harness utilities for the `scdb` experiment suite.
//!
//! Every experiment binary (see `src/bin/e_*.rs`) regenerates one
//! table/figure-shaped report from DESIGN.md §4. This crate holds the
//! pieces they share: fixed-width table rendering, deterministic timing
//! helpers, and corpus-loading shortcuts so each binary stays focused on
//! its experiment.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use scdb_core::Db;
use scdb_datagen::life_science::{scaled, ScaledConfig};
use scdb_datagen::SyntheticSource;

/// A fixed-width text table builder for experiment reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Time a closure, returning `(result, milliseconds)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

/// Load a scaled life-science corpus into a fresh [`Db`], returning the
/// database handle and the generated sources (with ground truth).
pub fn curated_db(config: &ScaledConfig) -> (Db, Vec<SyntheticSource>) {
    let db = Db::new();
    let sources = db.with_symbols(|symbols| scaled(config, symbols));
    for s in &sources {
        let name = s.name.clone();
        db.register_source(&name, None);
        for rec in &s.records {
            db.ingest(&name, rec.record.clone(), rec.text.as_deref())
                .expect("ingest");
        }
    }
    db.discover_links().expect("link discovery");
    (db, sources)
}

/// Print an experiment banner.
pub fn banner(id: &str, anchor: &str, claim: &str) {
    println!("== {id} — {anchor}");
    println!("   paper claim: {claim}");
    println!();
}

/// Drive one [`scdb_datagen::crash`] schedule op against a [`Db`] handle
/// (durable or volatile). Shared by the durability crash matrix, the
/// crash-recovery property test, and the E-REC recovery experiment, so
/// every harness interprets a schedule identically.
pub fn apply_curation_op(
    db: &Db,
    op: &scdb_datagen::crash::CurationOp,
) -> Result<(), scdb_core::CoreError> {
    use scdb_datagen::crash::CurationOp;
    use scdb_types::{Record, Value};
    match op {
        CurationOp::Register {
            source,
            identity_attr,
        } => db
            .try_register_source(source, identity_attr.as_deref())
            .map(|_| ()),
        CurationOp::Ingest {
            source,
            attrs,
            text,
        } => {
            let pairs: Vec<_> = attrs
                .iter()
                .map(|(name, value)| (db.intern(name), value.clone()))
                .collect();
            db.ingest(source, Record::from_pairs(pairs), text.as_deref())
                .map(|_| ())
        }
        CurationOp::IngestBatch { source, rows } => {
            let records: Vec<Record> = rows
                .iter()
                .map(|attrs| {
                    Record::from_pairs(
                        attrs
                            .iter()
                            .map(|(name, value)| (db.intern(name), value.clone())),
                    )
                })
                .collect();
            db.ingest_batch(source, records).map(|_| ())
        }
        CurationOp::DiscoverLinks => db.discover_links().map(|_| ()),
        CurationOp::KvPut { key, value } => {
            let mut txn = db.kv_begin();
            txn.write(*key, Value::Int(*value))
                .map_err(scdb_core::CoreError::from)?;
            db.kv_commit(&mut txn).map(|_| ())
        }
        CurationOp::Enrich { key, value } => db.kv_enrich(*key, Value::Float(*value)).map(|_| ()),
        CurationOp::Retract { key } => db.kv_retract(*key).map(|_| ()),
        CurationOp::Checkpoint => {
            // Volatile reference databases have no log to checkpoint.
            if db.is_durable() {
                db.checkpoint()?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn time_ms_returns_result() {
        let (v, ms) = time_ms(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn curated_db_loads() {
        let cfg = ScaledConfig {
            n_drugs: 20,
            n_sources: 2,
            ..Default::default()
        };
        let (db, sources) = curated_db(&cfg);
        assert_eq!(db.source_count(), 2);
        let total: usize = sources.iter().map(|s| s.len()).sum();
        assert_eq!(db.stats().records as usize, total);
        assert!(db.entity_count() > 0);
    }
}
