//! Criterion benches for the query layer (FS.5): parse, plan+optimize,
//! and end-to-end execution including semantic atoms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scdb_core::Db;
use scdb_query::optimizer::{Optimizer, OptimizerConfig};
use scdb_query::parse;
use scdb_query::plan::LogicalPlan;
use scdb_types::{Record, Value};

const SQL: &str = "SELECT name, dose FROM drugs \
    WHERE dose CLOSE TO 5.0 WITHIN 0.5 AND name != 'placebo' \
      AND dose > 1.0 AND dose > 2.0 AND dose < 9.0 LIMIT 50";

fn curated() -> Db {
    let db = Db::new();
    db.register_source("drugs", Some("name"));
    let name = db.intern("name");
    let dose = db.intern("dose");
    for i in 0..5000i64 {
        let r = Record::from_pairs([
            (name, Value::str(drug_name(i))),
            (dose, Value::Float(1.0 + (i % 90) as f64 / 10.0)),
        ]);
        db.ingest("drugs", r, None).expect("ingest");
    }
    db.with_ontology(|o| o.subclass("ApprovedDrug", "Drug"));
    for i in 0..100 {
        db.assert_entity_type(&drug_name(i), "ApprovedDrug")
            .expect("typed");
    }
    db
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("query/parse", |b| b.iter(|| black_box(parse(SQL).unwrap())));
}

fn bench_optimize(c: &mut Criterion) {
    let q = parse(SQL).unwrap();
    let opt = Optimizer::new(OptimizerConfig::default());
    c.bench_function("query/optimize", |b| {
        b.iter(|| {
            let plan = LogicalPlan::from_query(&q);
            black_box(opt.optimize(plan, None, None, 5000))
        })
    });
}

fn bench_execute(c: &mut Criterion) {
    let db = curated();
    c.bench_function("query/execute_5k_rows", |b| {
        b.iter(|| black_box(db.query(SQL).unwrap().rows.len()))
    });
    c.bench_function("query/execute_semantic_atom_5k", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT name FROM drugs WHERE name IS 'Drug' LIMIT 20")
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_parse, bench_optimize, bench_execute);
criterion_main!(benches);

/// Names for synthetic drugs that are far apart in edit space (hash
/// prefix), so fuzzy identity matching does not merge distinct serials.
fn drug_name(i: i64) -> String {
    let tag = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
    format!("{tag:05x}-drug-{i}")
}
