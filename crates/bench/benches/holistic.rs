//! Criterion bench for E-F1: full holistic-model construction (ingest +
//! ER + link discovery + saturation) at fixed scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scdb_bench::curated_db;
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::{figure2_ontology, ScaledConfig};

fn bench_pipeline(c: &mut Criterion) {
    let cfg = ScaledConfig {
        n_drugs: 100,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::moderate(),
        seed: 4,
        ..Default::default()
    };
    let mut group = c.benchmark_group("holistic/e_f1");
    group.sample_size(10);
    group.bench_function("curate_100_drugs_3_sources", |b| {
        b.iter(|| {
            let (db, _) = curated_db(&cfg);
            db.set_ontology(figure2_ontology());
            db.reason().expect("saturation");
            black_box(db.stats().records)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
