//! Criterion benches for FS.3/FS.10: possible-world enumeration, evidence
//! algebra, and parallel-world justified answers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scdb_types::{ConceptId, Record, SymbolTable, Value, WorldId};
use scdb_uncertain::{
    CTable, Condition, Evidence, ParallelWorld, ParallelWorldSet, PossibleWorlds, Variable,
};
use std::collections::HashMap;

fn bench_possible_worlds(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let a = syms.intern("a");
    let mut t = CTable::new();
    for v in 0..10u32 {
        t.declare(Variable(v), vec![Value::Int(0), Value::Int(1)]);
        t.add(
            Record::from_pairs([(a, Value::Int(i64::from(v)))]),
            Condition::Eq(Variable(v), Value::Int(1)),
        );
    }
    c.bench_function("uncertain/enumerate_1024_worlds", |b| {
        b.iter(|| {
            let pw = PossibleWorlds::enumerate(&t, &HashMap::new(), 2048).unwrap();
            black_box(pw.len())
        })
    });
}

fn bench_evidence(c: &mut Criterion) {
    c.bench_function("uncertain/fs3_evidence_fuse_1k", |b| {
        b.iter(|| {
            let mut acc = Evidence::UNKNOWN;
            for i in 0..1000 {
                let e = Evidence::from_probability(f64::from(i % 100) / 100.0);
                acc = Evidence::fuse(&[(acc, 1.0), (e, 1.0)]);
            }
            black_box(acc.support())
        })
    });
}

fn bench_parallel_worlds(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let dose = syms.intern("dose");
    let mut set = ParallelWorldSet::new();
    for w in 0..20u32 {
        set.add(ParallelWorld {
            id: WorldId(w),
            premises: vec![ConceptId(w)],
            tuples: (0..500)
                .map(|i| Record::from_pairs([(dose, Value::Float(f64::from(i % 80) / 10.0))]))
                .collect(),
        });
    }
    let degree = move |r: &Record| {
        r.get(dose)
            .and_then(|v| v.as_float())
            .map(|x| (1.0 - (x - 5.0f64).abs() / 0.5).max(0.0))
            .unwrap_or(0.0)
    };
    c.bench_function("uncertain/fs10_justified_20x500", |b| {
        b.iter(|| black_box(set.justified(&degree, 0.5, |_, _| true).justified))
    });
}

criterion_group!(
    benches,
    bench_possible_worlds,
    bench_evidence,
    bench_parallel_worlds
);
criterion_main!(benches);
