//! Criterion benches for the instance layer (OS.1 substrate):
//! ingest throughput, clustered-vs-unclustered replay, column encodings.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_datagen::workload::{co_access, CoAccessConfig};
use scdb_storage::cluster::{ClusterStrategy, ClusteredLayout, CoAccessTracker};
use scdb_storage::column::ColumnSegment;
use scdb_storage::page::PageConfig;
use scdb_storage::RowStore;
use scdb_types::{Record, SourceId, SymbolTable, Value};

fn bench_ingest(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let name = syms.intern("name");
    let dose = syms.intern("dose");
    c.bench_function("storage/append_10k", |b| {
        b.iter(|| {
            let mut store = RowStore::new(SourceId(0));
            for i in 0..10_000i64 {
                store.append(Record::from_pairs([
                    (name, Value::str("drug")),
                    (dose, Value::Int(i)),
                ]));
            }
            black_box(store.len())
        })
    });
}

fn bench_cluster_replay(c: &mut Criterion) {
    let w = co_access(&CoAccessConfig {
        n_records: 10_000,
        n_groups: 300,
        group_size: 8,
        n_accesses: 3_000,
        skew: 0.9,
        noise: 0.05,
        seed: 1,
    });
    let pages = PageConfig::new(16);
    let mut tracker = CoAccessTracker::default();
    for g in &w.accesses {
        tracker.observe(g);
    }
    let mut group = c.benchmark_group("storage/os1_replay");
    for strategy in [
        ClusterStrategy::Identity,
        ClusterStrategy::FrequencyOrder,
        ClusterStrategy::CoAccessGreedy,
    ] {
        let layout = ClusteredLayout::build(&tracker, 10_000, pages, strategy);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &layout,
            |b, layout| b.iter(|| black_box(layout.replay(&w.accesses, pages))),
        );
    }
    group.finish();

    c.bench_function("storage/os1_build_greedy_layout", |b| {
        b.iter(|| {
            black_box(ClusteredLayout::build(
                &tracker,
                10_000,
                pages,
                ClusterStrategy::CoAccessGreedy,
            ))
        })
    });
}

fn bench_column_encodings(c: &mut Criterion) {
    let sorted: Vec<Value> = (0..50_000)
        .map(|i| Value::str(format!("cat-{:02}", i / 2000)))
        .collect();
    let ints: Vec<Value> = (0..50_000).map(Value::Int).collect();
    let mut group = c.benchmark_group("storage/column_encode");
    group.bench_function("rle_candidate_50k", |b| {
        b.iter(|| black_box(ColumnSegment::build(&sorted).unwrap().1))
    });
    group.bench_function("delta_candidate_50k", |b| {
        b.iter(|| black_box(ColumnSegment::build(&ints).unwrap().1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_cluster_replay,
    bench_column_encodings
);
criterion_main!(benches);
