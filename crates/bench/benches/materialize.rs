//! Criterion benches for FS.9: materialization-cache lookup/insert and the
//! cached vs uncached exploration round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scdb_query::materialize::{DiscoveredFact, MaterializationCache};
use scdb_types::EntityId;

fn bench_cache_ops(c: &mut Criterion) {
    c.bench_function("materialize/fs9_insert_lookup", |b| {
        b.iter(|| {
            let mut cache = MaterializationCache::new(256);
            for i in 0..200u64 {
                cache.materialize(
                    &format!("ctx-{}", i % 64),
                    vec![DiscoveredFact {
                        subject: EntityId(i),
                        role: "r".into(),
                        object: EntityId(i + 1),
                        richness: 0.5,
                    }],
                );
            }
            let mut hits = 0;
            for i in 0..200u64 {
                if cache.lookup(&format!("ctx-{}", i % 64)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench_cache_ops);
criterion_main!(benches);
