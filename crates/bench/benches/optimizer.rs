//! Criterion benches for OS.3: execution cost with the semantic optimizer
//! on vs off, per rewrite class.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_core::Db;
use scdb_query::optimizer::OptimizerConfig;
use scdb_types::{Record, Value};

fn curated() -> Db {
    let db = Db::new();
    db.register_source("drugs", Some("name"));
    let name = db.intern("name");
    let dose = db.intern("dose");
    for i in 0..10_000i64 {
        let r = Record::from_pairs([
            (name, Value::str(drug_name(i))),
            (dose, Value::Float(1.0 + (i % 90) as f64 / 10.0)),
        ]);
        db.ingest("drugs", r, None).expect("ingest");
    }
    db.with_ontology(|o| {
        o.subclass("ApprovedDrug", "Drug");
        o.subclass("Drug", "Chemical");
        o.disjoint("Chemical", "Disease");
    });
    for i in 0..50 {
        db.assert_entity_type(&drug_name(i), "ApprovedDrug")
            .expect("typed");
    }
    db
}

fn bench_rewrites(c: &mut Criterion) {
    let db = curated();
    let reorder_sql = format!(
        "SELECT name FROM drugs WHERE dose >= 1.0 AND name = '{}'",
        drug_name(42)
    );
    let suite = [
        (
            "unsat_disjoint",
            "SELECT name FROM drugs WHERE name IS 'Drug' AND name IS 'Disease'",
        ),
        (
            "unsat_range",
            "SELECT name FROM drugs WHERE dose > 8.0 AND dose < 2.0",
        ),
        (
            "range_merge",
            "SELECT name FROM drugs WHERE dose > 1.0 AND dose > 5.0 AND dose < 9.5 AND dose < 9.0",
        ),
        ("reorder", reorder_sql.as_str()),
    ];
    let mut group = c.benchmark_group("optimizer/os3");
    group.sample_size(20);
    for (qname, sql) in suite {
        for (cname, cfg) in [
            ("on", OptimizerConfig::default()),
            ("off", OptimizerConfig::disabled()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(qname, cname),
                &(sql, cfg),
                |b, (sql, cfg)| {
                    b.iter(|| {
                        db.set_optimizer_config(*cfg);
                        black_box(db.query(sql).unwrap().stats.atom_evals)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rewrites);
criterion_main!(benches);

/// Names for synthetic drugs that are far apart in edit space (hash
/// prefix), so fuzzy identity matching does not merge distinct serials.
fn drug_name(i: i64) -> String {
    let tag = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
    format!("{tag:05x}-drug-{i}")
}
