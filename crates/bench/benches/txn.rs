//! Criterion benches for FS.11: transaction throughput under snapshot vs
//! relaxed enrichment isolation, and WAL encode/decode.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_txn::{EnrichedDb, IsolationMode, LogRecord, Wal};
use scdb_types::Value;

fn bench_read_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn/fs11_reads");
    for mode in [IsolationMode::Snapshot, IsolationMode::RelaxedEnrichment] {
        let db = EnrichedDb::new(mode);
        for k in 0..1000u64 {
            db.enrich(k, Value::Int(k as i64));
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &db,
            |b, db| {
                b.iter(|| {
                    let mut t = db.begin();
                    let mut acc = 0i64;
                    for k in 0..1000u64 {
                        if let Some(Value::Int(v)) = db.read(&mut t, k) {
                            acc += v;
                        }
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let db = EnrichedDb::new(IsolationMode::Snapshot);
    c.bench_function("txn/commit_10_writes", |b| {
        b.iter(|| {
            let mut t = db.begin();
            for k in 0..10u64 {
                t.write(k, Value::Int(1)).unwrap();
            }
            black_box(db.txn_manager().commit(&mut t).unwrap())
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let mut wal = Wal::new();
    for i in 0..10_000u64 {
        wal.append(LogRecord::Write {
            txn: i,
            key: i,
            value: Some(Value::Int(i as i64)),
        });
        wal.append(LogRecord::Commit { txn: i });
    }
    c.bench_function("txn/wal_encode_10k", |b| {
        b.iter(|| black_box(wal.encode().len()))
    });
    let bytes = wal.encode();
    c.bench_function("txn/wal_decode_10k", |b| {
        b.iter(|| black_box(Wal::decode(bytes.clone()).len()))
    });
}

criterion_group!(benches, bench_read_modes, bench_commit, bench_wal);
criterion_main!(benches);
