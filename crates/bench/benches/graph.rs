//! Criterion benches for the relation layer (OS.2): CSR compilation under
//! each vertex ordering and k-hop traversal per representation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_graph::csr::CsrSnapshot;
use scdb_graph::graph::test_provenance;
use scdb_graph::order::VertexOrdering;
use scdb_graph::traverse::{khop_csr, khop_graph, EdgeIndexBaseline};
use scdb_graph::PropertyGraph;
use scdb_types::{EntityId, SymbolTable};

fn community_graph(n_communities: u64, size: u64) -> PropertyGraph {
    let mut syms = SymbolTable::new();
    let role = syms.intern("r");
    let mut g = PropertyGraph::new();
    let id = |c: u64, j: u64| EntityId(j * n_communities + c);
    for i in 0..n_communities * size {
        g.ensure_node(EntityId(i));
    }
    for c in 0..n_communities {
        for j in 0..size {
            let _ = g.add_edge(id(c, j), id(c, (j + 1) % size), role, test_provenance(0, 0));
            let _ = g.add_edge(id(c, j), id(c, (j + 7) % size), role, test_provenance(0, 0));
        }
    }
    g
}

fn bench_compile(c: &mut Criterion) {
    let g = community_graph(20, 250);
    let mut group = c.benchmark_group("graph/os2_compile_5k");
    for ordering in [
        VertexOrdering::Original,
        VertexOrdering::DegreeDescending,
        VertexOrdering::Bfs,
        VertexOrdering::ReverseCuthillMcKee,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ordering:?}")),
            &ordering,
            |b, &o| b.iter(|| black_box(CsrSnapshot::compile(&g, o)).vertex_count()),
        );
    }
    group.finish();
}

fn bench_khop(c: &mut Criterion) {
    let g = community_graph(20, 250);
    let csr_bfs = CsrSnapshot::compile(&g, VertexOrdering::Bfs);
    let csr_orig = CsrSnapshot::compile(&g, VertexOrdering::Original);
    let index = EdgeIndexBaseline::build(&g, 256);
    let seeds: Vec<EntityId> = (0..10).map(EntityId).collect();

    let mut group = c.benchmark_group("graph/os2_khop3");
    group.bench_function("hash_adjacency", |b| {
        b.iter(|| {
            for &s in &seeds {
                black_box(khop_graph(&g, s, 3, None).reached.len());
            }
        })
    });
    group.bench_function("csr_bfs_order", |b| {
        b.iter(|| {
            for &s in &seeds {
                black_box(khop_csr(&csr_bfs, s, 3, None).map(|r| r.reached.len()));
            }
        })
    });
    group.bench_function("csr_original_order", |b| {
        b.iter(|| {
            for &s in &seeds {
                black_box(khop_csr(&csr_orig, s, 3, None).map(|r| r.reached.len()));
            }
        })
    });
    group.bench_function("btree_index_baseline", |b| {
        b.iter(|| {
            for &s in &seeds {
                black_box(index.khop(s, 3, None).reached.len());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_khop);
criterion_main!(benches);
