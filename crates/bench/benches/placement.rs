//! Criterion benches for OS.4: placement computation and evaluation per
//! policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_datagen::workload::{co_access, CoAccessConfig};
use scdb_placement::{compute_placement, evaluate, ClusterConfig, PlacementPolicy};

fn bench_policies(c: &mut Criterion) {
    let w = co_access(&CoAccessConfig {
        n_records: 10_000,
        n_groups: 400,
        group_size: 6,
        n_accesses: 4_000,
        skew: 0.8,
        noise: 0.1,
        seed: 3,
    });
    let cfg = ClusterConfig {
        n_nodes: 16,
        ..Default::default()
    };
    let mut group = c.benchmark_group("placement/os4_compute");
    for policy in [
        PlacementPolicy::Hash,
        PlacementPolicy::Range,
        PlacementPolicy::Affinity,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let placement = compute_placement(p, 10_000, 16, &w.accesses, usize::MAX, 0.0);
                    black_box(evaluate(&placement, &w.accesses, &cfg).remote_ratio)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
