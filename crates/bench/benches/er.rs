//! Criterion benches for entity resolution (FS.1): per-record resolve
//! latency under each blocking strategy and similarity-metric costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_datagen::corrupt::CorruptionConfig;
use scdb_datagen::life_science::{scaled, ScaledConfig};
use scdb_er::blocking::BlockingStrategy;
use scdb_er::incremental::{IncrementalResolver, ResolverConfig};
use scdb_er::similarity::{jaro_winkler, levenshtein, string_similarity, token_jaccard};
use scdb_types::{Record, RecordId, SymbolTable};

fn corpus() -> (SymbolTable, Vec<(RecordId, Record)>) {
    let cfg = ScaledConfig {
        n_drugs: 300,
        n_sources: 3,
        duplicate_rate: 0.5,
        corruption: CorruptionConfig::moderate(),
        seed: 2,
        ..Default::default()
    };
    let mut symbols = SymbolTable::new();
    let sources = scaled(&cfg, &mut symbols);
    let mut records = Vec::new();
    for src in &sources {
        for (off, rec) in src.records.iter().enumerate() {
            records.push((RecordId::new(src.id, off as u64), rec.record.clone()));
        }
    }
    (symbols, records)
}

fn bench_resolver(c: &mut Criterion) {
    let (symbols, records) = corpus();
    let mut group = c.benchmark_group("er/fs1_resolve_stream");
    group.sample_size(10);
    for (name, blocking) in [
        ("standard", BlockingStrategy::StandardKeys { prefix_len: 4 }),
        ("lsh", BlockingStrategy::MinHashLsh { bands: 8, rows: 2 }),
        ("none", BlockingStrategy::None),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &blocking, |b, &bk| {
            b.iter(|| {
                let cfg = ResolverConfig {
                    blocking: bk,
                    realign_interval: 64,
                    ..Default::default()
                };
                let mut r = IncrementalResolver::new(cfg);
                for (rid, rec) in &records {
                    r.add(*rid, rec.clone(), &symbols);
                }
                black_box(r.comparisons())
            })
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let pairs = [
        ("Methotrexate", "methotrexate sodium"),
        ("Warfarin", "Acetaminophen"),
        ("Rheumatoid Arthritis", "Arthritis, Rheumatoid"),
    ];
    let mut group = c.benchmark_group("er/similarity");
    group.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (a, x) in pairs {
                black_box(levenshtein(a, x));
            }
        })
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (a, x) in pairs {
                black_box(jaro_winkler(a, x));
            }
        })
    });
    group.bench_function("token_jaccard", |b| {
        b.iter(|| {
            for (a, x) in pairs {
                black_box(token_jaccard(a, x));
            }
        })
    });
    group.bench_function("blended", |b| {
        b.iter(|| {
            for (a, x) in pairs {
                black_box(string_similarity(a, x));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resolver, bench_similarity);
criterion_main!(benches);
