//! Criterion benches for FS.6: random-walk discovery cost vs steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scdb_graph::graph::test_provenance;
use scdb_graph::PropertyGraph;
use scdb_query::refine::{discover, RefineConfig};
use scdb_types::{EntityId, SymbolTable};

fn graph(n: u64) -> PropertyGraph {
    let mut syms = SymbolTable::new();
    let role = syms.intern("r");
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.ensure_node(EntityId(i));
    }
    for i in 0..n {
        let _ = g.add_edge(
            EntityId(i),
            EntityId((i * 7 + 1) % n),
            role,
            test_provenance(0, 0),
        );
        let _ = g.add_edge(
            EntityId(i),
            EntityId((i + 13) % n),
            role,
            test_provenance(0, 0),
        );
    }
    g
}

fn bench_walk(c: &mut Criterion) {
    let g = graph(10_000);
    let mut group = c.benchmark_group("refine/fs6_walk");
    for steps in [1_000usize, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            let cfg = RefineConfig {
                steps,
                ..Default::default()
            };
            b.iter(|| black_box(discover(&g, &[EntityId(0)], &cfg).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);
