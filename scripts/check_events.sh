#!/usr/bin/env bash
# Validate a flight-recorder JSONL dump (run_all_experiments
# --events-jsonl): every line parses as a JSON object, `seq` is
# strictly increasing down the file, every `subsystem` tag belongs to
# the documented vocabulary (DESIGN.md §7), and every `kind` belongs to
# that subsystem's known event kinds — a new emission site must be
# added here (and to DESIGN.md) before it ships.
#
# Usage: scripts/check_events.sh <events.jsonl>
set -euo pipefail

if [[ $# -ne 1 ]]; then
    echo "usage: $0 <events.jsonl>" >&2
    exit 2
fi

python3 - "$1" <<'PY'
import json
import sys

KNOWN_SUBSYSTEMS = {"core", "txn", "query", "storage", "er", "obs", "lock"}

# Per-subsystem event kinds (keep in sync with the emission sites; grep
# for `scdb_obs::event(` / `record_with_message(`).
KNOWN_KINDS = {
    "core": {
        "ingest",
        "ingest.stages",
        "recovery.complete",
        "checkpoint.serialize",
        "checkpoint.complete",
        "index.create",
        "index.drop",
        "index.advise",
        "mode.degrade",
        "mode.recover",
        "thread.panic",
        "thread.restart",
        "shard.map",
        "shard.recovery",
        "shard.seal",
    },
    "txn": {
        "recovery.snapshot",
        "recovery.snapshot_drop",
        "recovery.segment",
        "recovery.truncated",
        "recovery.scan",
        "group_commit.flush",
        "wal.append",
        "wal.fsync",
        "segment.seal",
        "segment.rotate",
        "segment.prune",
        "checkpoint.write",
        "checkpoint.sync",
        "checkpoint.rename",
        "checkpoint.prune",
        "fault.injected",
    },
    "query": {"scan.parallel", "slow", "index.scan"},
    "storage": {"cluster.build"},
    "er": {"merge"},
    "obs": {"warn", "watch.fired", "watch.resolved"},
    "lock": {"contended"},
}

path = sys.argv[1]
prev_seq = -1
n = 0
errors = []
with open(path, encoding="utf-8") as fh:
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            errors.append(f"line {lineno}: empty line")
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not valid JSON: {e}")
            continue
        if not isinstance(ev, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        seq = ev.get("seq")
        if not isinstance(seq, int):
            errors.append(f"line {lineno}: missing integer 'seq'")
        elif seq <= prev_seq:
            errors.append(
                f"line {lineno}: seq {seq} not strictly greater than {prev_seq}"
            )
        else:
            prev_seq = seq
        subsystem = ev.get("subsystem")
        if subsystem not in KNOWN_SUBSYSTEMS:
            errors.append(f"line {lineno}: unknown subsystem {subsystem!r}")
        kind = ev.get("kind")
        if not isinstance(kind, str) or not kind:
            errors.append(f"line {lineno}: missing or empty 'kind'")
        elif subsystem in KNOWN_KINDS and kind not in KNOWN_KINDS[subsystem]:
            errors.append(
                f"line {lineno}: unknown kind {kind!r} for subsystem {subsystem!r}"
            )
        # Correlation-id contract: the batch-scoped WAL events only
        # exist while a batch context is set, so they must carry a
        # positive batch_id; any batch_id anywhere must be a
        # non-negative integer (it joins against sys.events).
        fields = ev.get("fields")
        batch_id = fields.get("batch_id") if isinstance(fields, dict) else None
        if batch_id is not None and (not isinstance(batch_id, int) or batch_id < 0):
            errors.append(f"line {lineno}: malformed batch_id {batch_id!r}")
        if kind in ("wal.append", "wal.fsync") and not (
            isinstance(batch_id, int) and batch_id > 0
        ):
            errors.append(
                f"line {lineno}: {kind} without a positive batch_id: {batch_id!r}"
            )
        if kind == "group_commit.flush" and not isinstance(batch_id, int):
            errors.append(f"line {lineno}: group_commit.flush missing batch_id")
        n += 1

if n == 0:
    errors.append("no events in dump")
for e in errors[:20]:
    print(f"check_events: {e}", file=sys.stderr)
if errors:
    print(f"check_events: {len(errors)} problem(s) in {n} events", file=sys.stderr)
    sys.exit(1)
print(f"check_events: {n} events ok (seq {prev_seq} max)")
PY
