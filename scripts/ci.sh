#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests — all offline (no registry
# access; every external crate is a workspace shim under compat/).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test -q"
cargo test -q --offline

echo "== crash matrix (release)"
cargo test -q --offline --release -p scdb-bench --test durability_crash_matrix

echo "== cargo test -q --release"
cargo test -q --offline --release

echo "== group-commit ingest smoke (release)"
# Asserts the fsync amortization (>= 8x fewer fsyncs/row at batch 64
# under FsyncPolicy::Always) and the range-sharded write path: with four
# concurrent writers, 4 shards must beat 1 shard on instance-lock wait
# p99 while the 1-shard baseline actually contends — telemetry counts
# and lock-wait histograms, not wall clock, stable on 1-core boxes.
cargo run -q --offline --release -p scdb-bench --bin e_ingest_throughput -- --smoke

echo "== secondary index smoke (release)"
# Asserts the statistics-driven access path: a selective point query
# takes the index scan, returns rows identical to the full scan, and
# touches >= 100x fewer rows — count checks, stable on 1-core boxes.
cargo run -q --offline --release -p scdb-bench --bin e_index -- --smoke

echo "== telemetry pipeline smoke (release)"
# Asserts the enabled-sampler overhead stays within 5% (+ fixed slack)
# of the telemetry-off loop, that samples/watches actually fired, and
# that all five commit-stage histograms were observed. Also writes the
# Prometheus exposition to target/experiments/telemetry.prom.
cargo run -q --offline --release -p scdb-bench --bin e_telemetry -- --smoke

echo "== storage-fault resilience smoke (release)"
# Asserts the degraded-mode contract under an injected persistent fsync
# failure: zero failed reads while degraded, every write fails fast
# with CoreError::Degraded (no hung tickets), and the node returns to
# DbMode::Normal without reopening once the fault clears; plus the
# supervisor contract for a committer panic mid-batch.
cargo run -q --offline --release -p scdb-bench --bin e_faults -- --smoke

echo "== system catalog smoke (release)"
# Asserts the fully-observed loop (metrics + events + monitoring-cadence
# sys.* polling) stays within 5% (+ fixed slack) of the unobserved loop,
# that every relation listed in sys.relations answers SELECT *, and that
# a real acked batch's correlation id joins to its complete
# flush -> append -> fsync -> apply journey in sys.events.
cargo run -q --offline --release -p scdb-bench --bin e_syscat -- --smoke

echo "== prometheus exposition format lint"
# Every non-comment line must be `name[{labels}] value` with an
# scdb_-prefixed metric name and a numeric value, and every metric
# family must announce `# HELP` then `# TYPE` before its samples.
python3 - target/experiments/telemetry.prom <<'PY'
import re
import sys

path = sys.argv[1]
name_re = re.compile(r"^scdb_[a-zA-Z0-9_]+(\{[^}]*\})?$")
n = 0
errors = []
cur_help = None
cur_type = None
with open(path, encoding="utf-8") as fh:
    for lineno, line in enumerate(fh, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):].split(" ", 1)
            cur_help = rest[0]
            cur_type = None
            if len(rest) < 2 or not rest[1]:
                errors.append(f"line {lineno}: HELP without help text")
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):].split(" ", 1)
            if rest[0] != cur_help:
                errors.append(
                    f"line {lineno}: TYPE {rest[0]!r} does not follow its HELP"
                )
            cur_type = rest[0]
            continue
        if line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            errors.append(f"line {lineno}: not 'name value': {line!r}")
            continue
        name, value = parts
        if not name_re.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        bare = name.split("{", 1)[0]
        fam = cur_type or ""
        if bare != fam and bare not in (f"{fam}_sum", f"{fam}_count"):
            errors.append(
                f"line {lineno}: sample {bare!r} outside its announced family {fam!r}"
            )
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
        n += 1

if n == 0:
    errors.append("no samples in exposition")
for e in errors[:20]:
    print(f"check_prom: {e}", file=sys.stderr)
if errors:
    print(f"check_prom: {len(errors)} problem(s) in {n} samples", file=sys.stderr)
    sys.exit(1)
print(f"check_prom: {n} samples ok")
PY

echo "== flight recorder event dump (release)"
events_jsonl="target/experiments/events.jsonl"
mkdir -p target/experiments
cargo run -q --offline --release -p scdb-bench --bin run_all_experiments -- \
    --events-jsonl "$events_jsonl"
scripts/check_events.sh "$events_jsonl"

echo "== ci green"
