#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests — all offline (no registry
# access; every external crate is a workspace shim under compat/).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test -q"
cargo test -q --offline

echo "== crash matrix (release)"
cargo test -q --offline --release -p scdb-bench --test durability_crash_matrix

echo "== cargo test -q --release"
cargo test -q --offline --release

echo "== group-commit ingest smoke (release)"
# Asserts the fsync amortization (>= 8x fewer fsyncs/row at batch 64
# under FsyncPolicy::Always) — a count check, stable on 1-core boxes.
cargo run -q --offline --release -p scdb-bench --bin e_ingest_throughput -- --smoke

echo "== flight recorder event dump (release)"
events_jsonl="target/experiments/events.jsonl"
mkdir -p target/experiments
cargo run -q --offline --release -p scdb-bench --bin run_all_experiments -- \
    --events-jsonl "$events_jsonl"
scripts/check_events.sh "$events_jsonl"

echo "== ci green"
