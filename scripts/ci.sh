#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests — all offline (no registry
# access; every external crate is a workspace shim under compat/).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test -q"
cargo test -q --offline

echo "== crash matrix (release)"
cargo test -q --offline --release -p scdb-bench --test durability_crash_matrix

echo "== cargo test -q --release"
cargo test -q --offline --release

echo "== group-commit ingest smoke (release)"
# Asserts the fsync amortization (>= 8x fewer fsyncs/row at batch 64
# under FsyncPolicy::Always) — a count check, stable on 1-core boxes.
cargo run -q --offline --release -p scdb-bench --bin e_ingest_throughput -- --smoke

echo "== secondary index smoke (release)"
# Asserts the statistics-driven access path: a selective point query
# takes the index scan, returns rows identical to the full scan, and
# touches >= 100x fewer rows — count checks, stable on 1-core boxes.
cargo run -q --offline --release -p scdb-bench --bin e_index -- --smoke

echo "== telemetry pipeline smoke (release)"
# Asserts the enabled-sampler overhead stays within 5% (+ fixed slack)
# of the telemetry-off loop, that samples/watches actually fired, and
# that all five commit-stage histograms were observed. Also writes the
# Prometheus exposition to target/experiments/telemetry.prom.
cargo run -q --offline --release -p scdb-bench --bin e_telemetry -- --smoke

echo "== storage-fault resilience smoke (release)"
# Asserts the degraded-mode contract under an injected persistent fsync
# failure: zero failed reads while degraded, every write fails fast
# with CoreError::Degraded (no hung tickets), and the node returns to
# DbMode::Normal without reopening once the fault clears; plus the
# supervisor contract for a committer panic mid-batch.
cargo run -q --offline --release -p scdb-bench --bin e_faults -- --smoke

echo "== prometheus exposition format lint"
# Every non-comment line must be `name[{labels}] value` with an
# scdb_-prefixed metric name and a numeric value.
python3 - target/experiments/telemetry.prom <<'PY'
import re
import sys

path = sys.argv[1]
name_re = re.compile(r"^scdb_[a-zA-Z0-9_]+(\{[^}]*\})?$")
n = 0
errors = []
with open(path, encoding="utf-8") as fh:
    for lineno, line in enumerate(fh, start=1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            errors.append(f"line {lineno}: not 'name value': {line!r}")
            continue
        name, value = parts
        if not name_re.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
        n += 1

if n == 0:
    errors.append("no samples in exposition")
for e in errors[:20]:
    print(f"check_prom: {e}", file=sys.stderr)
if errors:
    print(f"check_prom: {len(errors)} problem(s) in {n} samples", file=sys.stderr)
    sys.exit(1)
print(f"check_prom: {n} samples ok")
PY

echo "== flight recorder event dump (release)"
events_jsonl="target/experiments/events.jsonl"
mkdir -p target/experiments
cargo run -q --offline --release -p scdb-bench --bin run_all_experiments -- \
    --events-jsonl "$events_jsonl"
scripts/check_events.sh "$events_jsonl"

echo "== ci green"
