//! The §4.2 Warfarin scenario: parallel worlds and justified answers.
//!
//! Three clinical sources report effective Warfarin dosages for three
//! disjoint populations (5.1 / 3.4 / 6.1 mg). The boolean query is
//! *"Is 5.0 mg an effective dosage of Warfarin for preventing blood
//! clots?"*. Classical certain-answer semantics says **no** (not all
//! sources agree); the paper's parallel-world *justified* semantics says
//! **yes**, because the sources' premises are disjoint population classes
//! and the white-population world supports the dosage at fuzzy degree 0.8.
//!
//! The worlds are not built by hand: the trial feeds are ingested into a
//! [`Db`] and [`Db::parallel_worlds`] derives one world per source from
//! the `population` column — the FS.10 flow end to end.
//!
//! Run with: `cargo run --example clinical_trials`

use scdb_core::Db;
use scdb_datagen::clinical::{generate, paper_populations};
use scdb_semantic::Taxonomy;
use scdb_types::Record;
use scdb_uncertain::FuzzyPredicate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::builder().build();
    let corpus = db.with_symbols(|symbols| generate(&paper_populations(), 2026, symbols));
    let dose = db
        .symbols_ref()
        .get("effective_dose")
        .expect("generated attr");

    // Instance layer: one source per trial feed.
    for src in &corpus.sources {
        db.register_source(&src.name, None);
        for rec in &src.records {
            db.ingest(&src.name, rec.record.clone(), rec.text.as_deref())?;
        }
        println!("loaded {:<35} ({} trials)", src.name, src.len());
    }
    // Semantic layer: the populations are pairwise-disjoint concepts.
    db.set_ontology(corpus.ontology.clone());

    // One parallel world per source, premise read from the population tag.
    let worlds = db.parallel_worlds("population")?;
    println!(
        "derived {} parallel worlds from the curated instance",
        worlds.len()
    );

    // "Close to 5.0 mg" under Warfarin's narrow therapeutic range.
    let narrow = FuzzyPredicate::CloseTo {
        center: 5.0,
        width: 0.5,
    };
    let degree = move |r: &Record| {
        r.get(dose)
            .and_then(|v| v.as_float())
            .map(|x| narrow.membership(x))
            .unwrap_or(0.0)
    };

    // The semantic layer knows the populations are pairwise disjoint.
    let taxonomy = Taxonomy::build(&db.ontology());
    let disjoint = |a, b| taxonomy.are_disjoint(a, b);

    println!("\nQ: Is 5.0 mg an effective dosage of Warfarin?");
    let naive = worlds.naive_certain(&degree, 0.5);
    println!("  naive certain answer (must hold in ALL worlds): {naive}");
    let justified = worlds.justified(&degree, 0.5, disjoint);
    println!(
        "  parallel-world justified answer:                 {}",
        justified.justified
    );
    println!(
        "  premises recognized as disjoint:                 {}",
        justified.premises_disjoint
    );
    for (w, d) in &justified.support {
        println!("    world {w}: support degree {d:.2}");
    }
    assert!(
        !naive && justified.justified,
        "the paper's headline contrast"
    );

    // Context-conditioned refinement: "…for the Asian population?"
    let asian = db.ontology().find_concept("AsianPopulation")?;
    let close_34 = FuzzyPredicate::CloseTo {
        center: 3.4,
        width: 0.5,
    };
    let degree34 = move |r: &Record| {
        r.get(dose)
            .and_then(|v| v.as_float())
            .map(|x| close_34.membership(x))
            .unwrap_or(0.0)
    };
    let refined = worlds.justified_given(&degree34, 0.5, asian);
    println!("\nQ (refined): Is 3.4 mg effective for the Asian population?");
    println!("  justified: {}", refined.justified);
    assert!(refined.justified);
    Ok(())
}
