//! The paper's Figure 2, end to end.
//!
//! Loads the exact DrugBank/CTD/Uniprot rows of Figure 2 into a
//! [`Db`], installs the figure's chemical & disease taxonomies,
//! and reproduces the §3.3 showcase inference: *"if the actual instance
//! data only stated that Acetaminophen is a Drug, a self-curating database
//! could infer that Acetaminophen has a target, even if the specific
//! relation has yet to be discovered"*.
//!
//! Run with: `cargo run --example life_science`

use scdb_core::Db;
use scdb_datagen::life_science::{figure2_ontology, figure2_sources};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::new();

    // Instance layer: the three sources of Figure 2.
    let sources = db.with_symbols(figure2_sources);
    let identity = ["Drug Name", "Gene", "Gene"];
    for (i, src) in sources.iter().enumerate() {
        db.register_source(&src.name, Some(identity[i]));
        for rec in &src.records {
            db.ingest(&src.name, rec.record.clone(), rec.text.as_deref())?;
        }
        println!("loaded {:<55} ({} records)", src.name, src.len());
    }
    // References arrived before their targets in places; re-pass.
    let late = db.discover_links()?;
    println!("late-discovered links: {late}");

    // Semantic layer: the figure's taxonomies + Drug ⊑ ∃has_target.Gene.
    db.set_ontology(figure2_ontology());
    for gene in ["TP53", "DHFR", "PTGS2"] {
        // PTGS2 only appears as a target value; register when present.
        if db.entity_named(gene).is_some() {
            db.assert_entity_type(gene, "Gene")?;
        }
    }
    for drug in ["Ibuprofen", "Acetaminophen", "Methotrexate", "Warfarin"] {
        db.assert_entity_type(drug, "ApprovedDrug")?;
    }
    db.assert_entity_type("Osteosarcoma", "Osteosarcoma").ok();

    db.reason()?;

    // The §3.3 inference.
    let acetaminophen = db.entity_named("Acetaminophen").expect("resolved");
    let gene_concept = db.ontology().find_concept("Gene")?;
    let has_target = db.ontology().find_role("has_target")?;
    let sat = db.reason()?;
    let named_targets = sat.fillers(has_target, acetaminophen);
    let has_some = sat.has_some(acetaminophen, has_target, gene_concept);
    println!("\nAcetaminophen named targets in the data: {named_targets:?}");
    println!("Acetaminophen ⊨ ∃has_target.Gene (inferred): {has_some}");
    assert!(named_targets.is_empty() && has_some, "the §3.3 inference");

    // Relation layer: cross-source identity. Methotrexate's DHFR target
    // resolves to Uniprot's DHFR entity.
    let mtx = db.entity_named("Methotrexate").expect("resolved");
    let dhfr = db.entity_named("DHFR").expect("resolved");
    let linked = db.graph().edges(mtx).iter().any(|e| e.to == dhfr);
    println!("Methotrexate —target→ DHFR (cross-source): {linked}");

    // Richness (FS.2) per source.
    println!("\nSource richness (FS.2):");
    for name in db.source_names() {
        let r = db.source_richness(&name)?;
        println!(
            "  {:<55} nodes={} edges={} richness={:.3}",
            name, r.nodes, r.edges, r.richness
        );
    }
    let whole = db.richness();
    println!(
        "  {:<55} nodes={} edges={} richness={:.3}",
        "(unified graph)", whole.nodes, whole.edges, whole.richness
    );

    // §5: the revisited-Codd compliance report.
    println!("\nRevisited Codd rules (§5):");
    for item in db.codd_report() {
        println!("  [{:?}] {}", item.status, item.rule);
        println!("         {}", item.evidence);
    }
    Ok(())
}
