//! IoT / social fusion — the §1 motivating workload.
//!
//! "Sales patterns correlate with the popularity of the product in social
//! media." Three independently produced feeds (retail sales, social
//! mentions, device telemetry) describe the same product universe under
//! different vocabularies; the self-curating database fuses them, and an
//! exploration round surfaces the cross-feed connections for a product of
//! interest.
//!
//! Run with: `cargo run --example iot_fusion`

use scdb_core::{Db, ExploreConfig};
use scdb_datagen::iot::{generate, pearson, IotConfig};
use scdb_query::materialize::MaterializationCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::new();
    let cfg = IotConfig {
        n_products: 10,
        days: 20,
        correlation: 0.9,
        seed: 11,
    };
    let sources = db.with_symbols(|symbols| generate(&cfg, symbols));
    for src in &sources {
        db.register_source(&src.name, Some("product"));
        for rec in &src.records {
            db.ingest(&src.name, rec.record.clone(), rec.text.as_deref())?;
        }
        println!("loaded {:<18} ({} records)", src.name, src.len());
    }
    db.discover_links()?;
    let (records, links) = (db.stats().records, db.stats().links);
    let entities = db.entity_count();
    println!("curation: {records} records → {entities} entities, {links} cross-feed links");

    // Text search over the unstructured social feed.
    let hits = db.text().search("trending Product 03", 3);
    println!("\ntext hits for 'trending Product 03': {}", hits.len());

    // The planted correlation is recoverable from the fused view.
    let units = db.symbols_ref().get("units_sold").expect("attr");
    let mentions = db.symbols_ref().get("mentions").expect("attr");
    let sales_rows = db.query("SELECT product, day, units_sold FROM retail_sales")?;
    let social_rows = db.query("SELECT product, day, mentions FROM social_mentions")?;
    let product_attr = db.symbols_ref().get("product").expect("attr");
    let series = |rows: &[scdb_types::Record], attr, name: &str| -> Vec<f64> {
        rows.iter()
            .filter(|r| {
                r.get(product_attr)
                    .map(|v| v.render().to_lowercase().contains(name))
                    .unwrap_or(false)
            })
            .filter_map(|r| r.get(attr).and_then(|v| v.as_float()))
            .collect()
    };
    let s = series(&sales_rows.rows, units, "product 05");
    let m = series(&social_rows.rows, mentions, "product 05");
    let rho = pearson(&s, &m);
    println!("sales↔mentions correlation for Product 05: {rho:.2}");
    assert!(rho > 0.5, "planted correlation recovered: {rho}");

    // Context-aware exploration from one product.
    let mut cache = MaterializationCache::new(16);
    let out = db.explore(
        "SELECT product FROM retail_sales WHERE product = 'Product 05' LIMIT 1",
        &ExploreConfig::default(),
        &mut cache,
    )?;
    println!(
        "\nexploration: {} seed(s), {} discoveries, {} facts materialized",
        out.seeds.len(),
        out.discoveries.len(),
        out.materialized
    );
    for d in out.discoveries.iter().take(5) {
        println!("  discovered {:?} (score {:.2})", d.entity, d.score);
    }
    Ok(())
}
