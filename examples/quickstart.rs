//! Quickstart: a self-curating database in ~60 lines.
//!
//! Demonstrates the core loop of the paper's vision: register
//! heterogeneous sources, ingest records (curation is continuous — no
//! offline ETL), let entity resolution and link discovery knit the data
//! together, add a little semantics, and query with ScQL.
//!
//! Run with: `cargo run --example quickstart`

use scdb_core::Db;
use scdb_types::{Record, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::builder().metrics(true).build();

    // Two independent sources with different vocabularies.
    db.register_source("drugbank", Some("drug"));
    db.register_source("uniprot", Some("gene"));

    let drug = db.intern("drug");
    let gene = db.intern("gene");
    let dose = db.intern("dose_mg");
    let function = db.intern("function");

    // Genes first…
    for (g, f) in [("TP53", "tumor suppressor"), ("DHFR", "limits cell growth")] {
        let record = Record::from_pairs([(gene, Value::str(g)), (function, Value::str(f))]);
        db.ingest("uniprot", record, None)?;
    }
    // …then drugs referencing them: links are discovered at ingest.
    for (d, g, mg) in [
        ("Warfarin", "TP53", 5.1),
        ("warfarin", "TP53", 5.0), // duplicate spelling: ER merges it
        ("Methotrexate", "DHFR", 25.0),
    ] {
        let record = Record::from_pairs([
            (drug, Value::str(d)),
            (gene, Value::str(g)),
            (dose, Value::Float(mg)),
        ]);
        let report = db.ingest("drugbank", record, None)?;
        println!(
            "ingested {d:>14} → entity {:?} (fresh: {}, links: {})",
            report.entity, report.fresh_entity, report.links_discovered
        );
    }

    // A little semantics: every drug has some gene target (§3.3).
    db.with_ontology(|o| o.subclass_exists("Drug", "has_target", "Gene"));
    db.assert_entity_type("Warfarin", "Drug")?;
    db.reason()?;

    // Query with a fuzzy atom — "close to 5.0 mg" (§4.2).
    let out =
        db.query("SELECT drug, dose_mg FROM drugbank WHERE dose_mg CLOSE TO 5.0 WITHIN 0.5")?;
    println!("\nplan:\n{}", out.plan);
    println!("rows close to 5.0 mg: {}", out.rows.len());
    for row in &out.rows {
        println!(
            "  {}",
            row.get(drug).map(|v| v.to_string()).unwrap_or_default()
        );
    }

    let stats = db.stats();
    println!(
        "\ncuration: {} records, {} merges, {} links, {} inferred facts",
        stats.records, stats.merges, stats.links, stats.inferred_facts
    );
    println!("entities: {}", db.entity_count());
    Ok(())
}
